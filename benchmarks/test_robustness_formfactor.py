"""Robustness campaigns + the section 7 form-factor extension.

* Environment Monte-Carlo: the section 5 "different indoor
  environments" claim, quantified over random clutter draws.
* Calibration transfer: nominal-model reads of toleranced units vs
  per-unit trimming (manufacturing-cost question).
* Form factor: a half-size sensor read at twice the carrier keeps its
  phase swing and relative accuracy (section 7's miniaturisation
  argument).
"""

import numpy as np

from repro.experiments import montecarlo
from repro.experiments.runners import run_form_factor
from repro.sensor.fabrication import tolerance_report


def test_environment_robustness(benchmark, report):
    result = benchmark.pedantic(
        lambda: montecarlo.environment_campaign(trials=8, fast=False),
        rounds=1, iterations=1)

    lines = ["per-environment medians (force [N] / location [mm]):"]
    for force, location in zip(result.force_medians,
                               result.location_medians):
        lines.append(f"  {force:6.3f}  /  {location * 1e3:6.3f}")
    lines.append(f"worst environment: force "
                 f"{result.worst_force_median:.3f} N, location "
                 f"{result.worst_location_median * 1e3:.3f} mm")
    lines.append("paper shape: accuracy holds across indoor environments "
                 "(section 5)")
    report("robustness_environments", "\n".join(lines))

    assert result.worst_force_median < 1.0
    assert result.worst_location_median < 2e-3


def test_calibration_transfer(benchmark, report):
    def run():
        transfer = montecarlo.calibration_transfer_campaign(units=4)
        per_unit = montecarlo.per_unit_calibration_campaign(units=4)
        batch = tolerance_report(units=50)
        return transfer, per_unit, batch

    transfer, per_unit, batch = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    mean_z, std_z = batch.impedance_spread
    lines = [
        f"fabricated batch impedance : {mean_z:.1f} +/- {std_z:.2f} ohm "
        f"(worst S11 {batch.worst_mismatch_db:.1f} dB)",
        "",
        "per-unit force medians [N]:",
        f"  nominal calibration transferred : "
        f"{np.round(transfer.force_medians, 3)}",
        f"  per-unit calibration            : "
        f"{np.round(per_unit.force_medians, 3)}",
        "",
        "reading: the RF design point survives fabrication tolerances, "
        "but the elastomer's mechanical spread makes per-unit force "
        "calibration worthwhile",
    ]
    report("calibration_transfer", "\n".join(lines))

    assert batch.worst_mismatch_db < -10.0
    assert (per_unit.force_medians.mean()
            < transfer.force_medians.mean() + 1e-9)
    assert per_unit.worst_force_median < 0.5


def test_form_factor_scaling(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_form_factor(scales=(1.0, 0.5, 0.25)),
        rounds=1, iterations=1)

    lines = ["scale   carrier   phase swing   med loc err   relative"]
    for scale, carrier, swing, median, relative in zip(
            result.scales, result.carriers, result.phase_swing_deg,
            result.location_medians_m, result.relative_location_medians):
        lines.append(f"{scale:5.2f}   {carrier / 1e9:5.1f} GHz   "
                     f"{swing:8.1f} deg   {median * 1e3:8.3f} mm   "
                     f"{relative * 100:6.3f} %")
    lines.append("paper shape: higher carriers preserve the electrical "
                 "length, so miniaturised sensors keep their relative "
                 "accuracy (section 7).  At quarter scale (9.6 GHz, "
                 "~23 deg/mm) the phase map becomes ambiguous between "
                 "calibration points and the location estimate starts "
                 "aliasing — the practical floor of the scaling argument.")
    report("form_factor_scaling", "\n".join(lines))

    swings = result.phase_swing_deg
    assert min(swings) > 0.5 * max(swings)
    # The miniaturisation claim holds cleanly down to half scale.
    assert all(m < 1e-3 for m in result.location_medians_m[:2])
    assert all(rel < 0.01 for rel in result.relative_location_medians[:2])
