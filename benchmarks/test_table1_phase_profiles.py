"""Table 1 — VNA vs model vs wireless phase-force profiles.

Paper claim: at 20/40/60 mm (calibrated) and 55 mm (interpolated,
never calibrated) the wirelessly measured phase-force curves overlay
the VNA ground truth and the cubic sensor model.
"""

import numpy as np

from repro.experiments import runners


def test_table1_phase_profiles(benchmark, report):
    result = benchmark.pedantic(
        lambda: runners.run_table1(carrier=900e6, fast=False,
                                   force_points=8),
        rounds=1, iterations=1)

    lines = []
    for i, location in enumerate(result.locations):
        tag = " (interpolated)" if abs(location - 0.055) < 1e-6 else ""
        lines.append(f"press at {location * 1e3:.0f} mm{tag} — port 1 "
                     "phases [deg] (VNA / model / wireless):")
        for j, force in enumerate(result.forces):
            lines.append(
                f"  F={force:5.2f}   {result.vna_port1_deg[i, j]:8.2f}   "
                f"{result.model_port1_deg[i, j]:8.2f}   "
                f"{result.wireless_port1_deg[i, j]:8.2f}")
    lines.append("")
    lines.append(f"wireless-vs-model RMSE: "
                 f"{result.wireless_model_rmse_deg():.2f} deg")
    lines.append("paper shape: all three curves overlay, including the "
                 "never-calibrated 55 mm point (Table 1)")
    report("table1_phase_profiles", "\n".join(lines))

    assert result.wireless_model_rmse_deg() < 3.0
    # The 55 mm interpolation check specifically.
    idx = list(result.locations).index(0.055)
    mismatch = np.abs(result.wireless_port1_deg[idx]
                      - result.model_port1_deg[idx])
    mismatch = np.minimum(mismatch, 360.0 - mismatch)
    assert np.median(mismatch) < 3.0
