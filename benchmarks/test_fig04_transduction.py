"""Fig. 4c — phase-force transduction: soft beam vs bare thin trace.

Paper claim: a bare air-substrate microstrip shows a near-invariant
phase response with force; adding the soft ecoflex beam distributes the
load and produces a pronounced, monotonic phase-force curve.
"""

import numpy as np

from repro.experiments import runners


def test_fig04_transduction(benchmark, report):
    result = benchmark.pedantic(
        lambda: runners.run_fig04(fast=False), rounds=1, iterations=1)

    lines = ["force [N]   soft-beam dphi [deg]   thin-trace dphi [deg]"]
    soft0 = result.soft_phase_deg[0]
    thin0 = result.thin_phase_deg[0]
    for force, soft, thin in zip(result.forces, result.soft_phase_deg,
                                 result.thin_phase_deg):
        lines.append(f"{force:8.2f}   {soft - soft0:18.2f}   "
                     f"{thin - thin0:19.2f}")
    lines.append("")
    lines.append(f"soft-beam swing : {result.soft_swing_deg:6.2f} deg")
    lines.append(f"thin-trace swing: {result.thin_swing_deg:6.2f} deg")
    lines.append("paper shape: soft beam transduces force to phase; the "
                 "thin trace saturates immediately (Fig. 4c)")
    report("fig04_transduction", "\n".join(lines))

    assert result.soft_swing_deg > 15.0
    assert result.thin_swing_deg < 0.3 * result.soft_swing_deg


def test_fig04_thin_trace_flat(benchmark):
    """The thin trace's response is flat in absolute terms too."""
    result = benchmark.pedantic(
        lambda: runners.run_fig04(fast=False), rounds=1, iterations=1)
    variation = np.ptp(result.thin_phase_deg)
    assert variation < 10.0
