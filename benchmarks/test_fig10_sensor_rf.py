"""Fig. 10 — broadband RF characteristics of the untouched sensor.

Paper claim: across 0-3 GHz the sensor's S11 stays below -10 dB, S21
sits near 0 dB, and the S21 phase is linear — the sensor is a clean
50-ohm line over the whole band.
"""

import numpy as np

from repro.experiments import runners


def test_fig10_sensor_rf(benchmark, report):
    result = benchmark.pedantic(lambda: runners.run_fig10(points=601),
                                rounds=1, iterations=1)

    picks = np.linspace(0, result.frequency.size - 1, 13).astype(int)
    lines = ["freq [GHz]   S11 [dB]   S21 [dB]"]
    for index in picks:
        lines.append(f"{result.frequency[index] / 1e9:9.2f}   "
                     f"{result.s11_db[index]:8.2f}   "
                     f"{result.s21_db[index]:8.2f}")
    lines.append("")
    lines.append(f"worst S11 over band      : {result.worst_s11_db:.2f} dB "
                 "(paper: < -10 dB)")
    lines.append(f"worst S21 over band      : {result.worst_s21_db:.2f} dB "
                 "(paper: ~0 dB)")
    lines.append(f"S21 phase nonlinearity   : "
                 f"{result.s21_phase_residual_deg:.4f} deg (paper: linear)")
    report("fig10_sensor_rf", "\n".join(lines))

    assert result.worst_s11_db < -10.0
    assert result.worst_s21_db > -1.0
    assert result.s21_phase_residual_deg < 1.0
