"""Performance benchmarks for the async inference service.

The serving claims tracked here:

* Adaptive micro-batching actually fills batches (mean batch size
  > 1) and beats the serial one-request-at-a-time scalar baseline on
  throughput — the whole point of multiplexing streams over
  ``invert_batch``.
* Batch parity holds under load: service responses are element-wise
  equal to the scalar ``invert`` path.

The machine-readable report lands in
``benchmarks/results/BENCH_serve.json`` (same shape as the
``repro serve-bench`` CLI output), emitted with plain
``time.perf_counter`` timing so the CI smoke run under
``--benchmark-disable`` produces it too.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.serve import (
    InferenceService,
    LoadProfile,
    generate_requests,
    run_benchmark,
    run_service_load,
    write_report,
)
from repro.serve.scheduler import BatchPolicy

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_serve.json"

#: The tracked load shape: 8 streams x 64 samples, 32-deep batches.
PROFILE = LoadProfile(sensors=8, requests_per_sensor=64, max_batch=32,
                      max_delay_s=0.002, seed=7)


@pytest.fixture(scope="module")
def serve_report():
    """Run the tracked load once; persist the JSON report."""
    report = run_benchmark(PROFILE)
    write_report(report, BENCH_PATH)
    return report


def test_service_fills_micro_batches(serve_report):
    """Mean batch size must exceed 1 — batching actually coalesces."""
    assert serve_report["service"]["mean_batch_size"] > 1.0
    assert serve_report["service"]["max_batch_size"] <= PROFILE.max_batch


def test_service_beats_serial_baseline(serve_report):
    """Service throughput > the one-request-at-a-time scalar loop."""
    service_rps = serve_report["service"]["throughput_rps"]
    serial_rps = serve_report["serial_baseline"]["throughput_rps"]
    assert service_rps > serial_rps, (
        f"service served {service_rps:.0f} req/s vs serial "
        f"{serial_rps:.0f} req/s; micro-batching should win"
    )


def test_service_parity_under_load(serve_report):
    """Batched service results == scalar invert, element-wise."""
    parity = serve_report["parity"]
    assert parity["max_force_delta_n"] == 0.0
    assert parity["max_location_delta_m"] == 0.0
    assert parity["touched_match"]


def test_latency_percentiles_reported(serve_report):
    service = serve_report["service"]
    assert 0.0 <= service["latency_p50_s"] <= service["latency_p99_s"]
    assert service["throughput_rps"] > 0.0


def test_report_is_stamped_with_manifest(serve_report):
    """The emitted report carries schema_version + run manifest."""
    from repro.obs import SCHEMA_VERSION

    assert serve_report["schema_version"] == SCHEMA_VERSION
    manifest = serve_report["manifest"]
    assert manifest["config_hash"] != "none"
    assert manifest["python_version"]
    instruments = manifest["instruments"]
    # The service shares the run's registry, so its counters appear in
    # the manifest snapshot verbatim — one registry observes the whole
    # bench, estimator instruments included.
    telemetry = serve_report["telemetry"]
    for name, value in telemetry["counters"].items():
        assert instruments["counters"][name] == value
    assert instruments["counters"]["estimator.batch_inversions"] > 0
    assert "span.serve.flush.seconds" in instruments["histograms"]


def _drive_service(policy, requests, model):
    service = InferenceService(policy=policy,
                               model_factory=lambda config: model)
    return asyncio.run(run_service_load(service, requests))


def test_perf_service_batched(benchmark):
    """pytest-benchmark: the batched service under the tracked load."""
    from repro.experiments.scenarios import calibrated_model

    model = calibrated_model(PROFILE.carrier_frequency,
                             fast=PROFILE.fast)
    requests = generate_requests(model, PROFILE)
    policy = BatchPolicy(max_batch=PROFILE.max_batch,
                         max_delay_s=PROFILE.max_delay_s,
                         max_queue=max(1024, PROFILE.total_requests))
    benchmark.pedantic(_drive_service, args=(policy, requests, model),
                       rounds=3, iterations=1)


def test_perf_service_scalar_direct(benchmark):
    """pytest-benchmark: the degraded batching-off path (baseline)."""
    from repro.experiments.scenarios import calibrated_model

    model = calibrated_model(PROFILE.carrier_frequency,
                             fast=PROFILE.fast)
    requests = generate_requests(model, PROFILE)
    policy = BatchPolicy(enabled=False,
                         max_queue=max(1024, PROFILE.total_requests))
    benchmark.pedantic(_drive_service, args=(policy, requests, model),
                       rounds=1, iterations=1)
