"""Sections 1/4.3 and Fig. 3 — tag power: direct transduction wins.

Paper claims: the WiForce tag (clock + two switches, no ADC/MCU/radio)
consumes under 1 uW in 65 nm; the conventional sensor+ADC+MCU+
backscatter pipeline needs orders of magnitude more.
"""

from repro.experiments import runners


def test_power_budget(benchmark, report):
    result = benchmark.pedantic(lambda: runners.run_power_comparison(),
                                rounds=1, iterations=1)

    wiforce = result.wiforce
    digital = result.digital
    lines = [
        "WiForce tag budget:",
        f"  clock generation : {wiforce.clock_generation * 1e9:8.2f} nW",
        f"  switch drive     : {wiforce.switch_drive * 1e9:8.2f} nW",
        f"  leakage          : {wiforce.leakage * 1e9:8.2f} nW",
        f"  TOTAL            : {wiforce.total_uw:8.3f} uW (paper: < 1 uW)",
        "",
        "digital backscatter baseline (Fig. 3 architecture):",
        f"  ADC              : {digital.adc * 1e6:8.3f} uW",
        f"  MCU              : {digital.mcu * 1e6:8.3f} uW",
        f"  modulator        : {digital.modulator * 1e6:8.3f} uW",
        f"  leakage          : {digital.leakage * 1e6:8.3f} uW",
        f"  TOTAL            : {digital.total_uw:8.3f} uW",
        "",
        f"digital / WiForce power factor: {result.ratio:.0f}x",
    ]
    report("power_budget", "\n".join(lines))

    assert wiforce.total_uw < 1.0
    assert result.ratio > 10.0
