"""Performance + parity benchmarks for the surrogate backend.

Two claims are tracked so future PRs can see the trajectory:

* ``SurrogateEstimator.invert_batch`` (learned ridge inverse, grid
  fallback for low-confidence samples) is >= 5x faster than the grid
  oracle's ``invert_batch`` at N=1000 once training is amortized.
* The accuracy cost is bounded: the p95 force/location error deltas
  vs. the grid oracle stay inside the caps declared in
  :mod:`repro.surrogate.evaluate` (normalized delta <= 1.0).

The full evaluation (training through the content-addressed artifact
cache, held-out workload, error CDFs) lives in
:func:`repro.surrogate.evaluate.evaluate_surrogate`; this module runs
it once, asserts the gated numbers, and writes the report as
``benchmarks/results/BENCH_surrogate.json`` — the same artifact
``repro surrogate eval`` produces and ``compare_bench.py`` gates.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.estimator import ForceLocationEstimator
from repro.experiments.parallel import CampaignExecutor, shutdown_pools
from repro.experiments.scenarios import calibrated_model
from repro.surrogate import (
    DatasetSpec,
    SurrogateEstimator,
    evaluate_surrogate,
    train_surrogate,
)

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_surrogate.json"

#: Held-out batch size; the acceptance speedup is measured at this N.
N_SAMPLES = 1000

_report: dict = {}


@pytest.fixture(scope="module")
def model():
    """The shared fast 900 MHz calibration."""
    return calibrated_model(900e6, fast=True)


@pytest.fixture(scope="module")
def surrogate(model):
    """The trained (or cache-loaded) ridge inverse.

    A warm worker pool shards the simulator sweep on the cold path
    (first CI run per cache key); warm runs load the fitted model from
    the artifact cache in milliseconds.
    """
    executor = CampaignExecutor(workers=4)
    try:
        return train_surrogate(model, DatasetSpec(), executor=executor)
    finally:
        shutdown_pools()


@pytest.fixture(scope="module")
def report(model, surrogate):
    """The full parity + speedup evaluation (training already warm)."""
    _report.update(evaluate_surrogate(samples=N_SAMPLES))
    return _report


@pytest.fixture(scope="module")
def phases(model):
    """N_SAMPLES noisy phase pairs across the calibrated span."""
    rng = np.random.default_rng(42)
    low, high = model.force_range
    forces = rng.uniform(low, high, N_SAMPLES)
    locations = rng.uniform(float(model.locations[0]),
                            float(model.locations[-1]), N_SAMPLES)
    phi1, phi2 = model.predict_batch(forces, locations)
    noise = rng.normal(0.0, np.radians(1.0), (2, N_SAMPLES))
    return phi1 + noise[0], phi2 + noise[1]


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write the machine-readable summary after the module finishes."""
    yield
    if not _report:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(_report, indent=2, sort_keys=True)
                          + "\n")


def test_amortized_speedup(report):
    """Surrogate invert_batch >= 5x over the grid oracle at N=1000."""
    speedup = report["surrogate_speedup"]
    assert speedup >= 5.0, (
        f"surrogate invert_batch is only {speedup:.1f}x faster than "
        f"the grid oracle at N={report['samples']}; the amortized "
        f"inverse should clear 5x"
    )


def test_error_parity_within_caps(report):
    """p95 error deltas vs. the grid oracle stay inside the caps."""
    assert report["surrogate_p95_error_delta"] <= 1.0, (
        f"normalized p95 error delta "
        f"{report['surrogate_p95_error_delta']:+.3f} exceeds the cap: "
        f"force {report['surrogate_p95_force_error_delta_n'] * 1e3:+.1f}"
        f" mN (cap {report['caps']['force_n'] * 1e3:.0f} mN), location "
        f"{report['surrogate_p95_location_error_delta_m'] * 1e3:+.3f} "
        f"mm (cap {report['caps']['location_m'] * 1e3:.1f} mm)"
    )


def test_fallback_rate_bounded(report):
    """In-domain workload mostly takes the learned path.

    The held-out workload draws from the calibrated spans, so a high
    fallback rate means the confidence gate (phase envelope + forward
    residual) collapsed and the "speedup" is really the grid running
    twice.
    """
    assert report["surrogate_fallback_rate"] <= 0.25, (
        f"{report['surrogate_fallback_rate']:.1%} of in-domain "
        f"samples fell back to the grid; the confidence gate is "
        f"rejecting the workload it was trained on"
    )


def test_perf_grid_invert_batch(benchmark, model, phases):
    """pytest-benchmark: the grid oracle at N_SAMPLES."""
    estimator = ForceLocationEstimator(model)
    phi1, phi2 = phases
    benchmark.pedantic(estimator.invert_batch, args=(phi1, phi2),
                       rounds=3, iterations=1)


def test_perf_surrogate_invert_batch(benchmark, model, surrogate,
                                     phases):
    """pytest-benchmark: the amortized learned inverse at N_SAMPLES."""
    estimator = SurrogateEstimator(model, surrogate)
    phi1, phi2 = phases
    benchmark.pedantic(estimator.invert_batch, args=(phi1, phi2),
                       rounds=5, iterations=1)
