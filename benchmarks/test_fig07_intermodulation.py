"""Figs. 7-8 — clocking schemes: intermodulation vs duty-cycled isolation.

Paper claim: two naive 50%-duty clocks leave both switches on
simultaneously part of the time; the ends couple through the line and
the readout tones lose their identities.  The 25%/75% duty-cycled
scheme keeps the on-windows disjoint and the tones clean.
"""

from repro.experiments import runners


def test_fig07_intermodulation(benchmark, report):
    result = benchmark.pedantic(
        lambda: runners.run_fig07(fast=False), rounds=1, iterations=1)

    lines = [
        "scheme    overlap   tone phases corrupt by [deg] (port1, port2)",
        f"wiforce   {result.overlap_wiforce:6.2%}   "
        f"({result.wiforce_phase_error_deg[0]:8.2f}, "
        f"{result.wiforce_phase_error_deg[1]:8.2f})",
        f"naive     {result.overlap_naive:6.2%}   "
        f"({result.naive_phase_error_deg[0]:8.2f}, "
        f"{result.naive_phase_error_deg[1]:8.2f})",
        "",
        "tone magnitudes [dB]:",
        f"  wiforce: {result.wiforce_tone_db}",
        f"  naive  : {result.naive_tone_db}",
        "paper shape: naive clocks intermodulate (Fig. 7); duty-cycled "
        "windows keep fs and 4fs clean (Fig. 8)",
    ]
    report("fig07_intermodulation", "\n".join(lines))

    assert result.overlap_wiforce == 0.0
    assert result.overlap_naive > 0.2
    assert result.wiforce_worst_error_deg < 2.0
    assert result.naive_worst_error_deg > 20.0
