"""Fig. 18 / section 5.4 — phase stability over deployment range.

Paper claims: with TX and RX 4 m apart and 10 dBm transmit power at
900 MHz, the readout phase is stable to <1 degree with the sensor at
1 m / 3 m, and stays within ~5 degrees at the worst 2 m / 2 m point;
operation is comparable to RFID readers out to multi-metre range.
"""

from repro.experiments import runners


def test_fig18_distance(benchmark, report):
    result = benchmark.pedantic(
        lambda: runners.run_distance(fast=False, groups=16),
        rounds=1, iterations=1)

    lines = ["sensor position along the 4 m TX..RX line:"]
    for position, stability in zip(result.positions_from_rx,
                                   result.stability_deg):
        lines.append(f"  {position:.1f} m from RX / "
                     f"{4.0 - position:.1f} m from TX : "
                     f"{stability:6.2f} deg")
    lines.append("")
    lines.append("total TX-RX separation sweep (sensor at midpoint):")
    for separation, stability in zip(result.separations,
                                     result.separation_stability_deg):
        lines.append(f"  {separation:5.1f} m : {stability:6.2f} deg")
    lines.append("paper shape: ~1 deg stability at the paper's ranges, "
                 "degrading only at extreme range (Fig. 18)")
    report("fig18_distance", "\n".join(lines))

    assert result.best_stability_deg < 1.5
    assert result.worst_stability_deg < 5.0
    assert (result.separation_stability_deg[-1]
            > result.separation_stability_deg[0])
