"""Fig. 19 (Appendix) — 50-ohm geometry: 5:1 narrow vs 4:1 wide ground.

Paper claim: Steer's air-microstrip formula puts the 50-ohm
trace-width-to-height ratio near 5:1; widening the ground trace for SMA
interfacing adds fringing capacitance and shifts the optimum to ~4:1,
where the insertion loss is minimised.
"""

import numpy as np

from repro.experiments import runners


def test_fig19_impedance_ratio(benchmark, report):
    result = benchmark.pedantic(lambda: runners.run_impedance_ratio(),
                                rounds=1, iterations=1)

    picks = np.linspace(0, result.ratios.size - 1, 13).astype(int)
    lines = ["w/h ratio   S21 narrow-gnd [dB]   S21 wide-gnd [dB]"]
    for index in picks:
        lines.append(f"{result.ratios[index]:9.2f}   "
                     f"{result.insertion_loss_narrow_db[index]:18.4f}   "
                     f"{result.insertion_loss_wide_db[index]:16.4f}")
    lines.append("")
    lines.append(f"50-ohm ratio, narrow ground: "
                 f"{result.optimal_ratio_narrow:.2f}:1 (paper: ~5:1)")
    lines.append(f"50-ohm ratio, wide ground  : "
                 f"{result.optimal_ratio_wide:.2f}:1 (paper: ~4:1)")
    report("fig19_impedance_ratio", "\n".join(lines))

    assert result.optimal_ratio_narrow == np.clip(
        result.optimal_ratio_narrow, 4.6, 5.4)
    assert result.optimal_ratio_wide == np.clip(
        result.optimal_ratio_wide, 3.6, 4.4)
    best_wide = result.ratios[
        int(np.argmax(result.insertion_loss_wide_db))]
    best_narrow = result.ratios[
        int(np.argmax(result.insertion_loss_narrow_db))]
    assert best_wide < best_narrow  # the crossover direction
