"""Fault-layer overhead benchmarks.

The injection sites gate on ``repro.faults.armed()`` — one function
call and a branch when no plan is armed (the default, and the only
state production code ever runs in).  Tracked claims:

* The hot estimation kernel is untouched: ``invert_batch`` at N=1000
  costs the same with the fault layer unarmed as with a plan armed
  that targets no site on the path (< 2% + scheduler-jitter slack).
* The chaos harness itself stays CI-sized: the default plan/profile
  completes in seconds and survives with zero crashes (asserted in
  tier-1; re-measured here for the trend line).

The machine-readable summary lands in
``benchmarks/results/BENCH_faults.json`` using plain
``time.perf_counter``, so the CI smoke run emits it under
``--benchmark-disable`` too.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.estimator import ForceLocationEstimator
from repro.experiments.scenarios import calibrated_model
from repro.faults import FaultPlan, armed, inject
from repro.obs import stamp_report

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_faults.json"

#: Batch size for the unarmed-overhead comparison.
N_SAMPLES = 1000

_report: dict = {"n_samples": N_SAMPLES}


@pytest.fixture(scope="module")
def estimator():
    return ForceLocationEstimator(calibrated_model(900e6, fast=True))


@pytest.fixture(scope="module")
def phases(estimator):
    rng = np.random.default_rng(42)
    forces = rng.uniform(0.5, 8.0, N_SAMPLES)
    low, high = estimator.model.locations[0], estimator.model.locations[-1]
    locations = rng.uniform(low, high, N_SAMPLES)
    phi1, phi2 = estimator.model.predict_batch(forces, locations)
    noise = rng.normal(0.0, np.radians(1.0), (2, N_SAMPLES))
    return phi1 + noise[0], phi2 + noise[1]


def _best_of(runs, fn, *args):
    best, result = float("inf"), None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write the machine-readable summary after the module finishes."""
    yield
    stamp_report(_report, config={"n_samples": N_SAMPLES})
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(_report, indent=2, sort_keys=True)
                          + "\n")


def test_unarmed_fault_layer_overhead(estimator, phases):
    """Unarmed (and off-path armed) injection costs < 2% on the kernel.

    ``invert_batch`` has no injection site, so arming an empty plan
    must leave it bit-identical and equally fast — this is the
    regression tripwire against anyone threading a per-sample fault
    check into the hot loop.  The small absolute slack absorbs
    scheduler jitter on the ~100 ms batch.
    """
    phi1, phi2 = phases
    assert armed() is None
    unarmed_seconds, batch_unarmed = _best_of(
        5, estimator.invert_batch, phi1, phi2)
    with inject(FaultPlan(name="empty")):
        armed_seconds, batch_armed = _best_of(
            5, estimator.invert_batch, phi1, phi2)
    assert armed() is None
    assert np.array_equal(batch_unarmed.force, batch_armed.force)
    assert np.array_equal(batch_unarmed.location, batch_armed.location)
    overhead = armed_seconds / unarmed_seconds - 1.0
    _report.update({
        "unarmed_seconds": unarmed_seconds,
        "armed_offpath_seconds": armed_seconds,
        "fault_gate_overhead": overhead,
    })
    assert armed_seconds <= 1.02 * unarmed_seconds + 0.010, (
        f"fault-layer overhead is {overhead:.1%} on invert_batch at "
        f"N={N_SAMPLES}; the unarmed gate must stay under 2%"
    )


def test_chaos_harness_wall_clock():
    """The default chaos campaign stays CI-sized (seconds, 0 crashes)."""
    from repro.faults import chaos

    start = time.perf_counter()
    report = chaos.run_chaos(seed=0)
    wall = time.perf_counter() - start
    assert report["survival"]["crashes"] == 0
    assert report["survival"]["survival_rate"] >= 0.95
    _report["chaos"] = {
        "wall_seconds": wall,
        "total_requests": report["survival"]["total_requests"],
        "injected_faults": report["injected_faults"],
        "survival_rate": report["survival"]["survival_rate"],
    }


def test_perf_invert_batch_unarmed(benchmark, estimator, phases):
    """pytest-benchmark: the kernel with the fault layer importable
    but unarmed (the production configuration)."""
    phi1, phi2 = phases
    benchmark.pedantic(estimator.invert_batch, args=phases,
                       rounds=5, iterations=1)
