"""Mechanical settling bench: why readings wait ~0.5 s (section 3.3).

The paper asserts forces take 0.5-1 s to stabilize and sizes its phase
groups accordingly.  Two mechanisms set that timescale here: the beam's
damped vibration after touch onset (modal dynamics) and the elastomer's
viscoelastic creep.  This bench computes both and the phase creep a
reader would see while holding a press.
"""

import numpy as np

from repro.mechanics.dynamics import modal_summary
from repro.mechanics.viscoelastic import StandardLinearSolid
from repro.sensor.geometry import default_sensor_design
from repro.sensor.viscoelastic import CreepingTransducer


def test_creep_and_settling(benchmark, report):
    def run():
        design = default_sensor_design()
        modal = modal_summary(design.composite_beam(),
                              foundation_stiffness=design.foundation_stiffness())
        sls = StandardLinearSolid()
        creeping = CreepingTransducer(sls, relaxation_levels=3,
                                      force_points=12, location_points=11)
        times = np.array([0.0, 0.1, 0.25, 0.5, 1.0, 2.0])
        trace = np.degrees(creeping.creep_trace(900e6, 4.0, 0.040, times))
        return modal, sls, times, trace

    modal, sls, times, trace = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    lines = [
        f"beam fundamental mode     : {modal.fundamental:6.1f} Hz",
        f"vibration settling (2%)   : {modal.settling_time * 1e3:6.0f} ms",
        f"elastomer relaxation tau  : {sls.relaxation_time * 1e3:6.0f} ms",
        f"creep settling (5%)       : {sls.settling_time() * 1e3:6.0f} ms",
        "",
        "phase creep while holding 4 N at 40 mm (port 1):",
    ]
    for time, phase in zip(times, trace):
        lines.append(f"  t = {time * 1e3:6.0f} ms : {phase:8.2f} deg")
    total_creep = abs(trace[-1] - trace[0])
    lines.append("")
    lines.append(f"total creep onset->settled: {total_creep:.2f} deg")
    lines.append("paper shape: mechanics settle within ~1 s — readings "
                 "inside one 36 ms phase group see a static force "
                 "(section 3.3's stationarity assumption)")
    report("creep_settling", "\n".join(lines))

    # Both settling mechanisms land within the paper's 0.5-1 s band
    # (same order of magnitude).
    assert 0.05 < modal.settling_time < 2.0
    assert 0.3 < sls.settling_time() < 2.0
    # Creep converged by 2 s.
    assert abs(trace[-1] - trace[-2]) < 0.5
    # But the group duration (36 ms) sees only a sliver of the creep.
    assert total_creep < 25.0
