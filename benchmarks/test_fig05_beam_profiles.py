"""Fig. 5b — phase-force profiles at both ports, per press location.

Paper claim: a centre press (40 mm) compresses the beam symmetrically,
so both ports show the same phase-force profile; off-centre presses
(20/60 mm) are asymmetric, with the near port swinging more while the
far port's profile flattens.
"""

from repro.experiments import runners


def test_fig05_beam_profiles(benchmark, report):
    result = benchmark.pedantic(
        lambda: runners.run_fig05(fast=False), rounds=1, iterations=1)

    lines = []
    for i, location in enumerate(result.locations):
        lines.append(f"press at {location * 1e3:.0f} mm "
                     f"(port1 / port2 dphi [deg] vs force [N]):")
        p1 = result.port1_deg[i] - result.port1_deg[i][0]
        p2 = result.port2_deg[i] - result.port2_deg[i][0]
        for force, a, b in zip(result.forces, p1, p2):
            lines.append(f"  F={force:5.2f}   {a:8.2f}   {b:8.2f}")
        lines.append(f"  swings: port1={result.swing_deg(i, 1):.2f} deg, "
                     f"port2={result.swing_deg(i, 2):.2f} deg")
    lines.append("paper shape: symmetric at 40 mm, near-port-dominant at "
                 "20/60 mm (Fig. 5b)")
    lines.append("")
    from repro.experiments.figures import ascii_plot
    index_20 = list(result.locations).index(0.020)
    lines.append(ascii_plot([
        ("1 port1@20mm", result.forces,
         result.port1_deg[index_20] - result.port1_deg[index_20][0]),
        ("2 port2@20mm", result.forces,
         result.port2_deg[index_20] - result.port2_deg[index_20][0]),
    ], x_label="force [N]", y_label="dphi [deg]"))
    report("fig05_beam_profiles", "\n".join(lines))

    centre = list(result.locations).index(0.040)
    left = list(result.locations).index(0.020)
    right = list(result.locations).index(0.060)
    assert abs(result.swing_deg(centre, 1)
               - result.swing_deg(centre, 2)) < 5.0
    assert result.swing_deg(left, 1) > 1.2 * result.swing_deg(left, 2)
    assert result.swing_deg(right, 2) > 1.2 * result.swing_deg(right, 1)
