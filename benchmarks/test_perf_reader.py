"""Performance benchmark for the batched sounder cold path.

The claim under test: the fused capture+extract path of
:class:`repro.reader.batch.FastSounder` (``capture_matrices``) delivers
>= 10x the cold-capture throughput of the oracle path
(:class:`FrameLevelSounder.capture` followed by
:meth:`HarmonicExtractor.extract`) on identical physics — the
prerequisite for running campaign-scale simulation (~337k frames per
cold campaign, see ``BENCH_cache.json``'s ``reader.frames``) at
training-data-factory rates.

Both paths run in this process, interleaved measurement-for-
measurement on the same press states, so the ratio is machine
normalized.  A bit-identity spot check (the parity suite's tier 1) runs
first: a timing win on diverging physics would be meaningless.

The machine-readable summary lands in
``benchmarks/results/BENCH_reader.json`` with the obs counter snapshot
of the measured runs, and ``compare_bench.py`` gates ``cold_speedup``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel, Path as ChannelPath
from repro.channel.propagation import BackscatterLink
from repro.core.harmonics import (
    HarmonicExtractor,
    integer_period_group_length,
)
from repro.experiments.scenarios import fast_transducer
from repro.obs import observed, stamp_report
from repro.reader._kernels import HAVE_NUMBA
from repro.reader.batch import FastSounder
from repro.reader.sounder import FrameLevelSounder
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.tag import TagState, WiForceTag

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_reader.json"

#: Phase groups per capture (the reader's default protocol: 2 groups
#: of 625 frames = 1250 frames per read).
GROUPS = 2

#: Timed captures per path.
REPEATS = 40

#: Captures fused per ``capture_batch`` call in the stream benchmark.
BATCH = 8

#: The hard floor the tentpole promises for the fused path.
MIN_COLD_SPEEDUP = 10.0

_report: dict = {
    "groups": GROUPS,
    "repeats": REPEATS,
    "batch": BATCH,
    "min_cold_speedup": MIN_COLD_SPEEDUP,
    "numba": HAVE_NUMBA,
}


def _build(cls, seed=7):
    config = OFDMSounderConfig(carrier_frequency=900e6)
    clutter = MultipathChannel([ChannelPath(2e-3, 8e-9),
                                ChannelPath(1e-3j, 15e-9)])
    tag = WiForceTag(fast_transducer(), clock_offset_ppm=20.0)
    return cls(config, tag, BackscatterLink(), clutter,
               rng=np.random.default_rng(seed))


def _extractor(config):
    length = integer_period_group_length(config.frame_period, 1000.0)
    return HarmonicExtractor(tones=(1000.0, 4000.0), group_length=length)


def _states(count):
    rng = np.random.default_rng(3)
    return [TagState(force=float(rng.uniform(0.5, 8.0)),
                     location=float(rng.uniform(0.02, 0.06)))
            for _ in range(count)]


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write the machine-readable summary after the module finishes."""
    yield
    stamp_report(_report, config={"groups": GROUPS, "repeats": REPEATS,
                                  "batch": BATCH,
                                  "min_cold_speedup": MIN_COLD_SPEEDUP,
                                  "numba": HAVE_NUMBA})
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(_report, indent=2, sort_keys=True)
                          + "\n")


def test_cold_capture_speedup():
    """Fused capture+extract >= 10x the oracle path, same physics."""
    oracle = _build(FrameLevelSounder)
    fast = _build(FastSounder)
    extractor = _extractor(oracle.config)
    frames = GROUPS * extractor.group_length

    # Parity first: a speedup on diverging physics proves nothing.
    ref = oracle.capture(TagState(2.0, 0.04), frames)
    got = fast.capture(TagState(2.0, 0.04), frames)
    assert np.array_equal(ref.estimates, got.estimates)

    # Cycle a pre-warmed state pool: the tag's per-state RF table is
    # press-state physics paid identically by both sounders (and
    # LRU-cached by the tag they share a design with), so timing it
    # would only dilute the sounder + extraction cost under test.
    pool = _states(BATCH)
    states = [pool[index % BATCH] for index in range(REPEATS)]
    for state in pool:
        extractor.extract(oracle.capture(state, frames))
        fast.capture_matrices(state, GROUPS, extractor)

    with observed() as registry:
        start = time.perf_counter()
        for index, state in enumerate(states):
            extractor.extract(oracle.capture(
                state, frames, start_time=float(index)))
        oracle_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for index, state in enumerate(states):
            fast.capture_matrices(state, GROUPS, extractor,
                                  start_time=float(index))
        fast_seconds = time.perf_counter() - start
        counters = registry.snapshot()["counters"]

    speedup = oracle_seconds / fast_seconds
    total_frames = REPEATS * frames
    _report.update({
        "frames_per_capture": frames,
        "oracle_seconds": oracle_seconds,
        "fast_seconds": fast_seconds,
        "cold_speedup": speedup,
        "oracle_frames_per_s": total_frames / oracle_seconds,
        "fast_frames_per_s": total_frames / fast_seconds,
        "counters": counters,
    })
    assert speedup >= MIN_COLD_SPEEDUP, (
        f"fused capture path is only {speedup:.2f}x faster than the "
        f"oracle; the batched sounder should deliver "
        f">= {MIN_COLD_SPEEDUP:.0f}x"
    )


def test_stream_batch_throughput():
    """``capture_batch`` tracks sequential oracle streams (informational).

    The stream path keeps per-frame noise, so both sides are bound by
    the same Gaussian draws and memory traffic; batching wins a modest
    margin, not an order of magnitude.  The report records the ratio
    but only ``cold_speedup`` is gated — here we just assert the batch
    path is not a regression beyond timer noise.
    """
    oracle = _build(FrameLevelSounder)
    fast = _build(FastSounder)
    states = _states(BATCH)
    frames = 625

    oracle.capture(states[0], frames)  # warm tag tables
    fast.capture_batch(states, frames)

    def time_sequential():
        start = time.perf_counter()
        clock = 0.0
        for state in states:
            oracle.capture(state, frames, start_time=clock)
            clock += frames * oracle.config.frame_period
        return time.perf_counter() - start

    def time_batch():
        start = time.perf_counter()
        fast.capture_batch(states, frames)
        return time.perf_counter() - start

    # Best-of to shed GC pauses and scheduler noise.
    sequential_seconds = min(time_sequential() for _ in range(5))
    batch_seconds = min(time_batch() for _ in range(5))

    ratio = sequential_seconds / batch_seconds
    _report.update({
        "stream_sequential_seconds": sequential_seconds,
        "stream_batch_seconds": batch_seconds,
        "stream_batch_speedup": ratio,
    })
    assert ratio > 0.7, (
        f"capture_batch ({batch_seconds:.3f}s) regressed against "
        f"sequential oracle captures ({sequential_seconds:.3f}s)"
    )


def test_perf_oracle_read(benchmark):
    """pytest-benchmark: one oracle capture+extract read."""
    oracle = _build(FrameLevelSounder)
    extractor = _extractor(oracle.config)
    frames = GROUPS * extractor.group_length
    state = TagState(2.0, 0.04)
    extractor.extract(oracle.capture(state, frames))
    benchmark.pedantic(
        lambda: extractor.extract(oracle.capture(state, frames)),
        rounds=3, iterations=1)


def test_perf_fast_read(benchmark):
    """pytest-benchmark: one fused capture_matrices read."""
    fast = _build(FastSounder)
    extractor = _extractor(fast.config)
    state = TagState(2.0, 0.04)
    fast.capture_matrices(state, GROUPS, extractor)
    benchmark.pedantic(
        lambda: fast.capture_matrices(state, GROUPS, extractor),
        rounds=3, iterations=1)
