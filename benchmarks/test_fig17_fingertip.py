"""Fig. 17 — fingertip presses: location histogram + force levels.

Paper claims: every fingertip touch at 60 mm is localized to the right
spot (well within a ~10 mm fingertip width), and the increasing force
levels the operator settles into are tracked — more than binary touch.
"""

import numpy as np

from repro.experiments import runners


def test_fig17_fingertip(benchmark, report):
    result = benchmark.pedantic(lambda: runners.run_fingertip(fast=False),
                                rounds=1, iterations=1)

    centre = result.target_location * 1e3
    histogram, edges = np.histogram(result.location_estimates * 1e3,
                                    bins=np.arange(centre - 5.0,
                                                   centre + 5.5, 1.0))
    lines = ["location histogram [mm bin -> count]:"]
    for count, lo, hi in zip(histogram, edges[:-1], edges[1:]):
        bar = "#" * count
        lines.append(f"  [{lo:5.1f}, {hi:5.1f})  {count:3d}  {bar}")
    lines.append("")
    lines.append("force levels (target -> estimated mean) [N]:")
    for target, estimate in zip(result.level_targets,
                                result.level_estimates):
        lines.append(f"  {target:5.2f} -> {estimate:5.2f}")
    lines.append(f"location spread (std): "
                 f"{result.location_histogram_spread * 1e3:.2f} mm")
    lines.append("paper shape: all touches localized at 60 mm; increasing "
                 "force levels recovered in order (Fig. 17)")
    report("fig17_fingertip", "\n".join(lines))

    assert np.all(np.abs(result.location_estimates
                         - result.target_location) < 5e-3)
    assert result.levels_monotonic
    relative = result.level_estimates / result.level_targets
    assert np.all(relative > 0.6)
    assert np.all(relative < 1.4)
