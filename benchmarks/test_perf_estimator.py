"""Performance benchmarks for the batched estimation engine.

Two claims are tracked here so future PRs can see the trajectory:

* ``ForceLocationEstimator.invert_batch`` returns exactly what the
  scalar ``invert`` loop returns (element-wise), at a large speedup
  (>= 5x at N=1000 on one core).
* ``CampaignExecutor`` sharding returns exactly what the serial loop
  returns, trading only wall-clock time.

The pytest-benchmark cases give calibrated local numbers; the
machine-readable summary in ``benchmarks/results/BENCH_estimator.json``
is produced with plain ``time.perf_counter`` so it is also emitted by
the CI smoke run under ``--benchmark-disable``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.estimator import ForceLocationEstimator
from repro.experiments.montecarlo import (
    acquisition_campaign,
    environment_campaign,
)
from repro.experiments.parallel import CampaignExecutor, shutdown_pools
from repro.experiments.scenarios import calibrated_model
from repro.obs import is_enabled, observed, stamp_report

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_estimator.json"

#: Batch size for the scalar-vs-batch comparison.
N_SAMPLES = 1000

#: Trials for the serial-vs-parallel campaign comparison.  Enough to
#: amortize one pool spawn over the cold run (4 trials could not — the
#: original methodology bug that reported a 0.52x "regression" that
#: was really per-run spawn cost).
CAMPAIGN_TRIALS = 24

#: Workers for the parallel campaign runs.
CAMPAIGN_WORKERS = 4

#: Simulated sounder frame-acquisition window per campaign trial.
#: Pacing the benchmark campaign at hardware acquisition rate makes
#: the speedup measure executor concurrency + orchestration overhead
#: rather than the host's core count, so the gate holds on one-core
#: CI runners and developer laptops alike.
ACQUISITION_WINDOW_S = 0.1

_report: dict = {"n_samples": N_SAMPLES, "campaign_trials": CAMPAIGN_TRIALS}


@pytest.fixture(scope="module")
def estimator():
    """Estimator over the shared fast 900 MHz calibration."""
    return ForceLocationEstimator(calibrated_model(900e6, fast=True))


@pytest.fixture(scope="module")
def phases(estimator):
    """N_SAMPLES phase pairs from presses across the calibrated span."""
    rng = np.random.default_rng(42)
    forces = rng.uniform(0.5, 8.0, N_SAMPLES)
    low, high = estimator.model.locations[0], estimator.model.locations[-1]
    locations = rng.uniform(low, high, N_SAMPLES)
    phi1, phi2 = estimator.model.predict_batch(forces, locations)
    noise = rng.normal(0.0, np.radians(1.0), (2, N_SAMPLES))
    return phi1 + noise[0], phi2 + noise[1]


def _scalar_invert(estimator, phi1, phi2):
    return [estimator.invert(float(p1), float(p2))
            for p1, p2 in zip(phi1, phi2)]


def _best_of(runs, fn, *args):
    best, result = float("inf"), None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write the machine-readable summary after the module finishes."""
    yield
    stamp_report(_report, config={"n_samples": N_SAMPLES,
                                  "campaign_trials": CAMPAIGN_TRIALS})
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(_report, indent=2, sort_keys=True)
                          + "\n")


def test_batch_matches_scalar_and_speedup(estimator, phases):
    """invert_batch == scalar loop element-wise, and >= 5x faster."""
    phi1, phi2 = phases
    scalar_seconds, scalar = _best_of(2, _scalar_invert, estimator,
                                      phi1, phi2)
    batch_seconds, batch = _best_of(3, estimator.invert_batch, phi1, phi2)

    force_delta = np.max(np.abs(
        batch.force - np.array([e.force for e in scalar])))
    location_delta = np.max(np.abs(
        batch.location - np.array([e.location for e in scalar])))
    residual_delta = np.max(np.abs(
        batch.residual - np.array([e.residual for e in scalar])))
    assert force_delta <= 1e-9
    assert location_delta <= 1e-9
    assert residual_delta <= 1e-9
    assert np.array_equal(batch.touched,
                          np.array([e.touched for e in scalar]))

    speedup = scalar_seconds / batch_seconds
    _report.update({
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "batch_speedup": speedup,
        "max_force_delta_n": float(force_delta),
        "max_location_delta_m": float(location_delta),
        "max_residual_delta_rad": float(residual_delta),
    })
    assert speedup >= 5.0, (
        f"invert_batch is only {speedup:.1f}x faster than the scalar "
        f"loop at N={N_SAMPLES}; the batched engine should be >= 5x"
    )


def test_obs_instrumentation_overhead(estimator, phases):
    """Off-by-default instrumentation costs < 5% on invert_batch.

    The instrumented paths gate on ``repro.obs.active()`` — one
    function call and a branch when observation is off (the default).
    Measured here against the obs-enabled path, which does strictly
    more work (counters, histograms, span bookkeeping); the small
    absolute slack absorbs scheduler jitter on the ~100 ms batch.
    """
    phi1, phi2 = phases
    assert not is_enabled()
    off_seconds, batch_off = _best_of(5, estimator.invert_batch,
                                      phi1, phi2)
    with observed() as registry:
        on_seconds, batch_on = _best_of(5, estimator.invert_batch,
                                        phi1, phi2)
        counters = registry.snapshot()["counters"]
    assert counters["estimator.batch_inversions"] == 5
    assert counters["estimator.batched_samples"] == 5 * N_SAMPLES
    assert np.array_equal(batch_off.force, batch_on.force)
    overhead = on_seconds / off_seconds - 1.0
    _report.update({
        "obs_disabled_seconds": off_seconds,
        "obs_enabled_seconds": on_seconds,
        "obs_enabled_overhead": overhead,
    })
    assert on_seconds <= 1.05 * off_seconds + 0.010, (
        f"instrumentation overhead is {overhead:.1%} on invert_batch "
        f"at N={N_SAMPLES}; the obs layer must stay under 5%"
    )


def test_campaign_parallel_matches_serial():
    """Sharded campaign == serial campaign, and the pool pays.

    Three timed runs of the same acquisition-paced campaign: serial,
    cold pool (first ``run()`` pays the worker spawn), warm pool
    (reused executor — the steady state of a data-collection session).
    Cold and warm are reported as separate keys so a regression in
    either spawn cost or steady-state overhead is visible; the
    headline ``parallel_speedup`` is the warm number and is gated at
    >= 2.0 here and against the baseline in ``compare_bench.py``.
    """
    serial_start = time.perf_counter()
    serial = acquisition_campaign(
        CAMPAIGN_TRIALS, window_s=ACQUISITION_WINDOW_S,
        executor=CampaignExecutor(workers=1))
    serial_seconds = time.perf_counter() - serial_start

    shutdown_pools()
    executor = CampaignExecutor(workers=CAMPAIGN_WORKERS,
                                warmup=((900e6, True),))
    try:
        cold_start = time.perf_counter()
        cold = acquisition_campaign(
            CAMPAIGN_TRIALS, window_s=ACQUISITION_WINDOW_S,
            executor=executor)
        cold_pool_seconds = time.perf_counter() - cold_start

        warm_start = time.perf_counter()
        warm = acquisition_campaign(
            CAMPAIGN_TRIALS, window_s=ACQUISITION_WINDOW_S,
            executor=executor)
        warm_pool_seconds = time.perf_counter() - warm_start
    finally:
        shutdown_pools()

    for parallel in (cold, warm):
        assert np.array_equal(serial.force_medians,
                              parallel.force_medians)
        assert np.array_equal(serial.location_medians,
                              parallel.location_medians)

    cold_speedup = serial_seconds / cold_pool_seconds
    warm_speedup = serial_seconds / warm_pool_seconds
    _report["campaign"] = {
        "workers": CAMPAIGN_WORKERS,
        "trials": CAMPAIGN_TRIALS,
        "acquisition_window_s": ACQUISITION_WINDOW_S,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "cold_pool_seconds": cold_pool_seconds,
        "warm_pool_seconds": warm_pool_seconds,
        "cold_speedup": cold_speedup,
        "parallel_speedup": warm_speedup,
    }
    assert warm_speedup >= 2.0, (
        f"warm-pool campaign is only {warm_speedup:.2f}x faster than "
        f"serial at {CAMPAIGN_WORKERS} workers; the persistent pool "
        f"must clear 2x on the acquisition-paced workload"
    )


def test_perf_scalar_inversion(benchmark, estimator, phases):
    """pytest-benchmark: the N-sample scalar loop (the old path)."""
    phi1, phi2 = phases
    benchmark.pedantic(_scalar_invert, args=(estimator, phi1, phi2),
                       rounds=2, iterations=1)


def test_perf_batch_inversion(benchmark, estimator, phases):
    """pytest-benchmark: the one-shot batched grid search."""
    phi1, phi2 = phases
    benchmark.pedantic(estimator.invert_batch, args=(phi1, phi2),
                       rounds=5, iterations=1)


def test_perf_campaign_serial(benchmark):
    """pytest-benchmark: the environment campaign, serial loop."""
    benchmark.pedantic(environment_campaign, args=(CAMPAIGN_TRIALS,),
                       kwargs={"executor": CampaignExecutor(workers=1)},
                       rounds=1, iterations=1)


def test_perf_campaign_parallel(benchmark):
    """pytest-benchmark: the same campaign sharded across 4 workers."""
    benchmark.pedantic(environment_campaign, args=(CAMPAIGN_TRIALS,),
                       kwargs={"executor": CampaignExecutor(workers=4)},
                       rounds=1, iterations=1)
