"""Performance benchmarks for the network gateway.

The network-layer claims tracked here:

* Micro-batching survives the socket hop — requests pipelined over N
  independent tenant WebSocket connections still coalesce into
  multi-request batches at the scheduler.
* The wire adds latency but not error: every answered response is
  bit-identical to a direct in-process ``InferenceService`` run over
  the same requests, and nothing is rejected at bench quotas.
* Throughput through real loopback sockets stays within a bounded
  factor of the in-process path (``gateway_vs_inprocess``, the
  machine-normalized ratio ``compare_bench.py`` gates).

The machine-readable report lands in
``benchmarks/results/BENCH_gateway.json`` (same shape as the
``repro gateway-bench`` CLI output).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.gateway import run_gateway_benchmark
from repro.serve import LoadProfile, write_report

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_gateway.json"

#: The tracked load shape: 8 tenant connections x 64 samples each.
PROFILE = LoadProfile(sensors=8, requests_per_sensor=64, max_batch=32,
                      max_delay_s=0.002, seed=7)


@pytest.fixture(scope="module")
def gateway_report():
    """Run the tracked load once; persist the JSON report."""
    report = run_gateway_benchmark(PROFILE)
    write_report(report, BENCH_PATH)
    return report


def test_gateway_answers_everything(gateway_report):
    """Bench tenants have unlimited quotas: zero rejections."""
    gateway = gateway_report["gateway"]
    assert gateway["answered"] == PROFILE.total_requests
    assert gateway["rejected"] == 0
    assert gateway["rejection_rate"] == 0.0


def test_gateway_still_fills_micro_batches(gateway_report):
    """Cross-connection coalescing survives the socket hop."""
    gateway = gateway_report["gateway"]
    assert gateway["mean_batch_size"] > 1.0
    assert gateway["max_batch_size"] <= PROFILE.max_batch


def test_gateway_parity_with_inprocess_service(gateway_report):
    """The network layer never changes the numbers."""
    parity = gateway_report["parity"]
    assert parity["compared"] == PROFILE.total_requests
    assert parity["max_force_delta_n"] == 0.0
    assert parity["max_location_delta_m"] == 0.0
    assert parity["touched_match"]


def test_gateway_throughput_within_bounds(gateway_report):
    """Socket framing costs something, but not an order of magnitude."""
    ratio = gateway_report["gateway_vs_inprocess"]
    assert ratio > 0.05, (
        f"gateway served only {ratio:.2f}x the in-process throughput; "
        "the framing layer should not dominate"
    )
    gateway = gateway_report["gateway"]
    assert 0.0 <= gateway["p50_latency_ms"] <= gateway["p99_latency_ms"]
    assert gateway["throughput_rps"] > 0.0


def test_gateway_report_is_stamped(gateway_report):
    manifest = gateway_report["manifest"]
    assert manifest["config_hash"]
    assert "gateway.responses" in manifest["instruments"]["counters"]
