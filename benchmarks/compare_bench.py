"""Perf-regression gate: diff a fresh ``BENCH_*.json`` vs a baseline.

CI runs this after the bench-smoke suites regenerate the benchmark
reports, comparing them against the baselines committed in
``benchmarks/results/``.  The gate fails (exit code 1) when any
tracked throughput metric drops — or any latency metric in
``LOWER_IS_BETTER`` rises — by more than ``--max-regression``
(default 20%).

By default only **machine-normalized ratio metrics** are gated — the
batch-vs-scalar speedup and the service-vs-serial speedup — because a
CI runner is not the machine that produced the committed baseline, so
absolute req/s numbers would gate on hardware, not code.  Pass
``--absolute`` to also gate raw throughputs (useful when baseline and
fresh report come from the same machine).

The script understands both report schemas (``BENCH_estimator.json``
and ``BENCH_serve.json``) by key inspection, so pre-``schema_version``
baselines keep working.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Metrics gated on *increase* rather than decrease (latencies).
LOWER_IS_BETTER = frozenset({
    "gateway_p99_latency_ms",
    "gateway_p50_latency_ms",
    "fleet_p99_latency_ms",
})


def extract_metrics(report: dict, absolute: bool = False
                    ) -> Dict[str, float]:
    """Higher-is-better throughput metrics from either report schema."""
    metrics: Dict[str, float] = {}
    # BENCH_estimator.json shape.
    if "batch_speedup" in report:
        metrics["batch_speedup"] = float(report["batch_speedup"])
    if absolute and report.get("batch_seconds") and "n_samples" in report:
        metrics["batch_inversions_per_s"] = (
            report["n_samples"] / report["batch_seconds"])
    if absolute and report.get("scalar_seconds") and "n_samples" in report:
        metrics["scalar_inversions_per_s"] = (
            report["n_samples"] / report["scalar_seconds"])
    # BENCH_estimator.json campaign block: warm- and cold-pool
    # speedups over the acquisition-paced serial campaign.  Both are
    # machine-normalized ratios (and the workload is paced by sleeps,
    # not host compute), so they are always gated — the original
    # 0.52x parallel regression shipped precisely because this block
    # was invisible to CI.
    campaign = report.get("campaign")
    if isinstance(campaign, dict):
        if "parallel_speedup" in campaign:
            metrics["campaign_parallel_speedup"] = float(
                campaign["parallel_speedup"])
        if "cold_speedup" in campaign:
            metrics["campaign_cold_speedup"] = float(
                campaign["cold_speedup"])
    # BENCH_cache.json shape.
    if "warm_speedup" in report:
        metrics["warm_speedup"] = float(report["warm_speedup"])
    # BENCH_reader.json shape.  Only the fused-vs-oracle cold speedup
    # is gated; the stream batch ratio sits near 1 by design (both
    # sides are bound by the same per-frame noise draws) and would
    # gate on timer noise.
    if "cold_speedup" in report:
        metrics["cold_speedup"] = float(report["cold_speedup"])
    if absolute and report.get("fast_frames_per_s"):
        metrics["fast_frames_per_s"] = float(report["fast_frames_per_s"])
    if absolute and report.get("oracle_frames_per_s"):
        metrics["oracle_frames_per_s"] = float(
            report["oracle_frames_per_s"])
    # BENCH_chaos.json shape: the survival rate is a ratio in [0, 1]
    # and machine-independent, so it is always gated.
    if "survival" in report:
        metrics["chaos_survival_rate"] = float(
            report["survival"]["survival_rate"])
    # BENCH_gateway.json shape.  The gateway-vs-in-process throughput
    # ratio and the accept rate are machine-normalized, so they are
    # always gated; absolute throughput and latency percentiles gate
    # hardware as much as code and sit behind ``--absolute``.
    if "gateway_vs_inprocess" in report:
        metrics["gateway_vs_inprocess"] = float(
            report["gateway_vs_inprocess"])
        gateway = report.get("gateway", {})
        if "rejection_rate" in gateway:
            metrics["gateway_accept_rate"] = 1.0 - float(
                gateway["rejection_rate"])
        if absolute:
            if "throughput_rps" in gateway:
                metrics["gateway_throughput_rps"] = float(
                    gateway["throughput_rps"])
            for percentile in ("p50", "p99"):
                key = f"{percentile}_latency_ms"
                if key in gateway:
                    metrics[f"gateway_{key}"] = float(gateway[key])
    # BENCH_fleet.json shape.  The sharded-vs-single ratio and the
    # ring balance are machine-normalized; parity is the bit-identical
    # contract collapsed to 1.0/0.0, so any nonzero delta fails the
    # gate outright (a 1.0 baseline cannot tolerate a 0.0).
    if "sharded_vs_single" in report:
        metrics["sharded_vs_single"] = float(report["sharded_vs_single"])
        if "shard_balance" in report:
            metrics["fleet_shard_balance"] = float(
                report["shard_balance"])
        parity = report.get("parity", {})
        if parity:
            metrics["fleet_parity_ok"] = float(
                parity.get("max_force_delta_n", 1.0) == 0.0
                and parity.get("max_location_delta_m", 1.0) == 0.0
                and parity.get("touched_match", False))
        if absolute and "fleet" in report:
            metrics["fleet_throughput_rps"] = float(
                report["fleet"]["throughput_rps"])
            metrics["fleet_p99_latency_ms"] = float(
                report["fleet"]["latency_p99_s"]) * 1e3
    # BENCH_surrogate.json shape.  The amortized-predict speedup is a
    # machine-normalized ratio (grid and surrogate timed back-to-back
    # on the same host), so it is always gated.  The accuracy contract
    # is collapsed to 1.0/0.0 on the normalized p95 error delta (worst
    # of force/location as a fraction of its cap): a fresh report over
    # the cap reads 0.0 against a 1.0 baseline and fails outright —
    # the delta is a *hard cap*, not a trend to regress gradually.
    if "surrogate_speedup" in report:
        metrics["surrogate_speedup"] = float(report["surrogate_speedup"])
        if "surrogate_p95_error_delta" in report:
            metrics["surrogate_parity_ok"] = float(
                report["surrogate_p95_error_delta"] <= 1.0)
        if "surrogate_fallback_rate" in report:
            metrics["surrogate_accept_rate"] = 1.0 - float(
                report["surrogate_fallback_rate"])
    # BENCH_serve.json shape.
    if "speedup_vs_serial" in report:
        metrics["speedup_vs_serial"] = float(report["speedup_vs_serial"])
    if absolute and "service" in report:
        metrics["service_throughput_rps"] = float(
            report["service"]["throughput_rps"])
    if absolute and "serial_baseline" in report:
        metrics["serial_throughput_rps"] = float(
            report["serial_baseline"]["throughput_rps"])
    return metrics


def compare(baseline: dict, fresh: dict, max_regression: float = 0.20,
            absolute: bool = False
            ) -> Tuple[List[str], List[str]]:
    """Compare two reports; returns (table lines, failure messages)."""
    base_metrics = extract_metrics(baseline, absolute=absolute)
    fresh_metrics = extract_metrics(fresh, absolute=absolute)
    if not base_metrics:
        return [], ["baseline report carries no tracked metrics"]
    lines = [f"{'metric':<26}  {'baseline':>12}  {'fresh':>12}  "
             f"{'change':>8}  verdict"]
    failures: List[str] = []
    for name, base_value in sorted(base_metrics.items()):
        fresh_value = fresh_metrics.get(name)
        if fresh_value is None:
            failures.append(f"metric {name} missing from fresh report")
            lines.append(f"{name:<26}  {base_value:>12.3f}  "
                         f"{'missing':>12}  {'-':>8}  FAIL")
            continue
        if base_value <= 0.0:
            lines.append(f"{name:<26}  {base_value:>12.3f}  "
                         f"{fresh_value:>12.3f}  {'-':>8}  skip "
                         f"(non-positive baseline)")
            continue
        change = fresh_value / base_value - 1.0
        if name in LOWER_IS_BETTER:
            regressed = change > max_regression
            direction = "rose"
        else:
            regressed = change < -max_regression
            direction = "regressed"
        verdict = "FAIL" if regressed else "ok"
        lines.append(f"{name:<26}  {base_value:>12.3f}  "
                     f"{fresh_value:>12.3f}  {change:>+7.1%}  {verdict}")
        if regressed:
            failures.append(
                f"{name} {direction} {abs(change):.1%} "
                f"({base_value:.3f} -> {fresh_value:.3f}), "
                f"above the {max_regression:.0%} gate")
    return lines, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a fresh benchmark report regresses "
                    "throughput vs a baseline")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="tolerated fractional drop (default 0.20)")
    parser.add_argument("--absolute", action="store_true",
                        help="also gate raw throughputs, not just "
                             "machine-normalized speedups")
    parser.add_argument("--slo", action="store_true",
                        help="also evaluate the declarative serve SLOs "
                             "against the fresh report")
    args = parser.parse_args(argv)
    if not 0.0 <= args.max_regression < 1.0:
        parser.error("--max-regression must be in [0, 1)")
    baseline = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())
    lines, failures = compare(baseline, fresh,
                              max_regression=args.max_regression,
                              absolute=args.absolute)
    print(f"perf gate: {args.fresh} vs baseline {args.baseline} "
          f"(max regression {args.max_regression:.0%})")
    for line in lines:
        print(line)
    if args.slo:
        try:
            from repro.obs.slo import (
                evaluate_report,
                render_statuses,
                report_slos,
            )
        except ImportError:
            # Running from a checkout without an installed package.
            sys.path.insert(
                0, str(Path(__file__).resolve().parents[1] / "src"))
            from repro.obs.slo import (
                evaluate_report,
                render_statuses,
                report_slos,
            )

        statuses = evaluate_report(report_slos(), fresh)
        print()
        print(render_statuses(statuses))
        failures.extend(
            f"SLO {status['name']} violated" for status in statuses
            if not status["ok"])
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
