"""Fig. 14 — contact-location error CDFs at 900 MHz and 2.4 GHz.

Paper claim: median location error 0.86 mm at 900 MHz and 0.59 mm at
2.4 GHz — about 5x better than RFID-touch systems, which localize at
centimetre (tag-pitch) granularity.
"""

from repro.experiments.metrics import (
    median_absolute_error,
    percentile_absolute_error,
)


def test_fig14_location_cdf(benchmark, report, accuracy_900, accuracy_2g4):
    benchmark.pedantic(
        lambda: median_absolute_error(accuracy_900.location_errors),
        rounds=1, iterations=1)

    lines = [
        f"median @900 MHz : "
        f"{accuracy_900.median_location_error * 1e3:.3f} mm "
        "(paper: 0.86 mm)",
        f"median @2.4 GHz : "
        f"{accuracy_2g4.median_location_error * 1e3:.3f} mm "
        "(paper: 0.59 mm)",
        f"P90 @900 MHz    : "
        f"{percentile_absolute_error(accuracy_900.location_errors, 90) * 1e3:.3f} mm",
        "per-location medians @900 MHz [mm]: " + ", ".join(
            f"{loc * 1e3:.0f}mm="
            f"{median_absolute_error(le) * 1e3:.3f}"
            for loc, (_, le) in sorted(accuracy_900.per_location.items())),
        "paper shape: sub-millimetre localization on a continuum "
        "(Fig. 14)",
    ]
    report("fig14_location_cdf", "\n".join(lines))

    assert accuracy_900.median_location_error < 1.5e-3
    assert accuracy_2g4.median_location_error < 1.5e-3
    assert percentile_absolute_error(
        accuracy_900.location_errors, 90) < 5e-3
