"""Extension benches: moving clutter, energy harvesting, streaming.

These cover the paper's discussion-section claims that the core
evaluation does not measure directly:

* Section 3.3's "artificial Doppler" separation from real motion.
* Section 6's battery-free-via-harvesting feasibility.
* Fig. 17b's force-versus-time view, via the streaming tracker.
"""

import numpy as np

from repro.channel.mobility import (
    clutter_rejection_db,
    equivalent_speed,
    walking_person_clutter,
)
from repro.core.harmonics import HarmonicExtractor, integer_period_group_length
from repro.core.tracking import StreamingTracker
from repro.channel.propagation import BackscatterLink
from repro.experiments.scenarios import calibrated_model, default_transducer
from repro.reader.sounder import FrameLevelSounder, concatenate_streams
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.harvester import EnergyHarvester
from repro.sensor.power import wiforce_power_budget
from repro.sensor.tag import TagState, WiForceTag


def test_moving_clutter_rejection(benchmark, report):
    """A walking person barely moves the force estimate."""

    def run():
        carrier = 900e6
        config = OFDMSounderConfig(carrier_frequency=carrier)
        tag = WiForceTag(default_transducer(), clock_offset_ppm=20.0)
        model = calibrated_model(carrier)
        results = {}
        for label, seed, walker in (("static room", 61, None),
                                    ("walking person", 62, True)):
            rng = np.random.default_rng(seed)
            clutter = walking_person_clutter(carrier, rng=rng) \
                if walker else None
            sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                        clutter, rng=rng)
            from repro.core.pipeline import WiForceReader
            reader = WiForceReader(sounder, model)
            errors = []
            for force in (2.0, 4.0, 6.0):
                reading = reader.read(TagState(force, 0.040),
                                      rebaseline=True)
                errors.append(abs(reading.force - force))
            results[label] = float(np.median(errors))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rejection = clutter_rejection_db(1e3, 10.0, 625, 57.6e-6)
    lines = [
        f"median force error, static room   : "
        f"{results['static room']:.3f} N",
        f"median force error, walking person: "
        f"{results['walking person']:.3f} N",
        f"DFT rejection of 10 Hz motion at the 1 kHz tone: "
        f"{rejection:.1f} dB",
        f"equivalent speed of the 1 kHz tone: "
        f"{equivalent_speed(1e3, 900e6):.0f} m/s "
        "(vs ~1.4 m/s walking)",
        "paper shape: real motion lands near DC and is nulled by the "
        "snapshot DFT (section 3.3)",
    ]
    report("extension_moving_clutter", "\n".join(lines))

    assert results["walking person"] < 3.0 * max(results["static room"],
                                                 0.05)


def test_energy_harvesting_budget(benchmark, report):
    """Section 6: the sub-uW tag can run off the reader's excitation."""

    def run():
        harvester = EnergyHarvester()
        budget = wiforce_power_budget()
        at_half_metre = harvester.report(budget, 10.0, 6.0, 0.5, 900e6)
        break_even = harvester.break_even_range(budget, 10.0, 6.0, 900e6)
        return at_half_metre, break_even

    at_half_metre, break_even = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    lines = [
        f"tag consumption              : "
        f"{at_half_metre.tag_power * 1e6:.3f} uW",
        f"incident RF @0.5 m, 10 dBm   : "
        f"{at_half_metre.incident_power * 1e6:.2f} uW",
        f"harvested DC @0.5 m          : "
        f"{at_half_metre.harvested_power * 1e6:.2f} uW "
        f"(margin {at_half_metre.margin:.1f}x)",
        f"break-even range             : {break_even:.1f} m",
        "paper shape: battery-free operation is feasible at the "
        "deployment geometry (section 6)",
    ]
    report("extension_energy_harvesting", "\n".join(lines))

    assert at_half_metre.feasible
    assert break_even > 1.0


def test_streaming_force_tracking(benchmark, report):
    """Fig. 17b's view: a continuous force-vs-time profile."""

    def run():
        carrier = 2.4e9
        config = OFDMSounderConfig(carrier_frequency=carrier)
        tag = WiForceTag(default_transducer(), clock_offset_ppm=20.0)
        rng = np.random.default_rng(71)
        sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                    rng=rng)
        group = integer_period_group_length(config.frame_period, 1e3)
        extractor = HarmonicExtractor(
            tones=(tag.clocking.readout_port1,
                   tag.clocking.readout_port2),
            group_length=group)
        model = calibrated_model(carrier)
        segments = [(TagState(), 4)]
        for level in (1.5, 3.0, 4.5, 6.0):
            segments.append((TagState(level, 0.060), 3))
        segments.append((TagState(), 2))
        streams = []
        clock = 0.0
        for state, groups in segments:
            stream = sounder.capture(state, groups * group,
                                     start_time=clock)
            clock += stream.frames * config.frame_period
            streams.append(stream)
        tracker = StreamingTracker(model, extractor, baseline_groups=4)
        samples = tracker.process(concatenate_streams(*streams))
        events = tracker.touch_events(samples)
        return samples, events

    samples, events = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["time [ms]  force [N]  location [mm]  touched"]
    for sample in samples:
        lines.append(f"{sample.time * 1e3:8.1f}  {sample.force:8.2f}  "
                     f"{sample.location * 1e3:12.1f}  "
                     f"{'yes' if sample.touched else 'no'}")
    lines.append("")
    lines.append(f"touch events detected: {len(events)}")
    for event in events:
        lines.append(f"  onset {event.onset * 1e3:.0f} ms, peak "
                     f"{event.peak_force:.2f} N at "
                     f"{event.mean_location * 1e3:.1f} mm")
    lines.append("paper shape: the tracker recovers the stepped force "
                 "profile and its location over time (Fig. 17b)")
    report("extension_streaming_tracking", "\n".join(lines))

    touched_forces = [s.force for s in samples if s.touched]
    assert touched_forces
    assert max(touched_forces) > 4.0
    assert len(events) >= 1
    assert abs(events[0].mean_location - 0.060) < 3e-3


def test_multitouch_ambiguity(benchmark, report):
    """Section 7's deferred problem, quantified: when are two presses
    ambiguous with one, and when are they at least detectable?"""
    from repro.core.estimator import ForceLocationEstimator
    from repro.experiments.scenarios import calibrated_model
    from repro.sensor.multitouch import TwoPressState, ambiguity_report

    def run():
        tag = WiForceTag(default_transducer())
        estimator = ForceLocationEstimator(calibrated_model(900e6))
        rows = []
        for a, b in ((0.035, 0.045), (0.030, 0.050), (0.025, 0.055),
                     (0.020, 0.060)):
            state = TwoPressState(3.0, a, 3.0, b)
            result = ambiguity_report(tag, estimator, 900e6, state)
            rows.append((b - a, result))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["separation   fit residual   single-press reading   "
             "(true: 3 N + 3 N)"]
    for separation, result in rows:
        lines.append(
            f"  {separation * 1e3:5.0f} mm   {result.residual_deg:8.2f} deg"
            f"   {result.inferred_force:5.2f} N @ "
            f"{result.inferred_location * 1e3:5.1f} mm")
    lines.append("")
    lines.append("reading: close presses are genuinely ambiguous (read "
                 "as one too-strong press); far presses exceed any "
                 "single press's edge spread and are detectable by the "
                 "fit residual — the precise shape of the paper's "
                 "deferred multi-touch problem")
    report("extension_multitouch", "\n".join(lines))

    assert rows[0][1].residual_deg < 5.0      # close: ambiguous
    assert rows[-1][1].residual_deg > 15.0    # far: detectable
    residuals = [result.residual_deg for _, result in rows]
    assert residuals == sorted(residuals)
