"""Coexistence benches: Wi-Fi interference and tag orientation.

The paper pitches WiForce as coexisting with commodity Wi-Fi; these
benches quantify the two deployment stresses that come with that:
bursty co-channel traffic corrupting sounding frames, and tags mounted
at arbitrary orientations.
"""

import numpy as np

from repro.channel.interference import (
    BurstyInterferer,
    corrupt_stream,
    excise_interference,
)
from repro.channel.propagation import BackscatterLink
from repro.core.calibration import harmonic_differential_phases
from repro.core.harmonics import HarmonicExtractor, integer_period_group_length
from repro.core.phase import differential_phase
from repro.experiments.scenarios import default_transducer
from repro.reader.sounder import FrameLevelSounder
from repro.reader.waveform import OFDMSounderConfig
from repro.rf.antenna import OrientedLinkBudget
from repro.sensor.tag import TagState, WiForceTag


def test_interference_excision(benchmark, report):
    """Bursty traffic corrupts the differential phase; excision fixes it."""

    def run():
        carrier = 900e6
        config = OFDMSounderConfig(carrier_frequency=carrier)
        tag = WiForceTag(default_transducer())
        group = integer_period_group_length(config.frame_period, 1e3)
        tones = (tag.clocking.readout_port1, tag.clocking.readout_port2)
        extractor = HarmonicExtractor(tones=tones, group_length=group)
        state = TagState(4.0, 0.040)
        expected = harmonic_differential_phases(tag, carrier, 4.0, 0.040)

        def phase_error(base_stream, touch_stream):
            b = extractor.extract(base_stream)
            t = extractor.extract(touch_stream)
            phi = differential_phase(b[tones[0]].values.mean(axis=0),
                                     t[tones[0]].values.mean(axis=0))
            return abs(np.degrees(phi - expected[0]))

        clean_errors = []
        corrupted_errors = []
        excised_errors = []
        for trial in range(6):
            rng = np.random.default_rng(81 + trial)
            sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                        rng=rng)
            base = sounder.capture(TagState(), 2 * group)
            touch = sounder.capture(state, 2 * group,
                                    start_time=base.duration)
            interferer = BurstyInterferer(
                duty=0.15, interference_to_signal_db=0.0)
            base_hit, _ = corrupt_stream(base, interferer, rng)
            touch_hit, _ = corrupt_stream(touch, interferer, rng)
            clean_errors.append(phase_error(base, touch))
            corrupted_errors.append(phase_error(base_hit, touch_hit))
            excised_errors.append(phase_error(
                excise_interference(base_hit)[0],
                excise_interference(touch_hit)[0]))
        return (float(np.median(clean_errors)),
                float(np.median(corrupted_errors)),
                float(np.median(excised_errors)))

    clean, corrupted, excised = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    lines = [
        f"phase error, clean band            : {clean:6.3f} deg",
        f"phase error, 15% bursty Wi-Fi      : {corrupted:6.3f} deg",
        f"phase error, after frame excision  : {excised:6.3f} deg",
        "reading: median-frame excision removes the detected bursts "
        "and roughly halves the residual phase error; the remainder "
        "comes from weak, sub-threshold hits",
    ]
    report("coexistence_interference", "\n".join(lines))

    assert corrupted > 2.0 * max(clean, 0.05)
    assert excised < 0.5 * corrupted


def test_orientation_margin(benchmark, report):
    """How much misalignment the link budget absorbs."""

    def run():
        rows = []
        for rotation_deg in (0.0, 30.0, 45.0, 60.0, 80.0):
            budget = OrientedLinkBudget(
                tag_rotation=np.radians(rotation_deg))
            rows.append((rotation_deg, budget.two_way_penalty_db()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["tag polarization rotation -> two-way link penalty:"]
    for rotation, penalty in rows:
        lines.append(f"  {rotation:5.1f} deg : {penalty:6.2f} dB")
    lines.append("reading: the ~35 dB backscatter SNR margin of the "
                 "half-metre deployment absorbs rotations past 60 deg; "
                 "only near-orthogonal mounting threatens the link")
    report("coexistence_orientation", "\n".join(lines))

    penalties = dict(rows)
    assert penalties[0.0] < 0.5
    assert penalties[45.0] < 10.0
    assert penalties[80.0] > penalties[45.0]
