"""Shared benchmark fixtures and result reporting.

Benchmarks reproduce the paper's tables/figures at full resolution, so
the expensive pieces (the accuracy sweeps that feed both Fig. 13 and
Fig. 14) are computed once per session and shared.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import runners

RESULTS_DIR = Path(__file__).parent / "results"


def _report(name: str, text: str) -> None:
    """Print a paper-style result block and persist it to disk."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def report():
    """The result reporter (print + persist under benchmarks/results)."""
    return _report


@pytest.fixture(scope="session")
def accuracy_900():
    """Figs. 13-14 protocol at 900 MHz (shared by both benches)."""
    return runners.run_wireless_accuracy(900e6, fast=False, force_points=8,
                                         repeats=3, seed=5)


@pytest.fixture(scope="session")
def accuracy_2g4():
    """Figs. 13-14 protocol at 2.4 GHz."""
    return runners.run_wireless_accuracy(2.4e9, fast=False, force_points=8,
                                         repeats=3, seed=5)
