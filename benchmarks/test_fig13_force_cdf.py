"""Fig. 13 — force-magnitude error CDFs at 900 MHz and 2.4 GHz.

Paper claim: median force error 0.56 N at 900 MHz and 0.34 N at
2.4 GHz; the higher carrier wins because it accumulates more phase per
millimetre; the error is uniform along the sensor length.
"""

import numpy as np

from repro.experiments.metrics import (
    empirical_cdf,
    median_absolute_error,
    percentile_absolute_error,
)


def _cdf_lines(errors, label):
    values, probabilities = empirical_cdf(errors)
    lines = [f"{label}:"]
    for q in (0.25, 0.5, 0.75, 0.9):
        index = int(np.searchsorted(probabilities, q))
        index = min(index, values.size - 1)
        lines.append(f"  P{int(q * 100):02d} |error| <= {values[index]:.3f}")
    return lines


def test_fig13_force_cdf(benchmark, report, accuracy_900, accuracy_2g4):
    benchmark.pedantic(
        lambda: median_absolute_error(accuracy_900.force_errors),
        rounds=1, iterations=1)

    lines = []
    lines += _cdf_lines(accuracy_900.force_errors, "900 MHz force error [N]")
    lines += _cdf_lines(accuracy_2g4.force_errors, "2.4 GHz force error [N]")
    lines.append("")
    lines.append(f"median @900 MHz : {accuracy_900.median_force_error:.3f} N "
                 "(paper: 0.56 N)")
    lines.append(f"median @2.4 GHz : {accuracy_2g4.median_force_error:.3f} N "
                 "(paper: 0.34 N)")
    lines.append("per-location medians @900 MHz [N]: " + ", ".join(
        f"{loc * 1e3:.0f}mm={median_absolute_error(fe):.3f}"
        for loc, (fe, _) in sorted(accuracy_900.per_location.items())))
    lines.append("paper shape: sub-newton medians, uniform along the "
                 "length, better at the higher carrier (Fig. 13)")
    lines.append("")
    from repro.experiments.figures import ascii_cdf
    lines.append(ascii_cdf([
        ("900MHz", accuracy_900.force_errors),
        ("2.4GHz", accuracy_2g4.force_errors),
    ], x_label="|force error| [N]"))
    report("fig13_force_cdf", "\n".join(lines))

    assert accuracy_900.median_force_error < 0.7
    assert accuracy_2g4.median_force_error < 0.7
    assert percentile_absolute_error(accuracy_900.force_errors, 90) < 2.0
