"""Performance benchmark for the content-addressed artifact cache.

The claim under test: re-running a Monte-Carlo campaign with a warm
artifact cache skips the deterministic cold path (full-resolution
contact tables, nominal-model calibration, per-unit calibrations) and
is >= 3x faster than the cold run — while producing bit-identical
campaign medians, warm, cold, or with the cache disabled outright.

Each measurement runs in a **child process** so every run pays (or
skips) the true cold path: a fresh interpreter has no ``lru_cache``
state, so a warm run exercises exactly the disk tier that a fresh CI
step or a new campaign worker would.  Timing happens inside the child
(imports excluded); results come back as ``float.hex`` strings so the
bit-identity assertion is textual and exact.

The machine-readable summary lands in
``benchmarks/results/BENCH_cache.json`` with the obs counter snapshots
of the cold and warm children, and ``compare_bench.py`` gates the
``warm_speedup`` ratio (machine-normalized: both runs happen on the
same machine seconds apart).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.obs import stamp_report

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_cache.json"

#: Units per campaign (two campaigns per run; kept small — the point
#: is the cold-path fraction, not the load).
UNITS = 3

#: The hard floor the tentpole promises for the warm re-run.
MIN_WARM_SPEEDUP = 3.0

#: Runs both campaigns inside one interpreter and reports timing,
#: medians (exact bits), per-process cache stats, and obs counters.
#: The transfer campaign uses the full-resolution nominal model — the
#: expensive artifact the cache is for — and the per-unit campaign
#: runs at a different seed so its units are distinct artifacts.
_CHILD = """\
import json, sys, time
from repro.cache import get_cache
from repro.experiments.montecarlo import (
    calibration_transfer_campaign,
    per_unit_calibration_campaign,
)
from repro.experiments.parallel import CampaignExecutor
from repro.obs import observed

units = int(sys.argv[1])
executor = CampaignExecutor(workers=1)
with observed() as registry:
    start = time.perf_counter()
    transfer = calibration_transfer_campaign(
        units=units, fast=False, executor=executor)
    per_unit = per_unit_calibration_campaign(
        units=units, seed=212, executor=executor)
    seconds = time.perf_counter() - start
    counters = registry.snapshot()["counters"]
medians = [value.hex() for value in (
    *transfer.force_medians, *transfer.location_medians,
    *per_unit.force_medians, *per_unit.location_medians)]
print(json.dumps({"seconds": seconds, "medians": medians,
                  "stats": get_cache().stats.as_dict(),
                  "counters": counters}))
"""

_report: dict = {"units": UNITS, "min_warm_speedup": MIN_WARM_SPEEDUP}


def _run_child(cache_dir: Path, enabled: bool = True) -> dict:
    env = dict(
        os.environ,
        PYTHONPATH=os.path.dirname(os.path.dirname(repro.__file__)),
        REPRO_CACHE_DIR=str(cache_dir),
        REPRO_CACHE="1" if enabled else "0",
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(UNITS)],
        capture_output=True, text=True, env=env, timeout=1200)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout)


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write the machine-readable summary after the module finishes."""
    yield
    stamp_report(_report, config={"units": UNITS,
                                  "min_warm_speedup": MIN_WARM_SPEEDUP})
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(_report, indent=2, sort_keys=True)
                          + "\n")


def test_warm_campaign_speedup_and_bit_identity(tmp_path_factory):
    """Warm >= 3x cold, zero warm misses, identical medians all ways."""
    cache_dir = tmp_path_factory.mktemp("bench-cache")
    wall = time.perf_counter()
    cold = _run_child(cache_dir)
    warm = _run_child(cache_dir)
    uncached = _run_child(cache_dir, enabled=False)
    wall = time.perf_counter() - wall

    # Bit-identity: the medians' float bits match across a cold write,
    # a warm disk read, and the kill-switch recompute.
    assert cold["medians"] == warm["medians"]
    assert cold["medians"] == uncached["medians"]

    # The cold run populated the store; the warm run never missed.
    assert cold["stats"]["misses"] > 0
    assert cold["stats"]["writes"] == cold["stats"]["misses"]
    assert warm["stats"]["misses"] == 0
    assert warm["stats"]["disk_hits"] > 0
    assert warm["stats"]["hits"] == warm["stats"]["requests"]
    # The kill switch really bypassed the cache.
    assert uncached["stats"]["requests"] == 0
    # And the obs registry saw the same story (a counter that never
    # incremented is absent from the snapshot).
    assert warm["counters"].get("cache.misses", 0) == 0
    assert warm["counters"]["cache.hits"] == warm["stats"]["hits"]

    speedup = cold["seconds"] / warm["seconds"]
    _report.update({
        "cold_seconds": cold["seconds"],
        "warm_seconds": warm["seconds"],
        "uncached_seconds": uncached["seconds"],
        "warm_speedup": speedup,
        "bench_wall_seconds": wall,
        "medians_hex": cold["medians"],
        "cold_stats": cold["stats"],
        "warm_stats": warm["stats"],
        "cold_counters": cold["counters"],
        "warm_counters": warm["counters"],
    })
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm campaign is only {speedup:.2f}x faster than cold; the "
        f"artifact cache should deliver >= {MIN_WARM_SPEEDUP:.0f}x"
    )


def test_perf_campaign_cold(benchmark, tmp_path_factory):
    """pytest-benchmark: campaign pair against an empty cache."""
    benchmark.pedantic(
        lambda: _run_child(tmp_path_factory.mktemp("bench-cold")),
        rounds=1, iterations=1)


def test_perf_campaign_warm(benchmark, tmp_path_factory):
    """pytest-benchmark: the same pair against a populated cache."""
    cache_dir = tmp_path_factory.mktemp("bench-warm")
    _run_child(cache_dir)
    benchmark.pedantic(lambda: _run_child(cache_dir),
                       rounds=1, iterations=1)
