"""Fig. 9 — the algorithm's Doppler-domain view, reproduced as data.

The paper's Fig. 9 illustrates the sensing pipeline: periodic channel
estimates stacked into phase groups, the snapshot-axis FFT putting
static multipath at DC and the tag's switching at its "artificial
Doppler" tones.  This bench renders that exact view from a simulated
capture: the spectrum floor, the DC clutter line, and the fs / 2fs /
4fs tag lines with their relative levels.
"""

import numpy as np

from repro.channel.multipath import indoor_channel
from repro.channel.propagation import BackscatterLink
from repro.core.harmonics import HarmonicExtractor, integer_period_group_length
from repro.experiments.scenarios import default_transducer
from repro.reader.sounder import FrameLevelSounder
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.tag import TagState, WiForceTag


def test_fig09_doppler_view(benchmark, report):
    def run():
        carrier = 900e6
        config = OFDMSounderConfig(carrier_frequency=carrier)
        tag = WiForceTag(default_transducer())
        rng = np.random.default_rng(49)
        sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                    indoor_channel(carrier, rng=rng),
                                    rng=rng)
        group = integer_period_group_length(config.frame_period, 1e3)
        extractor = HarmonicExtractor(tones=(1e3, 4e3),
                                      group_length=group)
        stream = sounder.capture(TagState(3.0, 0.040), group)
        frequencies, magnitude = extractor.doppler_spectrum(stream)
        return frequencies, magnitude

    frequencies, magnitude = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    floor = float(np.median(magnitude))
    db = 20.0 * np.log10(np.maximum(magnitude, 1e-300) / floor)

    def level(f):
        return float(db[int(np.argmin(np.abs(frequencies - f)))])

    probes = [0.0, 1e3, 2e3, 3e3, 4e3, 5e3, 6e3, 7e3]
    lines = ["Doppler bin [Hz] -> level above spectrum floor [dB]:"]
    for f in probes:
        tag_line = {0.0: "  <- static multipath (DC)",
                    1e3: "  <- port-1 readout tone (fs)",
                    2e3: "  <- collision tone (2fs)",
                    4e3: "  <- port-2 readout tone (4fs)"}.get(f, "")
        lines.append(f"  {f:6.0f}   {level(f):8.1f}{tag_line}")
    lines.append("")
    lines.append("paper shape (Fig. 9): clutter pinned at DC, the tag's "
                 "artificial-Doppler lines standing clear of the floor, "
                 "quiet bins in between")
    report("fig09_doppler_view", "\n".join(lines))

    assert level(0.0) > 60.0           # clutter towers over the floor
    assert level(1e3) > 25.0           # fs line clear of the floor
    assert level(4e3) > 20.0           # 4fs line clear of the floor
    assert level(2e3) > 15.0           # the predicted 2fs collision
    # Quiet bins stay near the floor.
    assert abs(level(3.3e3)) < 12.0 or level(3.3e3) < 12.0