"""Design-space sensitivity: how accuracy moves with deployment knobs.

Not a paper figure — the adopter's question: what do I lose by
transmitting less, integrating less, deploying farther, or calibrating
at fewer points?  (The paper fixes these at 10 dBm / 5 locations /
sub-metre ranges.)
"""

from repro.experiments import sweeps


def _format(result, unit_force="N", unit_loc="mm", scale_loc=1e3):
    lines = [f"{result.knob}:"]
    for value, force, location in result.points:
        lines.append(f"  {value:10.1f} -> force {force:6.3f} {unit_force}, "
                     f"location {location * scale_loc:6.3f} {unit_loc}")
    return lines


def test_sensitivity_sweeps(benchmark, report):
    def run():
        return (
            sweeps.sweep_tx_power(fast=False,
                                  powers_dbm=(-20.0, -5.0, 10.0)),
            sweeps.sweep_integration(fast=False, groups=(1, 2, 4)),
            sweeps.sweep_range(fast=False, separations=(1.0, 2.0, 4.0)),
            sweeps.sweep_calibration_density(fast=False,
                                             location_counts=(3, 5, 9)),
        )

    tx, integration, deployment, density = benchmark.pedantic(
        run, rounds=1, iterations=1)

    lines = []
    for result in (tx, integration, deployment, density):
        lines += _format(result)
    lines.append("")
    lines.append("reading: the paper's operating point (10 dBm, 2 groups, "
                 "sub-metre, 5 locations) sits on the flat part of every "
                 "curve")
    report("sensitivity_sweeps", "\n".join(lines))

    tx_medians = tx.location_medians()
    assert tx_medians[10.0] <= tx_medians[-20.0] * 1.5
    density_medians = density.location_medians()
    assert density_medians[9.0] <= density_medians[3.0] * 1.5
    for _, force, location in deployment.points:
        assert force < 1.0
        assert location < 2e-3
