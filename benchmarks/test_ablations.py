"""Design-choice ablations called out in DESIGN.md.

* Subcarrier averaging (section 3.3): wideband averaging is where the
  0.5-degree phase accuracy comes from.
* Reflective vs absorptive switches (section 4.3): the differential
  measurement needs the untouched line to reflect off the far switch.
* Phase-group length: accuracy vs responsiveness.
"""


from repro.core.harmonics import HarmonicExtractor
from repro.core.phase import phase_stability_deg
from repro.experiments import runners
from repro.experiments.scenarios import build_wireless_scenario
from repro.sensor.tag import TagState


def test_ablation_subcarrier_averaging(benchmark, report):
    result = benchmark.pedantic(
        lambda: runners.run_averaging_ablation(fast=False, captures=32),
        rounds=1, iterations=1)

    lines = [
        f"single-subcarrier phase std : "
        f"{result.single_subcarrier_std_deg:.3f} deg",
        f"64-subcarrier averaged std  : {result.averaged_std_deg:.3f} deg",
        f"improvement                 : {result.improvement:.1f}x",
        "paper shape: averaging the differential phase across the "
        "wideband estimate is what delivers ~0.5 deg accuracy",
    ]
    report("ablation_averaging", "\n".join(lines))

    assert result.improvement > 2.0


def test_ablation_reflective_switch(benchmark, report):
    result = benchmark.pedantic(
        lambda: runners.run_switch_ablation(fast=False),
        rounds=1, iterations=1)

    lines = [
        f"untouched reference tone, reflective switch : "
        f"{result.reflective_baseline_tone:.4f}",
        f"untouched reference tone, absorptive switch : "
        f"{result.absorptive_baseline_tone:.4f}",
        f"reference loss with absorptive off state    : "
        f"{result.reference_loss_db:.1f} dB",
        "paper shape: absorptive switches swallow the untouched "
        "baseline the differential phase needs (section 4.3)",
    ]
    report("ablation_switch", "\n".join(lines))

    assert result.reference_loss_db > 10.0


def test_ablation_group_length(benchmark, report):
    """Group length trade-off: longer groups average receiver noise
    down but accumulate more tag-oscillator phase wander (and stretch
    the stationary-force assumption).  At the paper's SNR the wander
    dominates, which is why the short integer-period group (N = 625,
    36 ms) is the right operating point."""

    def sweep():
        reader = build_wireless_scenario(900e6, seed=23, fast=False)
        sounder = reader.sounder
        tone = reader.sounder.tag.clocking.readout_port1
        results = {}
        for multiple in (1, 2, 4):
            length = 625 * multiple
            extractor = HarmonicExtractor(tones=(tone,),
                                          group_length=length)
            stream = sounder.capture(TagState(), 8 * length)
            matrix = extractor.extract(stream)[tone]
            results[length] = phase_stability_deg(matrix)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["group length [snapshots] -> phase stability [deg]:"]
    for length, stability in sorted(results.items()):
        duration = length * 57.6e-6 * 1e3
        lines.append(f"  N={length:5d} ({duration:6.1f} ms) : "
                     f"{stability:.3f}")
    lines.append("note: oscillator wander grows with group span, so "
                 "short integer-period groups win; the paper also needs "
                 "the force static within a group (settling ~0.5-1 s)")
    report("ablation_group_length", "\n".join(lines))

    assert all(stability < 5.0 for stability in results.values())
