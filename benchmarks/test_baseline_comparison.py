"""Sections 5.1 and 8 — WiForce vs the implemented baselines.

Paper claims: (a) location accuracy ~5x better than RFID-touch systems
whose errors sit at centimetre (tag-pitch) granularity; (b) RSS
resonance-notch strain sensing breaks under static indoor multipath,
while WiForce's differential phase is immune to it.
"""

from repro.experiments import runners


def test_baseline_comparison(benchmark, report):
    result = benchmark.pedantic(
        lambda: runners.run_baseline_comparison(fast=False),
        rounds=1, iterations=1)

    lines = [
        "contact localization (median |error|):",
        f"  WiForce            : "
        f"{result.wiforce_location_median_m * 1e3:8.3f} mm",
        f"  RFID touch array   : "
        f"{result.rfid_location_median_m * 1e3:8.3f} mm",
        f"  advantage          : {result.location_advantage:.1f}x "
        "(paper: ~5x or more)",
        "",
        "RSS notch strain sensing (median strain error):",
        f"  anechoic channel   : {result.strain_error_clean:.4f}",
        f"  indoor multipath   : {result.strain_error_multipath:.4f}",
        f"  degradation        : {result.multipath_degradation:.1f}x",
        "paper shape: WiForce localizes far below tag pitch; RSS strain "
        "sensing collapses outside the anechoic chamber (section 8)",
    ]
    from repro.baselines.vision_haptics import latency_comparison
    latency = latency_comparison()
    lines += [
        "",
        "feedback latency vs vision-based haptics (section 6):",
        f"  vision pipeline    : {latency['vision_latency_s'] * 1e3:6.1f} ms"
        f" (meets 50 ms slip deadline: "
        f"{latency['vision_meets_slip_deadline']})",
        f"  WiForce            : "
        f"{latency['wiforce_latency_s'] * 1e3:6.1f} ms (meets deadline: "
        f"{latency['wiforce_meets_slip_deadline']})",
    ]
    report("baseline_comparison", "\n".join(lines))

    assert result.location_advantage > 5.0
    assert result.multipath_degradation > 3.0
