"""Fleet-scale serving benchmark: consistent-hash shards vs one shard.

The contract tracked here is exact, not statistical: routing by
consistent hashing on the sensor id decides *where* a session lives,
never *what* it computes, so the N-shard fleet must return
bit-identical responses to the single-shard reference for the same
request tape (0.0 parity deltas in ``BENCH_fleet.json``).

The CI smoke run drives a small Pareto-burst fleet through the
threaded per-shard harness; the nightly workflow scales the same
harness to 10^5 sensors via ``repro fleet-bench``.  Both write the
machine-readable report that ``compare_bench.py`` gates (sharded
throughput ratio, ring balance, parity).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.serve.fleet import FleetProfile, run_fleet_benchmark
from repro.serve.loadgen import LoadProfile
from repro.serve.shard import HashRing

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_fleet.json"

#: CI smoke scale — enough sensors for a meaningful ring balance,
#: small enough for the benchmark-disable smoke lane.
FLEET_SENSORS = 256
REQUESTS_PER_SENSOR = 4
FLEET_SHARDS = 4

#: Heavy-tailed open-loop arrivals — the swarm pattern the fleet
#: harness exists for (bursts pile onto single shards).
FLEET_PROFILE = FleetProfile(
    load=LoadProfile(sensors=FLEET_SENSORS,
                     requests_per_sensor=REQUESTS_PER_SENSOR,
                     arrival="pareto", arrival_rate_rps=8000.0),
    shards=FLEET_SHARDS)

_report: dict = {}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write the machine-readable summary after the module finishes."""
    yield
    if _report:
        RESULTS_DIR.mkdir(exist_ok=True)
        BENCH_PATH.write_text(
            json.dumps(_report, indent=2, sort_keys=True) + "\n")


def test_fleet_sharded_matches_single_shard():
    """N shards == 1 shard bit-for-bit, reported with per-shard p99."""
    report = run_fleet_benchmark(FLEET_PROFILE)
    parity = report["parity"]
    assert parity["max_force_delta_n"] == 0.0
    assert parity["max_location_delta_m"] == 0.0
    assert parity["touched_match"] is True

    per_shard = report["fleet"]["per_shard"]
    assert len(per_shard) == FLEET_SHARDS
    assert sum(entry["requests"] for entry in per_shard) == \
        FLEET_PROFILE.load.total_requests
    # Every shard must own a share of the fleet — an empty shard means
    # the ring construction regressed.
    assert all(entry["requests"] > 0 for entry in per_shard)
    assert report["shard_balance"] > 0.3

    _report.update(report)


def test_ring_balance_at_fleet_scale():
    """The ring spreads 10^5 sensor ids evenly (machine-independent).

    Pure ring arithmetic — no serving — so the full nightly fleet size
    is cheap enough to check on every CI run.
    """
    ring = HashRing(8, vnodes=256)
    sensor_ids = [f"sensor-{index:06d}" for index in range(100_000)]
    balance = ring.balance(sensor_ids)
    _report["ring_balance_100k"] = {
        "shards": 8, "vnodes": 256, "sensors": len(sensor_ids),
        "balance": balance,
    }
    assert balance > 0.6, (
        f"hash ring balance at 10^5 sensors is {balance:.2f}; "
        f"min/max shard load must stay above 0.6")


def test_perf_fleet_harness(benchmark):
    """pytest-benchmark: the threaded fleet harness, closed loop."""
    profile = FleetProfile(
        load=LoadProfile(sensors=64, requests_per_sensor=4),
        shards=FLEET_SHARDS)
    benchmark.pedantic(run_fleet_benchmark, args=(profile,),
                       rounds=1, iterations=1)
