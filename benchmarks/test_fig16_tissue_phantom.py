"""Fig. 16 — sensing through the muscle/fat/skin tissue phantom.

Paper claims: (a) without isolating the direct path the USRP's ~60 dB
dynamic range cannot hold both the direct signal and the ~110 dB-loss
backscatter, so the reading fails; (b) with the metal-plate isolation
the sensing works through the phantom with only slightly elevated
error (0.56 N -> 0.62 N at 900 MHz).
"""

from repro.experiments import runners
from repro.experiments.metrics import percentile_absolute_error


def test_fig16_tissue_phantom(benchmark, report):
    result = benchmark.pedantic(
        lambda: runners.run_tissue(fast=False, force_points=8, repeats=3),
        rounds=1, iterations=1)

    lines = [
        f"tissue one-way loss (incl. setup losses): "
        f"{result.tissue_one_way_loss_db:.1f} dB",
        f"decodable without metal plate?          : "
        f"{'NO (dynamic range saturated)' if result.saturated_without_plate else 'yes'}",
        f"median force error with plate           : "
        f"{result.median_force_error:.3f} N (paper: 0.62 N)",
        f"P90 force error with plate              : "
        f"{percentile_absolute_error(result.force_errors, 90):.3f} N",
        "paper shape: undecodable without direct-path isolation; works "
        "with elevated error through tissue (Fig. 16 / section 5.2)",
    ]
    report("fig16_tissue_phantom", "\n".join(lines))

    assert result.saturated_without_plate
    assert result.median_force_error < 1.0
