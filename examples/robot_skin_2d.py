#!/usr/bin/env python3
"""Robot skin: a 2-D force-sensing surface from parallel strips.

The paper's future-work extension (section 7): tile several WiForce
strips side by side, each clocked at a different base frequency so they
occupy distinct Doppler bins, and interpolate presses that land between
strips.  This demo builds a 3-strip skin patch, presses it at several
plane coordinates, and prints the recovered (force, x, y).

Run:  python examples/robot_skin_2d.py
"""

from __future__ import annotations

import numpy as np

from repro import CALIBRATION_LOCATIONS
from repro.channel import BackscatterLink, indoor_channel
from repro.core import WiForceReader, calibrate_harmonic_observable
from repro.core.twodim import ArraySensorPlacement, TwoDimensionalArray
from repro.reader import FrameLevelSounder, OFDMSounderConfig
from repro.sensor import ForceTransducer, WiForceTag, default_sensor_design
from repro.sensor.clock import wiforce_clocking

STRIP_SPACING = 8e-3  # one beam-width apart
BASE_CLOCKS = (1.0e3, 0.8e3, 1.2e3)  # distinct Doppler signatures


def build_strip(transducer, model, base_clock, seed):
    rng = np.random.default_rng(seed)
    tag = WiForceTag(transducer, clocking=wiforce_clocking(base_clock),
                     clock_offset_ppm=15.0)
    sounder = FrameLevelSounder(
        OFDMSounderConfig(carrier_frequency=900e6), tag,
        BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0),
        indoor_channel(900e6, rng=rng), rng=rng)
    return WiForceReader(sounder, model, groups_per_capture=2)


def main() -> None:
    print("Building a 3-strip WiForce skin patch (strips at y = 0, "
          f"{STRIP_SPACING * 1e3:.0f}, {2 * STRIP_SPACING * 1e3:.0f} mm)...")
    transducer = ForceTransducer(default_sensor_design())
    tag_for_cal = WiForceTag(transducer)
    model = calibrate_harmonic_observable(
        tag_for_cal, 900e6, CALIBRATION_LOCATIONS,
        np.linspace(0.5, 8.0, 16))

    strips = [
        ArraySensorPlacement(
            build_strip(transducer, model, clock, seed=100 + index),
            offset_y=index * STRIP_SPACING)
        for index, clock in enumerate(BASE_CLOCKS)
    ]
    skin = TwoDimensionalArray(strips, coupling_width=STRIP_SPACING)
    skin.capture_baselines()

    presses = [
        (3.0, 0.030, 0.0),                    # on strip 0
        (5.0, 0.050, STRIP_SPACING),          # on strip 1
        (4.0, 0.040, 0.5 * STRIP_SPACING),    # the no-man's-land case
        (6.0, 0.058, 1.5 * STRIP_SPACING),    # between strips 1 and 2
    ]
    print("\n  true (F, x, y)          ->  estimated (F, x, y)")
    for force, x, y in presses:
        estimate = skin.press(force, x, y)
        print(f"  ({force:4.1f} N, {x * 1e3:5.1f} mm, {y * 1e3:5.1f} mm)"
              f"  ->  ({estimate.force:4.1f} N, {estimate.x * 1e3:5.1f} mm,"
              f" {estimate.y * 1e3:5.1f} mm)")

    print("\nEach strip shows up in its own Doppler bins "
          f"(base clocks {[f'{c:.0f}' for c in BASE_CLOCKS]} Hz), so one "
          "reader serves the whole patch — the paper's section 7 "
          "extension.")


if __name__ == "__main__":
    main()
