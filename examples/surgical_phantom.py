#!/usr/bin/env python3
"""Surgical scenario: force sensing through a tissue phantom.

Reproduces the paper's section 5.2 story end to end:

1. A WiForce strip (e.g. on a laparoscopic tool) sits behind a
   muscle/fat/skin phantom; the backscatter pays the through-tissue
   loss twice.
2. With the direct TX-RX path unobstructed, the USRP's ~60 dB dynamic
   range cannot hold both signals — the read fails with a
   DynamicRangeError.
3. Isolating the direct path (the paper's metal plate) restores
   decodability, and contact forces on the tool are read through the
   body with only slightly elevated error.

Run:  python examples/surgical_phantom.py
"""

from __future__ import annotations

import numpy as np

from repro import CALIBRATION_LOCATIONS, TagState
from repro.channel import BackscatterLink, body_phantom, indoor_channel
from repro.core import WiForceReader, calibrate_harmonic_observable
from repro.errors import DynamicRangeError
from repro.reader import FrameLevelSounder, OFDMSounderConfig
from repro.sensor import ForceTransducer, WiForceTag, default_sensor_design

#: Extra per-pass setup loss beyond the planar slab model (refraction,
#: misalignment, connectorization) — see DESIGN.md substitutions.
EXTRA_SETUP_LOSS_DB = 14.0


def main() -> None:
    carrier = 900e6  # tissue attenuates 2.4 GHz far more (section 5.2)
    phantom = body_phantom()
    print("Tissue phantom (paper Fig. 15):")
    for layer in phantom.layers:
        print(f"  {layer.name:7s} {layer.thickness * 1e3:4.0f} mm")
    slab_loss = phantom.one_way_loss_db(carrier)
    one_way = slab_loss + EXTRA_SETUP_LOSS_DB
    print(f"  one-way loss @900 MHz : {slab_loss:.1f} dB (slab) + "
          f"{EXTRA_SETUP_LOSS_DB:.1f} dB setup = {one_way:.1f} dB")
    print(f"  one-way loss @2.4 GHz : {phantom.one_way_loss_db(2.4e9):.1f} "
          "dB (slab) — why the paper drops to 900 MHz\n")

    rng = np.random.default_rng(7)
    design = default_sensor_design()
    transducer = ForceTransducer(design)
    tag = WiForceTag(transducer, clock_offset_ppm=20.0)
    model = calibrate_harmonic_observable(
        tag, carrier, CALIBRATION_LOCATIONS, np.linspace(0.5, 8.0, 16))
    config = OFDMSounderConfig(carrier_frequency=carrier)

    print("Attempt 1: no direct-path isolation")
    open_link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0,
                                tag_blockage_db=one_way)
    open_sounder = FrameLevelSounder(config, tag, open_link,
                                     indoor_channel(carrier, rng=rng),
                                     rng=rng)
    print(f"  backscatter SNR: "
          f"{open_sounder.backscatter_snr_db(TagState(4.0, 0.06)):.1f} dB")
    try:
        open_sounder.assert_decodable(TagState(4.0, 0.06), min_snr_db=10.0)
        print("  unexpectedly decodable!")
    except DynamicRangeError as error:
        print(f"  FAILED as the paper reports: {error}\n")

    print("Attempt 2: metal plate between TX and RX (-45 dB direct path)")
    plate_link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0,
                                 tag_blockage_db=one_way,
                                 direct_blockage_db=45.0)
    plate_sounder = FrameLevelSounder(config, tag, plate_link,
                                      indoor_channel(carrier, rng=rng),
                                      rng=rng)
    print(f"  backscatter SNR: "
          f"{plate_sounder.backscatter_snr_db(TagState(4.0, 0.06)):.1f} dB")
    reader = WiForceReader(plate_sounder, model, groups_per_capture=6)
    reader.capture_baseline()

    print("\n  Pressing the tool at 60 mm through the phantom:")
    print("    true F [N] | est F [N]  est x [mm]")
    errors = []
    for force in (1.0, 2.5, 4.0, 6.0, 8.0):
        reading = reader.read(TagState(force, 0.060), rebaseline=True)
        errors.append(abs(reading.force - force))
        print(f"    {force:9.2f} | {reading.force:9.2f}  "
              f"{reading.location * 1e3:9.1f}")
    print(f"\n  median |force error| through tissue: "
          f"{np.median(errors):.2f} N (paper: 0.62 N)")


if __name__ == "__main__":
    main()
