#!/usr/bin/env python3
"""Waveform agnosticism: the same press read with OFDM, FMCW and UWB.

Paper section 3.3 claims the sensing algorithm only needs *periodic
wideband channel estimates* — it runs unchanged on OFDM (Wi-Fi-like)
sounding, stepped-FMCW (radar-like) sweeps, and impulse-radio UWB.
This demo reads one press all three ways and compares the recovered
differential phases against the noiseless tag observable.

Run:  python examples/waveform_agnostic.py
"""

from __future__ import annotations

import numpy as np

from repro import TagState
from repro.channel import BackscatterLink, indoor_channel
from repro.core import HarmonicExtractor
from repro.core.calibration import harmonic_differential_phases
from repro.core.harmonics import integer_period_group_length
from repro.core.phase import differential_phase
from repro.reader import (
    FMCWSounder,
    FMCWSounderConfig,
    FrameLevelSounder,
    OFDMSounderConfig,
)
from repro.sensor import ForceTransducer, WiForceTag, default_sensor_design

PRESS = TagState(force=4.0, location=0.040)
CARRIER = 900e6


def read_phases(capture, extractor, tones):
    """Differential phases between an untouched and a pressed capture."""
    base_stream = capture(TagState())
    touch_stream = capture(PRESS)
    base = extractor.extract(base_stream)
    touch = extractor.extract(touch_stream)
    return tuple(
        differential_phase(base[tone].values.mean(axis=0),
                           touch[tone].values.mean(axis=0))
        for tone in tones)


def main() -> None:
    rng = np.random.default_rng(3)
    transducer = ForceTransducer(default_sensor_design())
    tag = WiForceTag(transducer)
    link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0)
    clutter = indoor_channel(CARRIER, rng=rng)
    tones = (tag.clocking.readout_port1, tag.clocking.readout_port2)

    truth = harmonic_differential_phases(tag, CARRIER, PRESS.force,
                                         PRESS.location)
    print(f"Press: {PRESS.force} N at {PRESS.location * 1e3:.0f} mm")
    print(f"Noiseless tag observable: ({np.degrees(truth[0]):.2f}, "
          f"{np.degrees(truth[1]):.2f}) deg\n")

    # --- OFDM (64 subcarriers, 12.5 MHz, estimate every 57.6 us) -----
    ofdm_config = OFDMSounderConfig(carrier_frequency=CARRIER)
    ofdm = FrameLevelSounder(ofdm_config, tag, link, clutter, rng=rng)
    group = integer_period_group_length(ofdm_config.frame_period, 1e3)
    extractor = HarmonicExtractor(tones=tones, group_length=group)
    clock = {"t": 0.0}

    def ofdm_capture(state):
        stream = ofdm.capture(state, 2 * group, start_time=clock["t"])
        clock["t"] += stream.frames * ofdm_config.frame_period
        return stream

    ofdm_phases = read_phases(ofdm_capture, extractor, tones)
    print(f"OFDM reader   : ({np.degrees(ofdm_phases[0]):.2f}, "
          f"{np.degrees(ofdm_phases[1]):.2f}) deg")

    # --- stepped FMCW (64 steps over 12.5 MHz per 57.6 us sweep) -----
    fmcw_config = FMCWSounderConfig(carrier_frequency=CARRIER)
    fmcw = FMCWSounder(fmcw_config, tag, link, clutter, rng=rng)
    fmcw_group = integer_period_group_length(fmcw_config.sweep_period, 1e3)
    fmcw_extractor = HarmonicExtractor(tones=tones,
                                       group_length=fmcw_group)
    fmcw_clock = {"t": 0.0}

    def fmcw_capture(state):
        stream = fmcw.capture(state, 2 * fmcw_group,
                              start_time=fmcw_clock["t"])
        fmcw_clock["t"] += stream.frames * fmcw_config.sweep_period
        return stream

    fmcw_phases = read_phases(fmcw_capture, fmcw_extractor, tones)
    print(f"FMCW reader   : ({np.degrees(fmcw_phases[0]):.2f}, "
          f"{np.degrees(fmcw_phases[1]):.2f}) deg")

    # --- impulse UWB (256 bins over 500 MHz at its own band) --------
    from repro.reader import UWBSounder, UWBSounderConfig

    uwb_config = UWBSounderConfig()
    uwb = UWBSounder(uwb_config, tag, link, rng=rng)
    uwb_truth = harmonic_differential_phases(
        tag, uwb_config.carrier_frequency, PRESS.force, PRESS.location)
    uwb_group = integer_period_group_length(uwb_config.estimate_period,
                                            1e3)
    uwb_extractor = HarmonicExtractor(tones=tones,
                                      group_length=uwb_group)
    uwb_clock = {"t": 0.0}

    def uwb_capture(state):
        stream = uwb.capture(state, 2 * uwb_group,
                             start_time=uwb_clock["t"])
        uwb_clock["t"] += stream.frames * uwb_config.estimate_period
        return stream

    uwb_phases = read_phases(uwb_capture, uwb_extractor, tones)
    print(f"UWB reader    : ({np.degrees(uwb_phases[0]):.2f}, "
          f"{np.degrees(uwb_phases[1]):.2f}) deg  "
          f"(its own band: expected {np.degrees(uwb_truth[0]):.2f}, "
          f"{np.degrees(uwb_truth[1]):.2f})")

    worst = max(abs(np.degrees(p - t))
                for p, t in zip(ofdm_phases + fmcw_phases + uwb_phases,
                                truth + truth + uwb_truth))
    print(f"\nWorst deviation from the tag observable: {worst:.2f} deg — "
          "the same phase-group algorithm serves all three waveforms "
          "(section 3.3).")


if __name__ == "__main__":
    main()
