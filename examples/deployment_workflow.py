#!/usr/bin/env python3
"""Deployment workflow: discover, validate, calibrate, track.

A production-shaped walkthrough of commissioning a WiForce install:

1. **Discover** — the reader scans its Doppler spectrum for switching
   combs and finds the tag (it never had to be told the clock plan).
2. **Validate** — per-tone link SNR is checked before trusting anything.
3. **Calibrate** — the indenter/load-cell rig runs the paper's 5-point
   protocol and fits the cubic model from *measured* (noisy) data.
4. **Track** — the streaming tracker follows a live interaction and
   segments it into touch events.

Run:  python examples/deployment_workflow.py
"""

from __future__ import annotations

import numpy as np

from repro.channel import BackscatterLink, indoor_channel
from repro.core import StreamingTracker
from repro.core.calibration import calibrate_with_rig
from repro.core.diagnostics import discover_tags, link_report
from repro.core.harmonics import HarmonicExtractor, integer_period_group_length
from repro.mechanics.indenter import GroundTruthRig
from repro.reader import FrameLevelSounder, OFDMSounderConfig
from repro.reader.sounder import concatenate_streams
from repro.sensor import ForceTransducer, TagState, WiForceTag
from repro.sensor.geometry import default_sensor_design


def main() -> None:
    rng = np.random.default_rng(55)
    carrier = 900e6
    config = OFDMSounderConfig(carrier_frequency=carrier)
    transducer = ForceTransducer(default_sensor_design())
    tag = WiForceTag(transducer, clock_offset_ppm=20.0)
    sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                indoor_channel(carrier, rng=rng), rng=rng)

    # -- 1. discover ------------------------------------------------
    print("1) Scanning for switching combs (tag clocks unknown)...")
    group = integer_period_group_length(config.frame_period, 1e3)
    scan = sounder.capture(TagState(), group)
    tags = discover_tags(scan, group)
    if not tags:
        raise SystemExit("no tag found — aborting commissioning")
    found = tags[0]
    print(f"   found a tag: fs = {found.base_frequency:.0f} Hz, readout "
          f"tones {found.readout_tones[0]:.0f} / "
          f"{found.readout_tones[1]:.0f} Hz "
          f"(confidence {found.confidence_db:.1f} dB)")

    # -- 2. validate --------------------------------------------------
    print("2) Checking per-tone link quality...")
    health = sounder.capture(TagState(), 6 * group,
                             start_time=scan.duration)
    reportcard = link_report(health, found.readout_tones, group)
    for tone, snr in reportcard.tone_snrs_db:
        print(f"   {tone:6.0f} Hz : {snr:5.1f} dB")
    print(f"   deployment {'USABLE' if reportcard.usable else 'NOT usable'}")

    # -- 3. calibrate -------------------------------------------------
    print("3) Running the indenter calibration protocol (5 locations, "
          "measured forces)...")
    rig = GroundTruthRig(rng=rng)
    model = calibrate_with_rig(
        transducer, carrier,
        locations=(0.020, 0.030, 0.040, 0.050, 0.060),
        forces=np.linspace(0.75, 8.0, 12), rig=rig, tag=tag, rng=rng)
    print(f"   cubic model fitted (force range "
          f"{model.force_range[0]:.2f}-{model.force_range[1]:.2f} N)")

    # -- 4. track a live interaction ---------------------------------
    print("4) Tracking a live interaction (press, harder, release, "
          "press elsewhere)...")
    extractor = HarmonicExtractor(tones=found.readout_tones,
                                  group_length=group)
    segments = [
        (TagState(), 4),
        (TagState(2.5, 0.030), 3),
        (TagState(5.0, 0.030), 3),
        (TagState(), 2),
        (TagState(3.5, 0.055), 3),
        (TagState(), 2),
    ]
    streams = []
    clock = health.times[-1] + config.frame_period
    for state, groups in segments:
        stream = sounder.capture(state, groups * group, start_time=clock)
        clock += stream.frames * config.frame_period
        streams.append(stream)
    tracker = StreamingTracker(model, extractor, baseline_groups=4)
    samples = tracker.process(concatenate_streams(*streams))
    events = tracker.touch_events(samples)
    print("   tracked samples (time, force, location):")
    for sample in samples:
        marker = "*" if sample.touched else " "
        print(f"   {marker} t={sample.time * 1e3:7.1f} ms  "
              f"F={sample.force:5.2f} N  x={sample.location * 1e3:5.1f} mm")
    print(f"\n   {len(events)} touch events:")
    for index, event in enumerate(events):
        print(f"   event {index}: peak {event.peak_force:.2f} N at "
              f"{event.mean_location * 1e3:.1f} mm "
              f"({(event.release - event.onset) * 1e3:.0f} ms)")


if __name__ == "__main__":
    main()
