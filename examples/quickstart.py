#!/usr/bin/env python3
"""Quickstart: deploy a WiForce sensor and read a press wirelessly.

Builds the paper's default deployment (80 mm sensor, reader antennas
1 m apart with the sensor midway, 900 MHz OFDM sounding), calibrates
the cubic sensor model, and reads a few presses — printing estimated
vs true force magnitude and contact location.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import TagState, build_default_system


def main() -> None:
    print("Building the default WiForce deployment (900 MHz)...")
    system = build_default_system(carrier_frequency=900e6, seed=42)

    reader = system.reader
    print(f"  sensor: {system.design.length * 1e3:.0f} mm microstrip, "
          f"Z0 = {system.design.line.characteristic_impedance:.1f} ohm")
    print(f"  clocks: {reader.sounder.tag.clocking.clock_port1.frequency:.0f}"
          f" / {reader.sounder.tag.clocking.clock_port2.frequency:.0f} Hz, "
          f"readout tones {reader.extractor.tones[0]:.0f} / "
          f"{reader.extractor.tones[1]:.0f} Hz")
    print(f"  channel estimate every "
          f"{reader.sounder.config.frame_period * 1e6:.1f} us, phase groups "
          f"of {reader.extractor.group_length} snapshots")

    print("\nCapturing the untouched baseline (fits tag clock drift)...")
    reader.capture_baseline()
    drift = reader.drift_rates
    print("  fitted drift: " + ", ".join(
        f"{tone:.0f} Hz -> {np.degrees(rate):.2f} deg/s"
        for tone, rate in sorted(drift.items())))

    from repro.core import reading_uncertainty

    presses = [(2.0, 0.030), (4.5, 0.045), (7.0, 0.060), (0.0, 0.0)]
    phase_noise = np.radians(0.5)  # the paper's phase accuracy class
    print("\nReading presses over the air:")
    print("   true F [N]  true x [mm] |  estimated")
    for force, location in presses:
        reading = reader.read(TagState(force, location), rebaseline=True)
        if reading.estimate.touched:
            bars = reading_uncertainty(system.model, reading.estimate,
                                       phase_noise)
            print(f"   {force:9.2f}  {location * 1e3:10.1f} | "
                  f"{reading.force:5.2f} ± {bars.force_std:.2f} N at "
                  f"{reading.location * 1e3:5.1f} ± "
                  f"{bars.location_std * 1e3:.2f} mm")
        else:
            print(f"   {force:9.2f}  {'-':>10} | no touch")

    print("\nDone. See examples/surgical_phantom.py and "
          "examples/fingertip_ui.py for the paper's application demos.")


if __name__ == "__main__":
    main()
