#!/usr/bin/env python3
"""Traced gateway smoke: one request, one coherent trace tree.

Boots the asyncio gateway on an ephemeral loopback port, sends a
single ``POST /v1/estimate`` carrying a W3C ``traceparent`` header,
and asserts the full stitching contract end to end:

* the response echoes the caller's trace ID in ``x-repro-trace-id``;
* every span of the request — ``gateway.request`` →
  ``serve.estimate`` → ``serve.session`` / ``serve.flush`` →
  ``estimator.invert_batch`` — shares that one trace ID with correct
  parent links;
* the batch ``serve.flush`` span links back to its member request.

The collected span events are written as JSONL (default
``trace-events.jsonl``, override with ``--output``) so
``python -m repro trace show <trace-id> --input <file>`` can render
the waterfall afterwards; the trace ID is printed on stdout.  CI runs
this as the stitched-trace gate.

Run:  python examples/traced_gateway_smoke.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.experiments.scenarios import calibrated_model
from repro.gateway import Gateway, GatewayLimits, Tenant, TenantTable
from repro.gateway import http as gw_http
from repro.obs import MemorySink, observed
from repro.serve import (
    BatchPolicy,
    EstimateRequest,
    InferenceService,
    SensorConfig,
)

TRACE_ID = "feed" * 8
PARENT_SPAN = "abcd" * 4
TRACEPARENT = f"00-{TRACE_ID}-{PARENT_SPAN}-01"

EXPECTED_SPANS = ("gateway.request", "serve.estimate", "serve.session",
                  "serve.flush", "estimator.invert_batch")


async def _one_traced_request(gateway):
    host, port = gateway.address
    reader, writer = await asyncio.open_connection(host, port)
    body = json.dumps(EstimateRequest(
        sensor_id="smoke", sequence=0, time=0.0, phi1=0.5, phi2=0.4,
        config=SensorConfig()).to_dict()).encode("utf-8")
    writer.write(gw_http.render_request(
        "POST", "/v1/estimate",
        headers={"authorization": "Bearer smoke-token",
                 "connection": "close",
                 "content-type": "application/json",
                 "traceparent": TRACEPARENT},
        body=body))
    await writer.drain()
    response = await gw_http.read_response(reader, GatewayLimits())
    writer.close()
    await writer.wait_closed()
    return response


def _spans_by_name(events):
    spans = {}
    for event in events:
        if "span" in event:
            spans.setdefault(event["span"], []).append(event)
    return spans


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="trace-events.jsonl",
                        help="span-event JSONL destination")
    args = parser.parse_args(argv)

    model = calibrated_model(900e6, fast=True)
    with observed(sink=MemorySink()) as registry:
        service = InferenceService(
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            model_factory=lambda config: model, registry=registry)
        tenants = TenantTable([Tenant(name="smoke",
                                      token="smoke-token")])

        async def scenario():
            async with Gateway(service, tenants=tenants) as gateway:
                return await _one_traced_request(gateway)

        response = asyncio.run(scenario())
        events = list(registry.sink.events)

    assert response.status == 200, response.status
    echoed = response.headers.get("x-repro-trace-id")
    assert echoed == TRACE_ID, (echoed, TRACE_ID)

    spans = _spans_by_name(events)
    for name in EXPECTED_SPANS:
        assert name in spans, f"missing span {name!r}: {sorted(spans)}"
        for event in spans[name]:
            assert event["trace_id"] == TRACE_ID, (name, event)
    gateway_span = spans["gateway.request"][0]
    estimate = spans["serve.estimate"][0]
    flush = spans["serve.flush"][0]
    invert = spans["estimator.invert_batch"][0]
    assert gateway_span["parent_span_id"] == PARENT_SPAN
    assert estimate["parent_span_id"] == gateway_span["span_id"]
    assert flush["parent_span_id"] == estimate["span_id"]
    assert invert["parent_span_id"] == flush["span_id"]
    assert {"trace_id": TRACE_ID, "span_id": estimate["span_id"]} \
        in flush["links"]

    output = Path(args.output)
    output.write_text("".join(
        json.dumps(event, sort_keys=True, default=str) + "\n"
        for event in events if "span" in event), encoding="utf-8")
    sys.stderr.write(
        f"stitched trace OK: {len(events)} span events -> {output}\n")
    print(TRACE_ID)
    return 0


if __name__ == "__main__":
    sys.exit(main())
