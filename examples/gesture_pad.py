#!/usr/bin/env python3
"""Gesture pad: tap, hold, press-ramp and slide — over the air.

The paper's HCI pitch, taken to its conclusion: with continuous force
*and* location, a passive strip is a gesture pad.  This demo simulates
a user performing four gestures on the strip, tracks the interaction
with the streaming tracker, smooths it with the Kalman layer, and
classifies the touch events.

Run:  python examples/gesture_pad.py
"""

from __future__ import annotations

import numpy as np

from repro import CALIBRATION_LOCATIONS, TagState
from repro.channel import BackscatterLink, indoor_channel
from repro.core import StreamingTracker, TrackSmoother
from repro.core.calibration import calibrate_harmonic_observable
from repro.core.harmonics import HarmonicExtractor, integer_period_group_length
from repro.hci import GestureClassifier
from repro.reader import FrameLevelSounder, OFDMSounderConfig
from repro.reader.sounder import concatenate_streams
from repro.sensor import ForceTransducer, WiForceTag, default_sensor_design

#: The scripted interaction: (force [N], location [m], groups) tuples;
#: force 0 = finger lifted.  One group = 36 ms.
SCRIPT = [
    (0.0, 0.0, 4),        # settle / baseline
    (3.0, 0.030, 2),      # quick tap at 30 mm
    (0.0, 0.0, 2),
    (2.5, 0.050, 8),      # steady hold at 50 mm
    (0.0, 0.0, 2),
    *[(1.0 + 0.7 * i, 0.060, 1) for i in range(8)],  # press harder...
    (0.0, 0.0, 2),
    *[(3.0, 0.025 + 0.004 * i, 1) for i in range(8)],  # ...then slide
    (0.0, 0.0, 2),
]


def main() -> None:
    carrier = 2.4e9
    rng = np.random.default_rng(12)
    print("Deploying the gesture pad at 2.4 GHz...")
    transducer = ForceTransducer(default_sensor_design())
    tag = WiForceTag(transducer, clock_offset_ppm=20.0)
    model = calibrate_harmonic_observable(
        tag, carrier, CALIBRATION_LOCATIONS, np.linspace(0.5, 8.0, 16))
    config = OFDMSounderConfig(carrier_frequency=carrier)
    sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                indoor_channel(carrier, rng=rng), rng=rng)
    group = integer_period_group_length(config.frame_period, 1e3)
    extractor = HarmonicExtractor(
        tones=(tag.clocking.readout_port1, tag.clocking.readout_port2),
        group_length=group)

    print("Recording the scripted interaction "
          f"({sum(g for _, _, g in SCRIPT)} phase groups)...")
    streams = []
    clock = 0.0
    for force, location, groups in SCRIPT:
        stream = sounder.capture(TagState(force, location),
                                 groups * group, start_time=clock)
        clock += stream.frames * config.frame_period
        streams.append(stream)
    capture = concatenate_streams(*streams)

    tracker = StreamingTracker(model, extractor, baseline_groups=4)
    raw = tracker.process(capture)
    smoothed = TrackSmoother().smooth(raw)
    print(f"Tracked {len(raw)} groups; "
          f"{sum(s.touched for s in raw)} touched.\n")

    gestures = GestureClassifier().classify(raw)
    print("Recognised gestures:")
    for index, gesture in enumerate(gestures):
        detail = (f"at {gesture.start_location * 1e3:.0f} mm" if
                  gesture.kind.value != "slide" else
                  f"{gesture.start_location * 1e3:.0f} -> "
                  f"{gesture.end_location * 1e3:.0f} mm")
        print(f"  {index + 1}. {gesture.kind.value.upper():10s} "
              f"{detail:18s} peak {gesture.peak_force:4.1f} N, "
              f"{gesture.duration * 1e3:4.0f} ms")

    ramp = [g for g in gestures if g.kind.value == "press-ramp"]
    if ramp:
        print("\nThe press-ramp gesture, smoothed (the analog control):")
        window = [s for s in smoothed
                  if ramp[0].onset <= s.time <= ramp[0].release]
        for sample in window:
            bar = "#" * int(round(sample.force * 4))
            print(f"   t={sample.time * 1e3:6.0f} ms  "
                  f"F={sample.force:5.2f} N  [{bar}]")


if __name__ == "__main__":
    main()
