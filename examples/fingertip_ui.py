#!/usr/bin/env python3
"""Force-enabled UI: a volume slider you press harder or softer.

The paper's HCI motivation (sections 1 and 5.3): a batteryless strip on
any surface becomes an analog control — press location selects the
control, press force sets its level.  This demo simulates a user
pressing the strip at 60 mm with increasing force to raise a volume
level, read entirely over the air at 2.4 GHz (Wi-Fi band).

Run:  python examples/fingertip_ui.py
"""

from __future__ import annotations

import numpy as np

from repro import CALIBRATION_LOCATIONS
from repro.channel import BackscatterLink, indoor_channel
from repro.core import WiForceReader, calibrate_harmonic_observable
from repro.experiments.fingertip import FingertipProfile
from repro.reader import FrameLevelSounder, OFDMSounderConfig
from repro.sensor import ForceTransducer, WiForceTag, default_sensor_design

#: Force-to-volume mapping: 0.5 N steps from 1 N, like ForceEdge [4].
VOLUME_STEP_N = 1.6
VOLUME_BASE_N = 0.6


def volume_from_force(force: float) -> int:
    """Map a press force [N] to a 0-10 volume level."""
    return int(np.clip(round((force - VOLUME_BASE_N) / VOLUME_STEP_N * 2),
                       0, 10))


def main() -> None:
    carrier = 2.4e9
    rng = np.random.default_rng(11)
    print("Deploying the strip at 2.4 GHz (Wi-Fi band)...")
    transducer = ForceTransducer(default_sensor_design())
    tag = WiForceTag(transducer, clock_offset_ppm=20.0)
    model = calibrate_harmonic_observable(
        tag, carrier, CALIBRATION_LOCATIONS, np.linspace(0.5, 8.0, 16))
    sounder = FrameLevelSounder(
        OFDMSounderConfig(carrier_frequency=carrier), tag,
        BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0),
        indoor_channel(carrier, rng=rng), rng=rng)
    reader = WiForceReader(sounder, model, groups_per_capture=2)

    profile = FingertipProfile(levels=(1.0, 2.5, 4.0, 6.0),
                               location=0.060, samples_per_level=5,
                               rng=rng)
    print("User presses the volume strip at 60 mm, harder and harder:\n")
    print("  level | true F [N] | est F [N] | est x [mm] | volume bar")
    last_level = -1
    for press in profile.generate():
        if press.level_index != last_level:
            # Finger lifted between levels: re-reference the reader.
            reader.capture_baseline()
            last_level = press.level_index
            print("  " + "-" * 60)
        reading = reader.read(press.state)
        volume = volume_from_force(reading.force)
        bar = "#" * volume + "." * (10 - volume)
        print(f"  {press.level_index:5d} | {press.state.force:10.2f} | "
              f"{reading.force:9.2f} | {reading.location * 1e3:10.1f} | "
              f"[{bar}]")

    print("\nEvery touch localized to the 60 mm control within a "
          "fingertip's width, with an analog force level on top of the "
          "binary touch — the paper's Fig. 17 interaction.")


if __name__ == "__main__":
    main()
