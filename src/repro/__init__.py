"""WiForce reproduction: wireless force sensing on a space continuum.

A full-stack simulation reproduction of "WiForce: Wireless Sensing and
Localization of Contact Forces on a Space Continuum" (NSDI 2021):
beam-contact mechanics, microstrip RF, a duty-cycle-multiplexed
backscatter tag, multipath/tissue channels, an OFDM/FMCW wireless
reader, and the phase-group harmonic algorithm that turns channel
estimates into force magnitude and contact location.

Quickstart::

    import numpy as np
    from repro import build_default_system, TagState

    system = build_default_system(carrier_frequency=900e6, seed=1)
    system.reader.capture_baseline()
    reading = system.reader.read(TagState(force=3.0, location=0.045))
    print(reading.force, reading.location)

See README.md for the architecture and DESIGN.md for the paper
experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel import BackscatterLink, MultipathChannel, indoor_channel
from repro.core import (
    ForceLocationEstimate,
    ForceLocationEstimator,
    HarmonicExtractor,
    PressReading,
    SensorModel,
    WiForceReader,
    calibrate_harmonic_observable,
    calibrate_port_observable,
)
from repro.reader import (
    FastSounder,
    FrameLevelSounder,
    OFDMSounderConfig,
    resolve_sounder,
)
from repro.sensor import (
    ForceTransducer,
    SensorDesign,
    TagState,
    WiForceTag,
    default_sensor_design,
    wiforce_clocking,
)

__version__ = "1.0.0"

#: The paper's calibration press locations (section 4.2) [m].
CALIBRATION_LOCATIONS = (0.020, 0.030, 0.040, 0.050, 0.060)

#: The paper's evaluated force range (section 5.1) [N].
FORCE_RANGE = (0.5, 8.0)


@dataclass
class WiForceSystem:
    """A fully assembled sensing deployment.

    Attributes:
        design: Sensor design.
        transducer: Force-to-RF transducer.
        tag: Backscatter tag.
        link: Reader/tag geometry.
        clutter: Environment multipath.
        sounder: Channel sounder (the batched :class:`FastSounder` by
            default; :class:`FrameLevelSounder` when built with
            ``sounder="oracle"``).
        model: Calibrated sensor model.
        reader: End-to-end reader.
    """

    design: SensorDesign
    transducer: ForceTransducer
    tag: WiForceTag
    link: BackscatterLink
    clutter: Optional[MultipathChannel]
    sounder: FrameLevelSounder
    model: SensorModel
    reader: WiForceReader


def build_default_system(carrier_frequency: float = 900e6,
                         link: Optional[BackscatterLink] = None,
                         seed: Optional[int] = None,
                         calibration_forces: Optional[np.ndarray] = None,
                         transducer: Optional[ForceTransducer] = None,
                         groups_per_capture: int = 2,
                         sounder: str = "fast") -> WiForceSystem:
    """Assemble the paper's default deployment in one call.

    Sensor at 50 cm from both reader antennas (Fig. 12), indoor
    clutter, OFDM sounding at the requested carrier, harmonic-domain
    calibration at the paper's five locations.

    Args:
        carrier_frequency: 900 MHz or 2.4 GHz in the paper.
        link: Override the deployment geometry.
        seed: Seed for all stochastic parts (clutter, noise).
        calibration_forces: Force samples for the cubic calibration.
        transducer: Reuse an existing transducer (its contact map is
            the expensive part).
        groups_per_capture: Phase groups averaged per reading.
        sounder: ``"fast"`` (batched vectorized default) or
            ``"oracle"`` (the frame-level reference sounder, for
            bit-level verification).
    """
    rng = np.random.default_rng(seed)
    design = default_sensor_design()
    if transducer is None:
        transducer = ForceTransducer(design)
    tag = WiForceTag(transducer)
    if link is None:
        link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0)
    clutter = indoor_channel(carrier_frequency, rng=rng)
    config = OFDMSounderConfig(carrier_frequency=carrier_frequency)
    sounder_instance = resolve_sounder(sounder)(config, tag, link, clutter,
                                                rng=rng)
    if calibration_forces is None:
        calibration_forces = np.linspace(FORCE_RANGE[0], FORCE_RANGE[1], 16)
    model = calibrate_harmonic_observable(
        tag, carrier_frequency, CALIBRATION_LOCATIONS, calibration_forces)
    reader = WiForceReader(sounder_instance, model,
                           groups_per_capture=groups_per_capture)
    return WiForceSystem(
        design=design,
        transducer=transducer,
        tag=tag,
        link=link,
        clutter=clutter,
        sounder=sounder_instance,
        model=model,
        reader=reader,
    )


__all__ = [
    "__version__",
    "CALIBRATION_LOCATIONS",
    "FORCE_RANGE",
    "WiForceSystem",
    "build_default_system",
    "BackscatterLink",
    "MultipathChannel",
    "indoor_channel",
    "ForceLocationEstimate",
    "ForceLocationEstimator",
    "HarmonicExtractor",
    "PressReading",
    "SensorModel",
    "WiForceReader",
    "calibrate_harmonic_observable",
    "calibrate_port_observable",
    "FrameLevelSounder",
    "FastSounder",
    "resolve_sounder",
    "OFDMSounderConfig",
    "ForceTransducer",
    "SensorDesign",
    "TagState",
    "WiForceTag",
    "default_sensor_design",
    "wiforce_clocking",
]
