"""Command-line interface: ``python -m repro <command>``.

Commands:
    info        Print the default sensor design and deployment summary.
    power       Print the tag power budget vs the digital baseline.
    calibrate   Build the cubic sensor model and save it as JSON.
    read        Simulate wireless reads of one press with a saved model.
    demo        One-command end-to-end demo (build, calibrate, read).
    report      Run every paper-figure runner, write REPORT.md.
    serve-bench Drive the async inference service with synthetic load.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.mechanics.dynamics import modal_summary
    from repro.sensor.geometry import default_sensor_design

    design = default_sensor_design()
    line = design.line
    print("WiForce default sensor (paper prototype):")
    print(f"  length            : {line.length * 1e3:.0f} mm")
    print(f"  trace / ground    : {line.width * 1e3:.1f} / "
          f"{line.ground_width * 1e3:.1f} mm")
    print(f"  air gap           : {line.height * 1e3:.2f} mm")
    print(f"  Z0                : {line.characteristic_impedance:.1f} ohm")
    print(f"  soft beam         : {design.soft_material.name}, "
          f"{design.soft_thickness * 1e3:.0f} mm thick")
    print(f"  switch            : {design.switch.name} "
          f"(reflective={design.switch.is_reflective})")
    summary = modal_summary(design.composite_beam(),
                            foundation_stiffness=design.foundation_stiffness())
    print(f"  fundamental mode  : {summary.fundamental:.1f} Hz")
    print(f"  settling time     : {summary.settling_time * 1e3:.0f} ms "
          "(phase-group stationarity margin)")
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.baselines.digital_backscatter import (
        digital_backscatter_power_budget,
    )
    from repro.sensor.power import wiforce_power_budget

    wiforce = wiforce_power_budget()
    digital = digital_backscatter_power_budget()
    print(f"WiForce tag          : {wiforce.total_uw:8.3f} uW "
          "(paper: < 1 uW)")
    print(f"digital backscatter  : {digital.total_uw:8.3f} uW")
    print(f"factor               : {digital.total / wiforce.total:8.0f}x")
    return 0


def _build_tag(fast: bool):
    from repro.sensor.geometry import default_sensor_design
    from repro.sensor.tag import WiForceTag
    from repro.sensor.transduction import ForceTransducer

    design = default_sensor_design()
    if fast:
        transducer = ForceTransducer(design, force_points=20,
                                     location_points=25)
    else:
        transducer = ForceTransducer(design)
    return WiForceTag(transducer)


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.core.calibration import calibrate_harmonic_observable

    print(f"Calibrating at {args.carrier / 1e6:.0f} MHz "
          f"({'fast' if args.fast else 'full'} contact map)...")
    tag = _build_tag(args.fast)
    locations = (0.020, 0.030, 0.040, 0.050, 0.060)
    forces = np.linspace(0.5, 8.0, 16)
    model = calibrate_harmonic_observable(tag, args.carrier, locations,
                                          forces)
    model.save(args.output)
    print(f"Saved sensor model to {args.output}")
    return 0


def _cmd_read(args: argparse.Namespace) -> int:
    from repro.channel.multipath import indoor_channel
    from repro.channel.propagation import BackscatterLink
    from repro.core.calibration import SensorModel
    from repro.core.pipeline import WiForceReader
    from repro.reader.sounder import FrameLevelSounder
    from repro.reader.waveform import OFDMSounderConfig
    from repro.sensor.tag import TagState

    model = SensorModel.load(args.model)
    tag = _build_tag(args.fast)
    rng = np.random.default_rng(args.seed)
    sounder = FrameLevelSounder(
        OFDMSounderConfig(carrier_frequency=model.frequency), tag,
        BackscatterLink(), indoor_channel(model.frequency, rng=rng),
        rng=rng)
    reader = WiForceReader(sounder, model)
    for _ in range(args.repeats):
        reading = reader.read(TagState(args.force, args.location),
                              rebaseline=True)
        print(f"estimated: {reading.force:6.2f} N at "
              f"{reading.location * 1e3:6.1f} mm   (phases "
              f"{np.degrees(reading.phi1):7.1f}, "
              f"{np.degrees(reading.phi2):7.1f} deg)")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import TagState, build_default_system

    print("Building the default deployment (this calibrates the sensor "
          "model; ~15 s)...")
    transducer = None
    if args.fast:
        from repro.sensor.geometry import default_sensor_design
        from repro.sensor.transduction import ForceTransducer
        transducer = ForceTransducer(default_sensor_design(),
                                     force_points=20, location_points=25)
    system = build_default_system(carrier_frequency=args.carrier,
                                  seed=args.seed, transducer=transducer)
    system.reader.capture_baseline()
    for force, location in ((2.0, 0.030), (5.0, 0.050)):
        reading = system.reader.read(TagState(force, location),
                                     rebaseline=True)
        print(f"press {force:.1f} N @ {location * 1e3:.0f} mm -> "
              f"read {reading.force:.2f} N @ "
              f"{reading.location * 1e3:.1f} mm")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    print("Running every paper-figure runner "
          f"({'fast' if args.fast else 'full'} mode)...")
    path = generate_report(args.output, fast=args.fast)
    print(f"Wrote {path}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import LoadProfile, run_benchmark, summarize, write_report

    profile = LoadProfile(
        sensors=args.sensors,
        requests_per_sensor=args.requests,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms * 1e-3,
        batching=not args.no_batching,
        carrier_frequency=args.carrier,
        fast=not args.full,
        seed=args.seed,
    )
    print(f"Driving the inference service with "
          f"{profile.total_requests} requests "
          f"({profile.sensors} sensors x {profile.requests_per_sensor} "
          f"samples, max batch {profile.max_batch}, deadline "
          f"{profile.max_delay_s * 1e3:.1f} ms)...")
    report = run_benchmark(profile)
    print(summarize(report))
    path = write_report(report, args.output)
    print(f"Wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiForce reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the sensor design summary")
    sub.add_parser("power", help="print tag vs digital power budgets")

    calibrate = sub.add_parser("calibrate",
                               help="build and save a sensor model")
    calibrate.add_argument("--carrier", type=float, default=900e6,
                           help="carrier frequency [Hz] (default 900e6)")
    calibrate.add_argument("--output", default="wiforce_model.json",
                           help="output JSON path")
    calibrate.add_argument("--fast", action="store_true",
                           help="reduced-resolution contact map")

    read = sub.add_parser("read", help="simulate wireless reads")
    read.add_argument("--model", required=True, help="saved model JSON")
    read.add_argument("--force", type=float, required=True,
                      help="applied force [N]")
    read.add_argument("--location", type=float, required=True,
                      help="press location [m] from port 1")
    read.add_argument("--repeats", type=int, default=3)
    read.add_argument("--seed", type=int, default=0)
    read.add_argument("--fast", action="store_true")

    demo = sub.add_parser("demo", help="end-to-end demo")
    demo.add_argument("--carrier", type=float, default=900e6)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--fast", action="store_true")

    reproduce = sub.add_parser(
        "report", help="run all paper-figure runners, write REPORT.md")
    reproduce.add_argument("--output", default="REPORT.md")
    reproduce.add_argument("--full", dest="fast", action="store_false",
                           help="full-resolution transducers (slower)")

    serve_bench = sub.add_parser(
        "serve-bench",
        help="benchmark the async micro-batching inference service")
    serve_bench.add_argument("--sensors", type=int, default=8,
                             help="concurrent sensor streams (default 8)")
    serve_bench.add_argument("--requests", type=int, default=64,
                             help="samples per stream (default 64)")
    serve_bench.add_argument("--max-batch", type=int, default=32,
                             help="micro-batch flush size (default 32)")
    serve_bench.add_argument("--max-delay-ms", type=float, default=2.0,
                             help="micro-batch flush deadline [ms]")
    serve_bench.add_argument("--no-batching", action="store_true",
                             help="bench the degraded scalar-direct path")
    serve_bench.add_argument("--carrier", type=float, default=900e6)
    serve_bench.add_argument("--seed", type=int, default=7)
    serve_bench.add_argument("--full", action="store_true",
                             help="full-resolution calibration (slower)")
    serve_bench.add_argument(
        "--output", default="benchmarks/results/BENCH_serve.json",
        help="JSON report path")

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "power": _cmd_power,
    "calibrate": _cmd_calibrate,
    "read": _cmd_read,
    "demo": _cmd_demo,
    "report": _cmd_report,
    "serve-bench": _cmd_serve_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
