"""Command-line interface: ``python -m repro <command>``.

Commands:
    info        Print the default sensor design and deployment summary.
    power       Print the tag power budget vs the digital baseline.
    calibrate   Build the cubic sensor model and save it as JSON.
    read        Simulate wireless reads of one press with a saved model.
    demo        One-command end-to-end demo (build, calibrate, read).
    report      Run every paper-figure runner, write REPORT.md.
    serve-bench Drive the async inference service with synthetic load.
    fleet-bench Drive the sharded fleet and check single-shard parity.
    surrogate   Train / evaluate the learned amortized inverse backend.
    gateway     Serve the inference service over HTTP/WebSocket sockets.
    gateway-bench  Load-test the gateway through real loopback sockets.
    chaos       Run the serve campaign under an armed fault plan.
    obs-report  Summarize the observability manifest of a bench run.
    trace       Render a trace waterfall from exported span events.
    slo         Evaluate the SLOs against a benchmark report.
    cache       Inspect / prune / clear the shared artifact cache.

Primary results go to stdout (machine-consumable); progress and
diagnostics go through the ``repro`` logger hierarchy on stderr,
controlled by ``--log-level``.  ``REPRO_OBS=1`` turns the shared
instrument registry on for any command.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

import numpy as np

logger = logging.getLogger(__name__)


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.mechanics.dynamics import modal_summary
    from repro.sensor.geometry import default_sensor_design

    design = default_sensor_design()
    line = design.line
    print("WiForce default sensor (paper prototype):")
    print(f"  length            : {line.length * 1e3:.0f} mm")
    print(f"  trace / ground    : {line.width * 1e3:.1f} / "
          f"{line.ground_width * 1e3:.1f} mm")
    print(f"  air gap           : {line.height * 1e3:.2f} mm")
    print(f"  Z0                : {line.characteristic_impedance:.1f} ohm")
    print(f"  soft beam         : {design.soft_material.name}, "
          f"{design.soft_thickness * 1e3:.0f} mm thick")
    print(f"  switch            : {design.switch.name} "
          f"(reflective={design.switch.is_reflective})")
    summary = modal_summary(design.composite_beam(),
                            foundation_stiffness=design.foundation_stiffness())
    print(f"  fundamental mode  : {summary.fundamental:.1f} Hz")
    print(f"  settling time     : {summary.settling_time * 1e3:.0f} ms "
          "(phase-group stationarity margin)")
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.baselines.digital_backscatter import (
        digital_backscatter_power_budget,
    )
    from repro.sensor.power import wiforce_power_budget

    wiforce = wiforce_power_budget()
    digital = digital_backscatter_power_budget()
    print(f"WiForce tag          : {wiforce.total_uw:8.3f} uW "
          "(paper: < 1 uW)")
    print(f"digital backscatter  : {digital.total_uw:8.3f} uW")
    print(f"factor               : {digital.total / wiforce.total:8.0f}x")
    return 0


def _build_tag(fast: bool):
    from repro.sensor.geometry import default_sensor_design
    from repro.sensor.tag import WiForceTag
    from repro.sensor.transduction import ForceTransducer

    design = default_sensor_design()
    if fast:
        transducer = ForceTransducer(design, force_points=20,
                                     location_points=25)
    else:
        transducer = ForceTransducer(design)
    return WiForceTag(transducer)


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.core.calibration import calibrate_harmonic_observable

    logger.info("calibrating at %.0f MHz (%s contact map)",
                args.carrier / 1e6, "fast" if args.fast else "full")
    tag = _build_tag(args.fast)
    locations = (0.020, 0.030, 0.040, 0.050, 0.060)
    forces = np.linspace(0.5, 8.0, 16)
    model = calibrate_harmonic_observable(tag, args.carrier, locations,
                                          forces)
    model.save(args.output)
    print(f"Saved sensor model to {args.output}")
    return 0


def _cmd_read(args: argparse.Namespace) -> int:
    from repro.channel.multipath import indoor_channel
    from repro.channel.propagation import BackscatterLink
    from repro.core.calibration import SensorModel
    from repro.core.pipeline import WiForceReader
    from repro.reader.batch import resolve_sounder
    from repro.reader.waveform import OFDMSounderConfig
    from repro.sensor.tag import TagState

    model = SensorModel.load(args.model)
    tag = _build_tag(args.fast)
    rng = np.random.default_rng(args.seed)
    sounder = resolve_sounder(args.sounder)(
        OFDMSounderConfig(carrier_frequency=model.frequency), tag,
        BackscatterLink(), indoor_channel(model.frequency, rng=rng),
        rng=rng)
    reader = WiForceReader(sounder, model)
    for _ in range(args.repeats):
        reading = reader.read(TagState(args.force, args.location),
                              rebaseline=True)
        print(f"estimated: {reading.force:6.2f} N at "
              f"{reading.location * 1e3:6.1f} mm   (phases "
              f"{np.degrees(reading.phi1):7.1f}, "
              f"{np.degrees(reading.phi2):7.1f} deg)")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import TagState, build_default_system

    logger.info("building the default deployment (this calibrates the "
                "sensor model; ~15 s)")
    transducer = None
    if args.fast:
        from repro.sensor.geometry import default_sensor_design
        from repro.sensor.transduction import ForceTransducer
        transducer = ForceTransducer(default_sensor_design(),
                                     force_points=20, location_points=25)
    system = build_default_system(carrier_frequency=args.carrier,
                                  seed=args.seed, transducer=transducer)
    system.reader.capture_baseline()
    for force, location in ((2.0, 0.030), (5.0, 0.050)):
        reading = system.reader.read(TagState(force, location),
                                     rebaseline=True)
        print(f"press {force:.1f} N @ {location * 1e3:.0f} mm -> "
              f"read {reading.force:.2f} N @ "
              f"{reading.location * 1e3:.1f} mm")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    logger.info("running every paper-figure runner (%s mode)",
                "fast" if args.fast else "full")
    path = generate_report(args.output, fast=args.fast)
    print(f"Wrote {path}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.obs import Profiler
    from repro.serve import LoadProfile, run_benchmark, summarize, write_report

    profile = LoadProfile(
        sensors=args.sensors,
        requests_per_sensor=args.requests,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms * 1e-3,
        batching=not args.no_batching,
        carrier_frequency=args.carrier,
        fast=not args.full,
        backend=args.backend,
        seed=args.seed,
        arrival=args.arrival,
        arrival_rate_rps=args.arrival_rate,
        pareto_alpha=args.pareto_alpha,
    )
    logger.info(
        "driving the inference service with %d requests "
        "(%d sensors x %d samples, max batch %d, deadline %.1f ms, "
        "%s arrivals)",
        profile.total_requests, profile.sensors,
        profile.requests_per_sensor, profile.max_batch,
        profile.max_delay_s * 1e3, profile.arrival)
    profiler = Profiler(enabled=args.profile)
    report = run_benchmark(profile, profiler=profiler)
    print(summarize(report))
    if args.profile:
        print()
        print(profiler.report())
    path = write_report(report, args.output)
    print(f"Wrote {path}")
    return 0


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    from repro.serve import LoadProfile, write_report
    from repro.serve.fleet import (
        FleetProfile,
        run_fleet_benchmark,
        summarize_fleet,
    )

    profile = FleetProfile(
        load=LoadProfile(
            sensors=args.sensors,
            requests_per_sensor=args.requests,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms * 1e-3,
            carrier_frequency=args.carrier,
            backend=args.backend,
            seed=args.seed,
            arrival=args.arrival,
            arrival_rate_rps=args.arrival_rate,
            pareto_alpha=args.pareto_alpha,
        ),
        shards=args.shards,
        vnodes=args.vnodes,
    )
    logger.info(
        "driving %d shards with %d requests (%d sensors x %d samples, "
        "%s arrivals)",
        profile.shards, profile.load.total_requests,
        profile.load.sensors, profile.load.requests_per_sensor,
        profile.load.arrival)
    report = run_fleet_benchmark(profile)
    print(summarize_fleet(report))
    path = write_report(report, args.output)
    print(f"Wrote {path}")
    if report["parity"]["max_force_delta_n"] != 0.0 or \
            report["parity"]["max_location_delta_m"] != 0.0 or \
            not report["parity"]["touched_match"]:
        logger.error("sharded fleet is NOT bit-identical to the "
                     "single-shard reference")
        return 1
    return 0


def _parse_tenants(specs: List[str]):
    """``name:token[:rate[:burst[:backend]]]`` specs -> Tenant list."""
    from repro.errors import ConfigurationError
    from repro.gateway import Tenant

    tenants = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) < 2 or not all(parts[:2]):
            raise ConfigurationError(
                f"--tenant needs name:token[:rate[:burst[:backend]]], "
                f"got {spec!r}")
        rate = float(parts[2]) if len(parts) > 2 else 200.0
        burst = int(parts[3]) if len(parts) > 3 else 50
        backend = parts[4] if len(parts) > 4 else ""
        tenants.append(Tenant(name=parts[0], token=parts[1],
                              rate_per_s=rate, burst=burst,
                              backend=backend))
    return tenants


def _cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from repro.gateway import Gateway, TenantTable
    from repro.serve import BatchPolicy, InferenceService

    tenants = _parse_tenants(args.tenant)
    if not tenants and not args.anonymous:
        logger.error("no --tenant given; pass --anonymous to serve "
                     "without auth (loopback demos only)")
        return 1
    table = TenantTable(tenants, allow_anonymous=args.anonymous)
    service = InferenceService(
        policy=BatchPolicy(max_batch=args.max_batch,
                           max_delay_s=args.max_delay_ms * 1e-3),
        max_sessions=args.max_sessions,
        idle_ttl_s=args.idle_ttl_s)
    gateway = Gateway(service, tenants=table, host=args.host,
                      port=args.port)

    async def serve() -> None:
        host, port = await gateway.start()
        print(f"gateway listening on http://{host}:{port} "
              f"(estimate: POST /v1/estimate, stream: GET /v1/stream)")
        try:
            await gateway.serve_forever()
        finally:
            await gateway.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        logger.info("gateway stopped")
    return 0


def _cmd_gateway_bench(args: argparse.Namespace) -> int:
    from repro.gateway import run_gateway_benchmark
    from repro.gateway import summarize as gateway_summarize
    from repro.serve import LoadProfile, write_report

    profile = LoadProfile(
        sensors=args.connections,
        requests_per_sensor=args.requests,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms * 1e-3,
        carrier_frequency=args.carrier,
        fast=not args.full,
        backend=args.backend,
        seed=args.seed,
        arrival=args.arrival,
        arrival_rate_rps=args.arrival_rate,
        pareto_alpha=args.pareto_alpha,
    )
    logger.info(
        "load-testing the gateway with %d requests over %d tenant "
        "connections (%s arrivals)", profile.total_requests,
        profile.sensors, profile.arrival)
    report = run_gateway_benchmark(profile)
    print(gateway_summarize(report))
    path = write_report(report, args.output)
    print(f"Wrote {path}")
    if not report["parity"]["touched_match"] \
            or report["parity"]["max_force_delta_n"] > 0.0:
        logger.error("gateway parity check failed")
        return 1
    return 0


def _cmd_surrogate(args: argparse.Namespace) -> int:
    from repro.experiments.scenarios import calibrated_model
    from repro.surrogate import (
        DatasetSpec,
        evaluate_surrogate,
        summarize,
        train_surrogate,
        write_report,
    )

    fast = not args.full
    spec = DatasetSpec(carrier_frequency=args.carrier, fast=fast)
    if args.surrogate_action == "train":
        logger.info("training the surrogate inverse at %.0f MHz "
                    "(%s contact map; cold sweeps go through the "
                    "artifact cache)", args.carrier / 1e6,
                    "fast" if fast else "full")
        model = calibrated_model(args.carrier, fast=fast)
        surrogate = train_surrogate(model, spec)
        print(f"trained on {surrogate.train_samples} sweep samples "
              f"({len(surrogate.weights)} features)")
        print(f"train residual p50 / p95 : "
              f"{surrogate.train_residual_p50:.4f} / "
              f"{surrogate.train_residual_p95:.4f} rad")
        print(f"fallback residual bound  : "
              f"{surrogate.residual_bound:.4f} rad")
        print(f"dataset key              : {spec.cache_key()}")
        return 0
    # eval
    logger.info("evaluating surrogate vs grid oracle at N=%d "
                "(seed %d, %.1f deg phase noise)", args.samples,
                args.seed, args.noise_deg)
    report = evaluate_surrogate(
        samples=args.samples, carrier_frequency=args.carrier,
        fast=fast, seed=args.seed, noise_deg=args.noise_deg,
        best_of=args.best_of, spec=spec)
    print(summarize(report))
    write_report(report, args.output)
    print(f"Wrote {args.output}")
    if report["surrogate_p95_error_delta"] > 1.0:
        logger.error("surrogate p95 error delta exceeds the parity cap")
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import chaos
    from repro.faults.plan import FaultPlan
    from repro.serve import LoadProfile, write_report

    if args.plan:
        plan = FaultPlan.load(args.plan)
    else:
        plan = chaos.default_plan(args.seed)
    profile = LoadProfile(
        sensors=args.sensors,
        requests_per_sensor=args.requests,
        carrier_frequency=args.carrier,
        fast=not args.full,
    )
    logger.info(
        "running chaos campaign: plan %s (seed %d, %d specs) over %d "
        "requests", plan.name, args.seed, len(plan.specs),
        profile.total_requests)
    report = chaos.run_chaos(
        plan=plan, profile=profile, seed=args.seed,
        transport="gateway" if args.gateway else "inprocess")
    print(chaos.summarize(report))
    path = write_report(report, args.output)
    print(f"Wrote {path}")
    crashes = report["survival"]["crashes"]
    if crashes:
        logger.error("chaos campaign saw %d crash(es)", crashes)
        return 1
    return 0


def _render_histogram_stats(histograms: dict) -> List[str]:
    """Aligned count/mean/p50/p99/max lines for snapshot histograms."""
    from repro.obs import Histogram

    if not histograms:
        return ["  (none)"]
    width = max(len(name) for name in histograms)
    lines = [f"  {'name':<{width}}  {'count':>7}  {'mean':>10}  "
             f"{'p50':>10}  {'p99':>10}  {'max':>10}"]
    for name, payload in sorted(histograms.items()):
        histogram = Histogram.from_dict(dict(payload, name=name))
        maximum = payload["max"] if payload["count"] else float("nan")
        lines.append(
            f"  {name:<{width}}  {histogram.count:>7}  "
            f"{histogram.mean:>10.3g}  {histogram.quantile(0.5):>10.3g}  "
            f"{histogram.quantile(0.99):>10.3g}  {maximum:>10.3g}")
    return lines


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import to_prometheus

    path = Path(args.input)
    if not path.exists():
        logger.error("no benchmark report at %s — run "
                     "`python -m repro serve-bench` first", path)
        return 1
    report = json.loads(path.read_text())
    manifest = report.get("manifest") or {}
    snapshot = manifest.get("instruments")
    if snapshot is None:
        # Pre-manifest reports still carry the service telemetry.
        snapshot = report.get("telemetry")
    if snapshot is None:
        logger.error("%s carries no instrument snapshot", path)
        return 1
    if args.prometheus:
        print(to_prometheus(snapshot), end="")
        return 0
    print(f"observability report: {path}")
    print(f"  schema_version : {report.get('schema_version', 1)}")
    print(f"  git sha        : {manifest.get('git_sha', 'unknown')}")
    print(f"  config hash    : {manifest.get('config_hash', 'unknown')}")
    counters = snapshot.get("counters", {})
    print("counters:")
    if counters:
        width = max(len(name) for name in counters)
        for name, value in sorted(counters.items()):
            print(f"  {name:<{width}}  {value}")
    else:
        print("  (none)")
    gauges = snapshot.get("gauges", {})
    if gauges:
        print("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in sorted(gauges.items()):
            print(f"  {name:<{width}}  {value:.4g}")
    histograms = snapshot.get("histograms", {})
    spans = {name: payload for name, payload in histograms.items()
             if name.startswith("span.")}
    stages = {name: payload for name, payload in histograms.items()
              if not name.startswith("span.")}
    print("stage latency histograms [s]:")
    for line in _render_histogram_stats(stages):
        print(line)
    print("trace spans [s]:")
    for line in _render_histogram_stats(spans):
        print(line)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.trace import render_waterfall

    path = Path(args.input)
    if not path.exists():
        logger.error("no span-event export at %s — run with REPRO_OBS=1 "
                     "REPRO_TRACE_EXPORT=%s first", path, path)
        return 1
    events = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict):
            events.append(event)
    rendered = render_waterfall(events, args.trace_id)
    if not rendered:
        logger.error("no spans matching trace %r in %s (%d events)",
                     args.trace_id, path, len(events))
        return 1
    print(rendered)
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.slo import evaluate_report, render_statuses, report_slos

    path = Path(args.input)
    if not path.exists():
        logger.error("no benchmark report at %s — run "
                     "`python -m repro serve-bench` first", path)
        return 1
    report = json.loads(path.read_text())
    statuses = evaluate_report(report_slos(), report)
    if args.json:
        print(json.dumps(statuses, indent=2, sort_keys=True))
    else:
        print(render_statuses(statuses))
    violated = [status for status in statuses if not status["ok"]]
    if violated:
        logger.error("%d SLO objective(s) violated: %s", len(violated),
                     ", ".join(status["name"] for status in violated))
        return 1
    return 0


def _cache_directory(args: argparse.Namespace):
    from repro.cache import config_from_env

    if args.cache_dir:
        from pathlib import Path

        return Path(args.cache_dir)
    return config_from_env().directory


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import clear, config_from_env, directory_stats, prune

    directory = _cache_directory(args)
    if args.action == "stats":
        stats = directory_stats(directory)
        enabled = config_from_env().enabled
        print(f"cache directory : {stats['directory']}")
        print(f"enabled         : {enabled}")
        print(f"format version  : v{stats['format_version']} "
              f"(key schema {stats['key_schema_version']})")
        print(f"total           : {stats['total_entries']} artifacts, "
              f"{stats['total_bytes']} bytes")
        if stats["namespaces"]:
            width = max(len(name) for name in stats["namespaces"])
            for name, entry in sorted(stats["namespaces"].items()):
                print(f"  {name:<{width}}  {entry['entries']:>5} artifacts  "
                      f"{entry['bytes']:>12} bytes")
        return 0
    if args.action == "prune":
        result = prune(directory, max_age_days=args.max_age_days,
                       max_bytes=args.max_bytes)
    else:  # clear
        result = clear(directory)
    print(f"removed {result['removed']} artifacts "
          f"({result['removed_bytes']} bytes) from {directory}")
    return 0


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    """The shared estimator-backend selector for the bench commands."""
    parser.add_argument(
        "--backend", choices=["grid", "surrogate"], default="grid",
        help="estimator backend for every request: the exhaustive "
             "grid oracle (default) or the learned amortized inverse")


def _add_arrival_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared open-loop arrival-shaping flags."""
    parser.add_argument(
        "--arrival", choices=["uniform", "pareto"], default="uniform",
        help="arrival pattern when --arrival-rate > 0: evenly spaced "
             "or heavy-tailed bursts (default uniform)")
    parser.add_argument(
        "--arrival-rate", type=float, default=0.0,
        help="mean aggregate arrival rate [req/s]; 0 (default) "
             "submits the whole load at once")
    parser.add_argument(
        "--pareto-alpha", type=float, default=1.5,
        help="Pareto tail exponent for --arrival pareto (> 1; "
             "smaller = burstier; default 1.5)")


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiForce reproduction command-line tools",
    )
    parser.add_argument(
        "--log-level", default="info",
        choices=["debug", "info", "warning", "error", "critical"],
        help="repro logger verbosity on stderr (default info)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the sensor design summary")
    sub.add_parser("power", help="print tag vs digital power budgets")

    calibrate = sub.add_parser("calibrate",
                               help="build and save a sensor model")
    calibrate.add_argument("--carrier", type=float, default=900e6,
                           help="carrier frequency [Hz] (default 900e6)")
    calibrate.add_argument("--output", default="wiforce_model.json",
                           help="output JSON path")
    calibrate.add_argument("--fast", action="store_true",
                           help="reduced-resolution contact map")

    read = sub.add_parser("read", help="simulate wireless reads")
    read.add_argument("--model", required=True, help="saved model JSON")
    read.add_argument("--force", type=float, required=True,
                      help="applied force [N]")
    read.add_argument("--location", type=float, required=True,
                      help="press location [m] from port 1")
    read.add_argument("--repeats", type=int, default=3)
    read.add_argument("--seed", type=int, default=0)
    read.add_argument("--fast", action="store_true")
    read.add_argument("--sounder", choices=("fast", "oracle"),
                      default="fast",
                      help="batched sounder (default) or the bit-level "
                           "oracle")

    demo = sub.add_parser("demo", help="end-to-end demo")
    demo.add_argument("--carrier", type=float, default=900e6)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--fast", action="store_true")

    reproduce = sub.add_parser(
        "report", help="run all paper-figure runners, write REPORT.md")
    reproduce.add_argument("--output", default="REPORT.md")
    reproduce.add_argument("--full", dest="fast", action="store_false",
                           help="full-resolution transducers (slower)")

    serve_bench = sub.add_parser(
        "serve-bench",
        help="benchmark the async micro-batching inference service")
    serve_bench.add_argument("--sensors", type=int, default=8,
                             help="concurrent sensor streams (default 8)")
    serve_bench.add_argument("--requests", type=int, default=64,
                             help="samples per stream (default 64)")
    serve_bench.add_argument("--max-batch", type=int, default=32,
                             help="micro-batch flush size (default 32)")
    serve_bench.add_argument("--max-delay-ms", type=float, default=2.0,
                             help="micro-batch flush deadline [ms]")
    serve_bench.add_argument("--no-batching", action="store_true",
                             help="bench the degraded scalar-direct path")
    serve_bench.add_argument("--carrier", type=float, default=900e6)
    serve_bench.add_argument("--seed", type=int, default=7)
    serve_bench.add_argument("--full", action="store_true",
                             help="full-resolution calibration (slower)")
    serve_bench.add_argument(
        "--output", default="benchmarks/results/BENCH_serve.json",
        help="JSON report path")
    serve_bench.add_argument(
        "--profile", action="store_true",
        help="print a per-stage hotspot profile of the bench run")
    _add_backend_argument(serve_bench)
    _add_arrival_arguments(serve_bench)

    fleet_bench = sub.add_parser(
        "fleet-bench",
        help="benchmark the consistent-hash sharded fleet vs one shard")
    fleet_bench.add_argument("--sensors", type=int, default=1024,
                             help="simulated sensor streams "
                                  "(default 1024; nightly runs 100000)")
    fleet_bench.add_argument("--requests", type=int, default=4,
                             help="samples per stream (default 4)")
    fleet_bench.add_argument("--shards", type=int, default=4,
                             help="service shards / worker threads "
                                  "(default 4)")
    fleet_bench.add_argument("--vnodes", type=int, default=64,
                             help="virtual nodes per shard on the hash "
                                  "ring (default 64)")
    fleet_bench.add_argument("--max-batch", type=int, default=32,
                             help="micro-batch flush size (default 32)")
    fleet_bench.add_argument("--max-delay-ms", type=float, default=2.0,
                             help="micro-batch flush deadline [ms]")
    fleet_bench.add_argument("--carrier", type=float, default=900e6)
    fleet_bench.add_argument("--seed", type=int, default=7)
    fleet_bench.add_argument(
        "--output", default="benchmarks/results/BENCH_fleet.json",
        help="JSON report path")
    _add_backend_argument(fleet_bench)
    _add_arrival_arguments(fleet_bench)

    surrogate = sub.add_parser(
        "surrogate",
        help="train / evaluate the learned amortized inverse "
             "(the 'surrogate' estimator backend)")
    surrogate_sub = surrogate.add_subparsers(dest="surrogate_action",
                                             required=True)
    surrogate_train = surrogate_sub.add_parser(
        "train",
        help="materialize the training sweep and fit the ridge inverse "
             "(both land in the artifact cache)")
    surrogate_train.add_argument("--carrier", type=float, default=900e6,
                                 help="carrier frequency [Hz] "
                                      "(default 900e6)")
    surrogate_train.add_argument(
        "--full", action="store_true",
        help="full-resolution calibration (slower)")
    surrogate_eval = surrogate_sub.add_parser(
        "eval",
        help="score the surrogate against the grid oracle "
             "(error CDFs + amortized speedup)")
    surrogate_eval.add_argument("--carrier", type=float, default=900e6,
                                help="carrier frequency [Hz] "
                                     "(default 900e6)")
    surrogate_eval.add_argument(
        "--full", action="store_true",
        help="full-resolution calibration (slower)")
    surrogate_eval.add_argument(
        "--samples", type=int, default=1000,
        help="held-out batch size (default 1000, the acceptance N)")
    surrogate_eval.add_argument("--seed", type=int, default=42,
                                help="held-out workload seed")
    surrogate_eval.add_argument(
        "--noise-deg", type=float, default=1.0,
        help="Gaussian phase noise on held-out phases [deg]")
    surrogate_eval.add_argument(
        "--best-of", type=int, default=3,
        help="timing repetitions; min is reported (default 3)")
    surrogate_eval.add_argument(
        "--output", default="benchmarks/results/BENCH_surrogate.json",
        help="JSON report path")

    gateway = sub.add_parser(
        "gateway",
        help="serve the inference service over HTTP/WebSocket")
    gateway.add_argument("--host", default="127.0.0.1",
                         help="bind address (default loopback)")
    gateway.add_argument("--port", type=int, default=8790,
                         help="bind port (default 8790; 0 = ephemeral)")
    gateway.add_argument(
        "--tenant", action="append", default=[],
        metavar="NAME:TOKEN[:RATE[:BURST[:BACKEND]]]",
        help="register a tenant credential (repeatable); BACKEND "
             "forces an estimator backend on the tenant's requests")
    gateway.add_argument(
        "--anonymous", action="store_true",
        help="allow unauthenticated requests (loopback demos only)")
    gateway.add_argument("--max-batch", type=int, default=32,
                         help="micro-batch flush size (default 32)")
    gateway.add_argument("--max-delay-ms", type=float, default=2.0,
                         help="micro-batch flush deadline [ms]")
    gateway.add_argument(
        "--max-sessions", type=int, default=1024,
        help="LRU session cap for connect/disconnect churn "
             "(default 1024)")
    gateway.add_argument(
        "--idle-ttl-s", type=float, default=900.0,
        help="evict sensor sessions idle longer than this [s]")

    gateway_bench = sub.add_parser(
        "gateway-bench",
        help="load-test the gateway through real loopback sockets")
    gateway_bench.add_argument(
        "--connections", type=int, default=8,
        help="concurrent tenant connections (default 8)")
    gateway_bench.add_argument("--requests", type=int, default=64,
                               help="samples per connection (default 64)")
    gateway_bench.add_argument("--max-batch", type=int, default=32,
                               help="micro-batch flush size (default 32)")
    gateway_bench.add_argument("--max-delay-ms", type=float, default=2.0,
                               help="micro-batch flush deadline [ms]")
    gateway_bench.add_argument("--carrier", type=float, default=900e6)
    gateway_bench.add_argument("--seed", type=int, default=7)
    gateway_bench.add_argument(
        "--full", action="store_true",
        help="full-resolution calibration (slower)")
    gateway_bench.add_argument(
        "--output", default="benchmarks/results/BENCH_gateway.json",
        help="JSON report path")
    _add_backend_argument(gateway_bench)
    _add_arrival_arguments(gateway_bench)

    chaos = sub.add_parser(
        "chaos",
        help="run the serve campaign under an armed fault plan and "
             "report survival")
    chaos.add_argument("--seed", type=int, default=0,
                       help="plan seed (overrides a loaded plan's seed)")
    chaos.add_argument("--plan", default="",
                       help="fault plan JSON path (default: the "
                            "built-in serve plan)")
    chaos.add_argument("--sensors", type=int, default=4,
                       help="concurrent sensor streams (default 4)")
    chaos.add_argument("--requests", type=int, default=48,
                       help="samples per stream (default 48)")
    chaos.add_argument("--carrier", type=float, default=900e6)
    chaos.add_argument("--full", action="store_true",
                       help="full-resolution calibration (slower)")
    chaos.add_argument(
        "--gateway", action="store_true",
        help="route the campaign through a real loopback gateway "
             "socket instead of calling the service in-process")
    chaos.add_argument(
        "--output", default="benchmarks/results/BENCH_chaos.json",
        help="JSON survival report path")

    obs_report = sub.add_parser(
        "obs-report",
        help="summarize the manifest + instrument snapshot of a "
             "benchmark report")
    obs_report.add_argument(
        "--input", default="benchmarks/results/BENCH_serve.json",
        help="stamped benchmark JSON (default BENCH_serve.json)")
    obs_report.add_argument(
        "--prometheus", action="store_true",
        help="dump the snapshot in Prometheus text format instead")

    trace_cmd = sub.add_parser(
        "trace",
        help="inspect exported trace spans (waterfall per trace id)")
    trace_sub = trace_cmd.add_subparsers(dest="trace_action",
                                         required=True)
    trace_show = trace_sub.add_parser(
        "show", help="render one trace as a span waterfall")
    trace_show.add_argument(
        "trace_id", help="32-hex trace id (a unique prefix works)")
    trace_show.add_argument(
        "--input", default="trace-events.jsonl",
        help="span-event JSONL written via REPRO_TRACE_EXPORT "
             "(default trace-events.jsonl)")

    slo = sub.add_parser(
        "slo",
        help="evaluate the serve SLOs against a benchmark report "
             "(exit 1 on violation)")
    slo.add_argument(
        "--input", default="benchmarks/results/BENCH_serve.json",
        help="stamped benchmark JSON (default BENCH_serve.json)")
    slo.add_argument(
        "--json", action="store_true",
        help="emit the raw status dicts as JSON instead of the table")

    cache = sub.add_parser(
        "cache",
        help="inspect or maintain the content-addressed artifact cache")
    cache.add_argument(
        "action", choices=["stats", "prune", "clear"],
        help="stats: per-namespace sizes; prune: age/size eviction; "
             "clear: remove everything")
    cache.add_argument(
        "--cache-dir", default="",
        help="cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    cache.add_argument(
        "--max-age-days", type=float, default=None,
        help="prune: drop artifacts older than this many days")
    cache.add_argument(
        "--max-bytes", type=int, default=None,
        help="prune: evict oldest-first until the directory fits")

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "power": _cmd_power,
    "calibrate": _cmd_calibrate,
    "read": _cmd_read,
    "demo": _cmd_demo,
    "report": _cmd_report,
    "serve-bench": _cmd_serve_bench,
    "fleet-bench": _cmd_fleet_bench,
    "surrogate": _cmd_surrogate,
    "gateway": _cmd_gateway,
    "gateway-bench": _cmd_gateway_bench,
    "chaos": _cmd_chaos,
    "obs-report": _cmd_obs_report,
    "trace": _cmd_trace,
    "slo": _cmd_slo,
    "cache": _cmd_cache,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.obs import configure_logging, enable_from_env

    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    enable_from_env()
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
