"""``repro.faults`` — deterministic fault injection and degradation.

Three layers (see DESIGN.md, "Fault injection & graceful
degradation"):

* :mod:`repro.faults.plan` — declarative, seeded
  :class:`FaultSpec`/:class:`FaultPlan` with JSON round-trip; every
  injection decision is a pure function of (plan seed, spec, visit
  counter), so chaos runs replay bit-for-bit.
* :mod:`repro.faults.inject` — the site registry and the per-process
  armed :class:`FaultInjector`; unarmed, every hook is a one-call
  no-op and results are bit-identical to an uninstrumented build.
* :mod:`repro.faults.retry` — the degradation vocabulary the
  consumers share: bounded :func:`retry_async`/:func:`retry_sync`
  with seeded exponential backoff, and a :class:`CircuitBreaker`.

The chaos harness lives in :mod:`repro.faults.chaos` (imported
lazily — it pulls in the serve stack) and backs the
``python -m repro chaos`` CLI.
"""

from repro.faults.inject import (
    SITES,
    FaultEvent,
    FaultInjector,
    armed,
    disarm,
    inject,
    validate_plan,
)
from repro.faults.plan import FaultPlan, FaultSpec, unit_draw
from repro.faults.retry import (
    CircuitBreaker,
    RetryPolicy,
    retry_async,
    retry_sync,
)

__all__ = [
    "SITES",
    "CircuitBreaker",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "armed",
    "disarm",
    "inject",
    "retry_async",
    "retry_sync",
    "unit_draw",
    "validate_plan",
]
