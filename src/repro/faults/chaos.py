"""Chaos harness: a serve campaign run under an armed fault plan.

Drives the async inference service with the same synthetic fleet as
``repro serve-bench`` while a :class:`~repro.faults.plan.FaultPlan` is
armed, then reports *survival*: how many requests rode a degraded
path (and said so via their ``quality`` flag), how many recovered
through the bounded retry budget, how many were shed as backpressure,
and how many crashed outright.  The acceptance bar for the built-in
default plan is zero crashes and a survival rate >= 0.95.

Reproducibility contract: the injected-fault ``events`` block and the
``survival`` block are pure functions of (plan, seed, load profile) —
two runs with the same arguments produce them bit-identically (tested
in ``tests/test_faults_chaos.py``).  Wall-clock ``timing`` and the
latency histograms in the telemetry snapshot are *not* deterministic
and live in their own blocks.

This module is imported lazily (it pulls in the whole serve stack);
``python -m repro chaos`` is the CLI front end.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional, Union

from repro.errors import QueueFullError, ServeError
from repro.faults.inject import inject
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy
from repro.obs.manifest import stamp_report
from repro.obs.recorder import recording
from repro.obs.registry import observed
from repro.serve.loadgen import LoadProfile, generate_requests
from repro.serve.protocol import EstimateRequest, EstimateResponse
from repro.serve.scheduler import BatchPolicy
from repro.serve.service import InferenceService
from repro.serve.session import ModelFactory

#: Qualities that count as "handled gracefully" for survival purposes.
GRACEFUL_QUALITIES = ("degraded", "recovered", "quarantined")


def default_plan(seed: int = 0) -> FaultPlan:
    """The built-in chaos plan for the serve campaign.

    Targets the one site the load campaign exercises on every request
    (``serve.scheduler``): injected stalls blow the latency budget
    (``quality="degraded"``), slow consumers drag the queue, and
    synthetic rejections force the service's bounded-retry path
    (``quality="recovered"``).  Sites the campaign does not visit stay
    untargeted so the injected sequence cannot depend on environment
    state (e.g. whether the model cache is already warm).
    """
    return FaultPlan(
        name="builtin-default",
        seed=seed,
        specs=(
            FaultSpec(site="serve.scheduler", kind="stall",
                      probability=0.05, magnitude=0.002, seed=0),
            FaultSpec(site="serve.scheduler", kind="slow_consumer",
                      probability=0.02, magnitude=0.004, seed=1),
            FaultSpec(site="serve.scheduler", kind="reject",
                      probability=0.05, seed=2),
        ),
    )


def default_profile() -> LoadProfile:
    """The default chaos load: small enough for CI, big enough to fault."""
    return LoadProfile(sensors=4, requests_per_sensor=48)


async def _drive_gateway(
    service: InferenceService, requests: List[EstimateRequest],
) -> List[Union[EstimateResponse, BaseException]]:
    """Fire every request through a real gateway socket.

    Boots a :class:`repro.gateway.Gateway` around the service on an
    ephemeral loopback port, opens one WebSocket connection per sensor
    stream, and maps the wire outcomes back into the survival
    taxonomy: ``"estimate"`` replies decode to
    :class:`EstimateResponse`, ``"backpressure"`` / ``"quota"`` error
    envelopes count as shed (:class:`QueueFullError`), and anything
    else — including a dropped connection — counts as a crash.
    """
    from repro.errors import GatewayError
    from repro.gateway import Gateway, WebSocketClient

    def to_outcome(kind: str, message: dict
                   ) -> Union[EstimateResponse, BaseException]:
        if kind == "estimate":
            return EstimateResponse.from_dict(message["response"])
        code = message.get("code", "")
        text = message.get("error", "gateway error")
        if code in ("backpressure", "quota"):
            return QueueFullError(text)
        return GatewayError(f"{code}: {text}")

    async def one_connection(
        host: str, port: int, stream: List[EstimateRequest],
    ) -> List[Union[EstimateResponse, BaseException]]:
        client = await WebSocketClient.connect(host, port)
        outcomes: dict = {}
        try:
            for request in stream:
                await client.send_json({"type": "estimate",
                                        "request": request.to_dict()})
            answered = 0
            while answered < len(stream):
                message = await client.recv_json()
                kind = message.get("type", "")
                if kind == "touch_event":
                    continue
                if kind == "estimate":
                    sequence = message["response"]["sequence"]
                else:
                    sequence = message.get("sequence", -1)
                outcomes[sequence] = to_outcome(kind, message)
                answered += 1
        except Exception as exc:  # noqa: BLE001 - survival accounting
            for request in stream:
                outcomes.setdefault(request.sequence, exc)
        finally:
            await client.close()
        return [outcomes.get(request.sequence,
                             GatewayError("no reply"))
                for request in stream]

    by_sensor: dict = {}
    for request in requests:
        by_sensor.setdefault(request.sensor_id, []).append(request)
    async with Gateway(service) as gateway:
        host, port = gateway.address
        per_stream = await asyncio.gather(*(
            one_connection(host, port, stream)
            for stream in by_sensor.values()))
    position = {sensor_id: 0 for sensor_id in by_sensor}
    streams = dict(zip(by_sensor, per_stream))
    flattened = []
    for request in requests:
        index = position[request.sensor_id]
        position[request.sensor_id] = index + 1
        flattened.append(streams[request.sensor_id][index])
    return flattened


async def _drive(service: InferenceService,
                 requests: List[EstimateRequest],
                 ) -> List[Union[EstimateResponse, BaseException]]:
    """Fire every request; capture per-request failures instead of
    letting one exception cancel the whole campaign."""

    async def one(request: EstimateRequest):
        try:
            return await service.estimate(request)
        except Exception as exc:  # noqa: BLE001 - survival accounting
            return exc

    return list(await asyncio.gather(*(one(r) for r in requests)))


def _survival(outcomes: List[Union[EstimateResponse, BaseException]]
              ) -> dict:
    """The survival block: outcome counts and the survival rate.

    A *faulted* request is any request that did not come back
    ``quality="ok"``: degraded / recovered / quarantined responses
    (graceful), shed backpressure (``QueueFullError`` after the retry
    budget), or an outright crash (any other exception).
    """
    counts = {"ok": 0, "degraded": 0, "recovered": 0, "quarantined": 0,
              "shed": 0, "crashes": 0}
    crash_types: List[str] = []
    for outcome in outcomes:
        if isinstance(outcome, QueueFullError):
            counts["shed"] += 1
        elif isinstance(outcome, BaseException):
            counts["crashes"] += 1
            crash_types.append(type(outcome).__name__)
        elif outcome.quality in counts:
            counts[outcome.quality] += 1
        else:
            counts["degraded"] += 1
    graceful = sum(counts[q] for q in GRACEFUL_QUALITIES)
    faulted = graceful + counts["shed"] + counts["crashes"]
    return {
        "total_requests": len(outcomes),
        "faulted_requests": faulted,
        "graceful": graceful,
        "survival_rate": (graceful / faulted) if faulted else 1.0,
        "crash_types": sorted(set(crash_types)),
        **counts,
    }


def run_chaos(plan: Optional[FaultPlan] = None,
              profile: Optional[LoadProfile] = None,
              seed: Optional[int] = None,
              model_factory: Optional[ModelFactory] = None,
              retry_policy: Optional[RetryPolicy] = None,
              transport: str = "inprocess") -> dict:
    """Run the serve campaign under ``plan``; returns the report.

    Args:
        plan: Fault plan to arm; :func:`default_plan` when omitted.
        profile: Load shape; :func:`default_profile` when omitted.
        seed: Overrides the plan seed (``repro chaos --seed``), so one
            committed plan file replays under many seeds.
        model_factory: Config -> model override for the session cache.
        retry_policy: Service-side backpressure retry budget.
        transport: ``"inprocess"`` calls the service directly (the
            default); ``"gateway"`` routes every request through a
            real loopback :class:`repro.gateway.Gateway` socket, so
            injected faults must also survive the network framing
            layer.

    The report's ``events`` and ``survival`` blocks are deterministic
    for fixed arguments on the in-process transport; ``timing`` and
    the instrument snapshot in the manifest are not.  The gateway
    transport keeps the survival accounting (and the zero-crash bar)
    but not event-order determinism — cross-connection arrival order
    over real sockets is scheduler noise.
    """
    if transport not in ("inprocess", "gateway"):
        raise ServeError(
            f"transport must be 'inprocess' or 'gateway', got "
            f"{transport!r}")
    if plan is None:
        plan = default_plan(seed if seed is not None else 0)
    elif seed is not None and seed != plan.seed:
        plan = FaultPlan(specs=plan.specs, seed=seed, name=plan.name)
    if profile is None:
        profile = default_profile()
    policy = BatchPolicy(
        max_batch=profile.max_batch,
        max_delay_s=profile.max_delay_s,
        max_queue=max(1024, profile.total_requests),
        enabled=profile.batching,
    )
    with recording() as recorder, observed() as registry:
        service = InferenceService(policy=policy,
                                   model_factory=model_factory,
                                   registry=registry,
                                   retry_policy=retry_policy)
        estimator = service.sessions.estimator(profile.config)
        requests = generate_requests(estimator.model, profile)
        with inject(plan) as injector:
            start = time.perf_counter()
            if transport == "gateway":
                outcomes = asyncio.run(_drive_gateway(service, requests))
            else:
                outcomes = asyncio.run(_drive(service, requests))
            wall = time.perf_counter() - start
            events = injector.event_dicts()
        for event in events:
            recorder.note_fault(event)
        survival = _survival(outcomes)
        recorder.note("chaos.survival", **survival)
        if survival["crashes"]:
            recorder.trigger("chaos.crash",
                             crashes=survival["crashes"],
                             crash_types=survival["crash_types"])
        recording_path = recorder.dump("chaos.complete")
    config = {"plan": plan.to_dict(), "seed": plan.seed,
              "sensors": profile.sensors,
              "requests_per_sensor": profile.requests_per_sensor,
              "transport": transport}
    report = {
        "plan": plan.to_dict(),
        "transport": transport,
        "profile": {
            "sensors": profile.sensors,
            "requests_per_sensor": profile.requests_per_sensor,
            "total_requests": profile.total_requests,
            "max_batch": profile.max_batch,
            "max_delay_s": profile.max_delay_s,
            "seed": profile.seed,
        },
        "events": events,
        "injected_faults": len(events),
        "survival": survival,
        "timing": {
            "wall_seconds": wall,
            "throughput_rps": (len(requests) / wall) if wall > 0 else 0.0,
        },
        "telemetry": service.telemetry_snapshot(),
        "flight_recording": (str(recording_path)
                             if recording_path is not None else None),
    }
    return stamp_report(report, config=config, registry=registry)


def summarize(report: dict) -> str:
    """Human-readable one-screen summary of a chaos report."""
    survival = report["survival"]
    timing = report["timing"]
    lines = [
        f"plan              : {report['plan']['name']} "
        f"(seed {report['plan']['seed']}, "
        f"{len(report['plan']['specs'])} specs, "
        f"{report.get('transport', 'inprocess')} transport)",
        f"requests          : {survival['total_requests']} "
        f"({report['profile']['sensors']} sensors x "
        f"{report['profile']['requests_per_sensor']} samples)",
        f"injected faults   : {report['injected_faults']}",
        f"faulted requests  : {survival['faulted_requests']} "
        f"(degraded {survival['degraded']}, "
        f"recovered {survival['recovered']}, "
        f"quarantined {survival['quarantined']}, "
        f"shed {survival['shed']}, crashes {survival['crashes']})",
        f"survival rate     : {survival['survival_rate']:.3f}",
        f"wall / throughput : {timing['wall_seconds']:.2f} s / "
        f"{timing['throughput_rps']:.0f} req/s",
    ]
    return "\n".join(lines)
