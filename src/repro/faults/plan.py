"""Declarative, reproducible fault plans.

A chaos run is only useful if it can be replayed bit-for-bit: the same
plan and seed must inject the same faults at the same places, so a
survival regression can be bisected like any other bug.  The plan
layer therefore keeps *all* randomness counter-based: whether the
``k``-th visit to a site fires a fault is a pure function of
``(plan seed, spec, k)`` — a SHA-256-derived uniform draw — never of
wall-clock time, interleaving, or a stateful generator another site
might have advanced.  Two runs that visit a site the same number of
times in the same order observe the same fault sequence, and a worker
process can evaluate the same decision independently of the parent.

:class:`FaultSpec` describes one fault family at one injection site
(kind, probability or explicit schedule, burst duration, magnitude);
:class:`FaultPlan` composes specs under one seed and round-trips
through JSON, so a plan can be committed next to the benchmark it
gates.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import FaultError


def unit_draw(seed: int, *parts) -> float:
    """Deterministic uniform draw in [0, 1) from a seed and labels.

    The draw is a pure function of its arguments (SHA-256 of their
    canonical rendering), so decisions are independent of call order
    and identical across processes — the property the whole
    reproducible-chaos contract rests on.
    """
    token = ":".join([str(int(seed))] + [str(p) for p in parts])
    digest = hashlib.sha256(token.encode()).digest()
    (value,) = struct.unpack(">Q", digest[:8])
    return value / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """One fault family at one injection site.

    Attributes:
        site: Injection-site name (must be registered in
            :data:`repro.faults.inject.SITES`).
        kind: Fault flavour the site understands (e.g. ``"stall"``,
            ``"dropout"``, ``"corrupt"``).
        probability: Per-visit chance that a new burst starts at this
            site (ignored when ``schedule`` is given).
        schedule: Explicit visit counters that start a burst — the
            fully scripted alternative to ``probability``.
        magnitude: Site-interpreted severity (seconds for stalls,
            radians for phase jumps, noise multipliers for SNR
            collapse, ...).
        duration: Burst length: a started burst also fires on the next
            ``duration - 1`` visits.
        seed: Per-spec salt so two specs on one site draw
            independently.
    """

    site: str
    kind: str
    probability: float = 0.0
    schedule: Tuple[int, ...] = field(default_factory=tuple)
    magnitude: float = 1.0
    duration: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.site or not self.kind:
            raise FaultError("fault spec needs a site and a kind")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.duration < 1:
            raise FaultError(
                f"duration must be >= 1, got {self.duration}")
        schedule = tuple(int(c) for c in self.schedule)
        if any(c < 0 for c in schedule):
            raise FaultError(f"schedule counters must be >= 0, "
                             f"got {schedule}")
        object.__setattr__(self, "schedule", schedule)
        object.__setattr__(self, "probability", float(self.probability))
        object.__setattr__(self, "magnitude", float(self.magnitude))
        object.__setattr__(self, "duration", int(self.duration))
        object.__setattr__(self, "seed", int(self.seed))

    def _burst_starts(self, plan_seed: int, counter: int) -> bool:
        """Whether a new burst starts at visit ``counter``."""
        if self.schedule:
            return counter in self.schedule
        if self.probability <= 0.0:
            return False
        return unit_draw(plan_seed, self.site, self.kind, self.seed,
                         counter) < self.probability

    def fires(self, plan_seed: int, counter: int) -> bool:
        """Whether this spec fires on visit ``counter`` (burst-aware).

        A burst started at counter ``b`` covers visits
        ``b .. b + duration - 1``; the check scans the ``duration``
        most recent possible starts, so it stays stateless and
        order-independent.
        """
        if counter < 0:
            return False
        return any(self._burst_starts(plan_seed, counter - back)
                   for back in range(self.duration)
                   if counter - back >= 0)

    def to_dict(self) -> dict:
        """JSON-ready dict (plain python scalars only)."""
        return {
            "site": str(self.site),
            "kind": str(self.kind),
            "probability": float(self.probability),
            "schedule": [int(c) for c in self.schedule],
            "magnitude": float(self.magnitude),
            "duration": int(self.duration),
            "seed": int(self.seed),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(payload, dict):
            raise FaultError(
                f"fault spec payload must be a dict, got "
                f"{type(payload).__name__}")
        try:
            return cls(
                site=str(payload["site"]),
                kind=str(payload["kind"]),
                probability=float(payload.get("probability", 0.0)),
                schedule=tuple(int(c)
                               for c in payload.get("schedule", ())),
                magnitude=float(payload.get("magnitude", 1.0)),
                duration=int(payload.get("duration", 1)),
                seed=int(payload.get("seed", 0)),
            )
        except FaultError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault spec: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded composition of fault specs.

    Attributes:
        specs: The fault families to inject.
        seed: Plan-wide seed every counter-based draw derives from.
        name: Human-readable label carried into reports.
    """

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0
    name: str = "unnamed"

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        object.__setattr__(self, "seed", int(self.seed))
        if any(not isinstance(spec, FaultSpec) for spec in self.specs):
            raise FaultError("plan specs must be FaultSpec instances")

    @property
    def sites(self) -> Tuple[str, ...]:
        """Distinct sites the plan targets, sorted."""
        return tuple(sorted({spec.site for spec in self.specs}))

    def specs_for(self, site: str) -> Tuple[FaultSpec, ...]:
        """The specs targeting one site, in plan order."""
        return tuple(spec for spec in self.specs if spec.site == site)

    def to_dict(self) -> dict:
        """JSON-ready dict (plain python scalars only)."""
        return {
            "name": str(self.name),
            "seed": int(self.seed),
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(payload, dict):
            raise FaultError(
                f"fault plan payload must be a dict, got "
                f"{type(payload).__name__}")
        try:
            specs = payload.get("specs", [])
            return cls(
                specs=tuple(FaultSpec.from_dict(spec) for spec in specs),
                seed=int(payload.get("seed", 0)),
                name=str(payload.get("name", "unnamed")),
            )
        except FaultError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault plan: {exc}") from exc

    def to_json(self) -> str:
        """Compact JSON encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path) -> None:
        """Write the plan as pretty JSON to ``path``."""
        from pathlib import Path

        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan saved by :meth:`save`."""
        from pathlib import Path

        return cls.from_json(Path(path).read_text())
