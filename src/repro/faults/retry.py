"""Bounded retries, exponential backoff with jitter, circuit breaking.

The degradation vocabulary the consumers share: transient failures
(queue backpressure, injected stalls, flaky workers) are retried under
a bounded budget with exponentially growing, jittered delays; repeated
*systemic* failures trip a :class:`CircuitBreaker` so the caller stops
hammering a broken dependency and degrades to its fallback path
instead (the micro-batch scheduler falls back to scalar inversion).

Jitter is seeded: two identical runs back off identically, keeping
chaos campaigns bit-reproducible.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterator, Optional, Tuple, Type, TypeVar

from repro.errors import ConfigurationError
from repro.obs.recorder import flight_recorder
from repro.obs.registry import active

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry knobs.

    Attributes:
        attempts: Total tries (the first call plus ``attempts - 1``
            retries); 1 disables retrying.
        base_delay_s: Delay before the first retry [s].
        multiplier: Exponential growth factor per retry.
        max_delay_s: Ceiling on any single delay [s].
        jitter: Fractional uniform jitter applied to each delay
            (0.1 -> each delay is scaled by [0.9, 1.1)).
        seed: Seeds the jitter stream so backoff is reproducible.
    """

    attempts: int = 3
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.1
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigurationError(
                f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_s < 0.0 or self.max_delay_s < 0.0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}")

    def delays(self) -> Iterator[float]:
        """The jittered backoff delays, one per retry."""
        rng = random.Random(self.seed)
        delay = self.base_delay_s
        for _ in range(self.attempts - 1):
            jittered = delay
            if self.jitter > 0.0:
                jittered *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield min(jittered, self.max_delay_s)
            delay = min(delay * self.multiplier, self.max_delay_s)


def _observe_retry(name: str) -> None:
    obs = active()
    if obs is not None:
        obs.counter(f"fault.retries.{name}").increment()


async def retry_async(
    operation: Callable[[], Awaitable[T]],
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    name: str = "operation",
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Run ``operation`` under the retry budget (async).

    Re-raises the last exception once the budget is exhausted, so the
    caller sees the same type it would without retrying — retrying
    never changes the failure contract, only how hard it is to hit.

    Args:
        operation: Zero-argument coroutine factory to (re-)invoke.
        policy: Budget and backoff; defaults to :class:`RetryPolicy`.
        retry_on: Exception types that are retried; anything else
            propagates immediately.
        name: Label for the ``fault.retries.<name>`` counter.
        on_retry: Hook called with ``(attempt, exception)`` before
            each backoff sleep.
    """
    policy = policy if policy is not None else RetryPolicy()
    delays = policy.delays()
    for attempt in range(1, policy.attempts + 1):
        try:
            return await operation()
        except retry_on as exc:
            if attempt >= policy.attempts:
                raise
            _observe_retry(name)
            if on_retry is not None:
                on_retry(attempt, exc)
            await asyncio.sleep(next(delays))
    raise AssertionError("unreachable")  # pragma: no cover


def retry_sync(
    operation: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    name: str = "operation",
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Blocking variant of :func:`retry_async` (same contract)."""
    policy = policy if policy is not None else RetryPolicy()
    delays = policy.delays()
    for attempt in range(1, policy.attempts + 1):
        try:
            return operation()
        except retry_on as exc:
            if attempt >= policy.attempts:
                raise
            _observe_retry(name)
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(next(delays))
    raise AssertionError("unreachable")  # pragma: no cover


class CircuitBreaker:
    """Classic three-state breaker for a repeatedly failing dependency.

    * **closed** — normal operation; failures are counted.
    * **open** — ``failure_threshold`` consecutive failures seen;
      :meth:`allow` answers ``False`` until ``recovery_timeout_s`` has
      elapsed, so the caller takes its degraded path without paying
      for the broken one.
    * **half-open** — the cooldown expired; one probe call is allowed.
      Success closes the breaker, failure re-opens it.

    Args:
        failure_threshold: Consecutive failures that open the breaker.
        recovery_timeout_s: Cooldown before a half-open probe [s].
        name: Label for the ``fault.breaker.*`` counters.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(self, failure_threshold: int = 5,
                 recovery_timeout_s: float = 1.0,
                 name: str = "breaker",
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if recovery_timeout_s < 0.0:
            raise ConfigurationError(
                f"recovery_timeout_s must be >= 0, got "
                f"{recovery_timeout_s}")
        self.failure_threshold = int(failure_threshold)
        self.recovery_timeout_s = float(recovery_timeout_s)
        self.name = name
        self._clock = clock
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (time-aware)."""
        if (self._state == "open"
                and self._clock() - self._opened_at
                >= self.recovery_timeout_s):
            return "half_open"
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures seen since the last success."""
        return self._failures

    def allow(self) -> bool:
        """Whether the protected call should be attempted now.

        In the open state this is the fast-fail answer; in half-open
        it admits exactly one probe (subsequent calls stay blocked
        until that probe reports back).
        """
        state = self.state
        if state == "closed":
            return True
        if state == "half_open":
            # Admit one probe: re-arm the cooldown so concurrent
            # callers keep fast-failing while the probe is in flight.
            self._opened_at = self._clock()
            obs = active()
            if obs is not None:
                obs.counter(f"fault.breaker.{self.name}.probes").increment()
            return True
        obs = active()
        if obs is not None:
            obs.counter(
                f"fault.breaker.{self.name}.short_circuits").increment()
        return False

    def record_success(self) -> None:
        """Protected call succeeded: close and reset."""
        if self._state != "closed":
            obs = active()
            if obs is not None:
                obs.counter(f"fault.breaker.{self.name}.closed").increment()
        self._failures = 0
        self._state = "closed"

    def record_failure(self) -> None:
        """Protected call failed: count, and open at the threshold."""
        self._failures += 1
        if self._failures >= self.failure_threshold:
            if self._state != "open":
                obs = active()
                if obs is not None:
                    obs.counter(
                        f"fault.breaker.{self.name}.opened").increment()
                flight_recorder().trigger(
                    f"breaker.{self.name}.open",
                    failures=self._failures)
            self._state = "open"
            self._opened_at = self._clock()
