"""The injector registry and the per-process armed injector.

Injection sites are named seams at existing layer boundaries; each
site advertises the fault kinds its host code knows how to apply.
Arming a :class:`~repro.faults.plan.FaultPlan` (via the
:func:`inject` context manager, also usable as a decorator) installs a
:class:`FaultInjector`; instrumented code asks :func:`armed` on every
pass through a site and gets ``None`` in the common case — the same
one-call-and-a-branch gate as :func:`repro.obs.registry.active`, so an
unarmed fault layer is a strict no-op: no instruments are created, no
RNG is touched, and results are bit-identical to a build without the
hooks.

Worker processes forked mid-plan inherit the armed injector; because
every decision is a pure function of ``(plan seed, spec, counter)``
(see :mod:`repro.faults.plan`), a worker evaluates the same decisions
the parent would, without any cross-process coordination.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import FaultError
from repro.faults.plan import FaultPlan, FaultSpec, unit_draw
from repro.obs.registry import active

logger = logging.getLogger(__name__)

#: Injection sites and the fault kinds their host code applies.
SITES: Dict[str, tuple] = {
    # Frame-level capture in the reader pipeline: whole-frame signal
    # dropout bursts, capture-clock desync jumps, phase-jump glitches.
    "reader.capture": ("dropout", "desync", "phase_jump"),
    # Channel synthesis in the sounder: SNR collapse (noise floor
    # multiplied up) and narrowband interference bursts.  Batched
    # sounders (repro.reader.batch) draw this site once per capture in
    # capture order — the same visit sequence as a sequential oracle
    # run — so chaos replay stays bit-deterministic; the reader's
    # harmonic fast path is disabled while any plan is armed for the
    # same reason.
    "channel.snr": ("collapse", "interference"),
    # Tag clock non-idealities: extra oscillator drift and duty-cycle
    # timing jitter on the switch sampling instants.  Same per-capture
    # visit ordering contract as channel.snr in the batched path.
    "sensor.clock": ("drift", "duty_jitter"),
    # Artifact-cache disk tier: corrupt the raw bytes of a read so the
    # integrity check must catch it and degrade to a recompute.
    "cache.store": ("corrupt",),
    # Micro-batch scheduler admission: queue stalls (latency), slow
    # consumers, and synthetic backpressure rejections.
    "serve.scheduler": ("stall", "slow_consumer", "reject"),
    # Campaign worker processes: hard crashes (SIGKILL) that must be
    # survived by the executor's respawn path.
    "experiments.parallel": ("crash",),
}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence.

    Attributes:
        site: Where it fired.
        kind: Which fault family.
        counter: The site visit index it fired on.
        magnitude: The spec's severity knob.
        unit: A per-event uniform draw in [0, 1) the applying site may
            use for secondary choices (which frame, which byte, ...).
    """

    site: str
    kind: str
    counter: int
    magnitude: float
    unit: float

    def rng(self) -> np.random.Generator:
        """A generator seeded from this event (deterministic per event).

        Sites that need several random choices to apply one fault
        (e.g. which frames of a capture to drop) derive them from
        here, so the perturbation replays exactly.
        """
        return np.random.default_rng(int(self.unit * (1 << 63)))

    def to_dict(self) -> dict:
        """JSON-ready dict (plain python scalars only)."""
        return {
            "site": str(self.site),
            "kind": str(self.kind),
            "counter": int(self.counter),
            "magnitude": float(self.magnitude),
        }


class FaultInjector:
    """Evaluates an armed plan at every site visit and keeps the log.

    Args:
        plan: The armed fault plan (validated against :data:`SITES`).

    The injector owns one visit counter per site; :meth:`draw`
    advances it and returns the fired :class:`FaultEvent` (first
    matching spec wins) or ``None``.  Every fired event lands in
    :attr:`events` and, when observation is on, in the shared registry
    (``fault.injected`` plus ``fault.injected.<site>``).
    """

    def __init__(self, plan: FaultPlan):
        validate_plan(plan)
        self.plan = plan
        self.events: List[FaultEvent] = []
        self._counters: Dict[str, int] = {}
        self._specs: Dict[str, tuple] = {
            site: plan.specs_for(site) for site in plan.sites
        }

    def counter(self, site: str) -> int:
        """How many times ``site`` has been visited so far."""
        return self._counters.get(site, 0)

    def draw(self, site: str) -> Optional[FaultEvent]:
        """Evaluate one visit to ``site``; returns the fired event."""
        counter = self._counters.get(site, 0)
        self._counters[site] = counter + 1
        return self.draw_at(site, counter)

    def draw_at(self, site: str, counter: int) -> Optional[FaultEvent]:
        """Evaluate ``site`` at an explicit visit counter.

        Used where the natural counter lives outside the injector —
        campaign trials are keyed on their trial index so the decision
        is identical in every worker process and on every respawn
        attempt.  Does not advance the internal counter.
        """
        specs = self._specs.get(site)
        if not specs:
            return None
        for spec in specs:
            if spec.fires(self.plan.seed, counter):
                event = self._event(spec, counter)
                self._record(event)
                return event
        return None

    def _event(self, spec: FaultSpec, counter: int) -> FaultEvent:
        unit = unit_draw(self.plan.seed, spec.site, spec.kind, spec.seed,
                         counter, "event")
        return FaultEvent(site=spec.site, kind=spec.kind, counter=counter,
                          magnitude=spec.magnitude, unit=unit)

    def _record(self, event: FaultEvent) -> None:
        self.events.append(event)
        logger.debug("injected fault %s/%s at visit %d (magnitude %g)",
                     event.site, event.kind, event.counter,
                     event.magnitude)
        obs = active()
        if obs is not None:
            obs.counter("fault.injected").increment()
            obs.counter(f"fault.injected.{event.site}").increment()

    def event_dicts(self) -> List[dict]:
        """The injected-fault log as JSON-ready dicts, in fire order."""
        return [event.to_dict() for event in self.events]


def validate_plan(plan: FaultPlan) -> None:
    """Check every spec against the site registry.

    Raises:
        FaultError: A spec names an unknown site or a kind its site
            does not apply.
    """
    for spec in plan.specs:
        kinds = SITES.get(spec.site)
        if kinds is None:
            raise FaultError(
                f"unknown fault site {spec.site!r}; known sites: "
                f"{sorted(SITES)}")
        if spec.kind not in kinds:
            raise FaultError(
                f"site {spec.site!r} does not apply kind "
                f"{spec.kind!r}; it applies {sorted(kinds)}")


_injector: Optional[FaultInjector] = None


def armed() -> Optional[FaultInjector]:
    """The armed injector, or ``None`` (the hot-path gate).

    Instrumented sites call this on every pass::

        inj = armed()
        if inj is not None:
            fault = inj.draw("serve.scheduler")
            ...
    """
    return _injector


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Arm ``plan`` for the duration of a ``with`` block.

    Also usable as a decorator (``@inject(plan)``).  Nesting is
    rejected — two simultaneous plans would make the injected
    sequence depend on arming order, breaking reproducibility.

    Raises:
        FaultError: The plan is invalid or another plan is armed.
    """
    global _injector
    if _injector is not None:
        raise FaultError("a fault plan is already armed; disarm it "
                         "before injecting another")
    injector = FaultInjector(plan)
    _injector = injector
    try:
        yield injector
    finally:
        _injector = None


def disarm() -> Optional[FaultInjector]:
    """Force-disarm (crash-recovery escape hatch); returns the injector."""
    global _injector
    previous, _injector = _injector, None
    return previous
