"""``repro.obs`` — repo-wide observability: tracing, metrics, profiling.

One dependency-free layer shared by every subsystem.  The instruments
(:class:`Counter`, :class:`Gauge`, :class:`Histogram`, trace
:class:`Span`) were promoted from ``repro.serve.telemetry`` so the
reader, estimator, tracker, campaign executor and inference service
all speak the same vocabulary and can share a single
:class:`Registry`.

Instrumentation is **off by default** and costs one ``active()`` call
per instrumented operation when disabled.  Turn it on with
:func:`enable` / the :func:`observed` context manager; export with
:func:`to_prometheus` or a JSON snapshot; stamp benchmark artifacts
with :func:`stamp_report`; find hotspots with :class:`Profiler`.

See DESIGN.md ("Observability") and README.md ("Observability &
benchmarking") for the data flow and a quickstart.
"""

from repro.obs.exporters import (
    registry_from_snapshot,
    to_prometheus,
    write_snapshot,
)
from repro.obs.instruments import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    MemorySink,
    NullSink,
    Span,
    TelemetrySink,
)
from repro.obs.logconfig import configure_logging, get_logger
from repro.obs.manifest import (
    SCHEMA_VERSION,
    config_hash,
    git_sha,
    run_manifest,
    stamp_report,
)
from repro.obs.profiler import Profiler
from repro.obs.recorder import (
    FlightRecorder,
    flight_recorder,
    recording,
    set_flight_recorder,
)
from repro.obs.registry import (
    Registry,
    active,
    disable,
    enable,
    enable_from_env,
    get_registry,
    is_enabled,
    maybe_span,
    observed,
    set_registry,
)
from repro.obs.slo import (
    Slo,
    SloMonitor,
    default_slos,
    evaluate_report,
    evaluate_snapshot,
    report_slos,
)
from repro.obs.trace import (
    TraceContext,
    current_context,
    current_traceparent,
    encode_traceparent,
    new_trace_id,
    parse_traceparent,
    trace_sampled,
    use_context,
)

__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LATENCY_BUCKETS",
    "MemorySink",
    "NullSink",
    "Profiler",
    "Registry",
    "SCHEMA_VERSION",
    "Slo",
    "SloMonitor",
    "Span",
    "TelemetrySink",
    "TraceContext",
    "active",
    "config_hash",
    "configure_logging",
    "current_context",
    "current_traceparent",
    "default_slos",
    "disable",
    "enable",
    "enable_from_env",
    "encode_traceparent",
    "evaluate_report",
    "evaluate_snapshot",
    "flight_recorder",
    "get_logger",
    "git_sha",
    "is_enabled",
    "maybe_span",
    "new_trace_id",
    "observed",
    "parse_traceparent",
    "recording",
    "registry_from_snapshot",
    "report_slos",
    "run_manifest",
    "set_flight_recorder",
    "set_registry",
    "stamp_report",
    "to_prometheus",
    "trace_sampled",
    "use_context",
    "write_snapshot",
]
