"""``repro.obs`` — repo-wide observability: tracing, metrics, profiling.

One dependency-free layer shared by every subsystem.  The instruments
(:class:`Counter`, :class:`Gauge`, :class:`Histogram`, trace
:class:`Span`) were promoted from ``repro.serve.telemetry`` so the
reader, estimator, tracker, campaign executor and inference service
all speak the same vocabulary and can share a single
:class:`Registry`.

Instrumentation is **off by default** and costs one ``active()`` call
per instrumented operation when disabled.  Turn it on with
:func:`enable` / the :func:`observed` context manager; export with
:func:`to_prometheus` or a JSON snapshot; stamp benchmark artifacts
with :func:`stamp_report`; find hotspots with :class:`Profiler`.

See DESIGN.md ("Observability") and README.md ("Observability &
benchmarking") for the data flow and a quickstart.
"""

from repro.obs.exporters import (
    registry_from_snapshot,
    to_prometheus,
    write_snapshot,
)
from repro.obs.instruments import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MemorySink,
    NullSink,
    Span,
    TelemetrySink,
)
from repro.obs.logconfig import configure_logging, get_logger
from repro.obs.manifest import (
    SCHEMA_VERSION,
    config_hash,
    git_sha,
    run_manifest,
    stamp_report,
)
from repro.obs.profiler import Profiler
from repro.obs.registry import (
    Registry,
    active,
    disable,
    enable,
    enable_from_env,
    get_registry,
    is_enabled,
    maybe_span,
    observed,
    set_registry,
)

__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MemorySink",
    "NullSink",
    "Profiler",
    "Registry",
    "SCHEMA_VERSION",
    "Span",
    "TelemetrySink",
    "active",
    "config_hash",
    "configure_logging",
    "disable",
    "enable",
    "enable_from_env",
    "get_logger",
    "git_sha",
    "is_enabled",
    "maybe_span",
    "observed",
    "registry_from_snapshot",
    "run_manifest",
    "set_registry",
    "stamp_report",
    "to_prometheus",
    "write_snapshot",
]
