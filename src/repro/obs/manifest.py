"""Run manifests: stamp benchmark artifacts with provenance.

Every ``BENCH_*.json`` the repo emits should answer three questions
months later: *which code* produced it (git SHA), *which
configuration* (a stable hash of the knob dict), and *what the system
observed while producing it* (the instrument registry snapshot).
:func:`stamp_report` attaches all three plus a ``schema_version`` so
downstream gates like ``benchmarks/compare_bench.py`` can evolve the
format without guessing.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

from repro.obs.registry import Registry

#: Version of the stamped benchmark-report format.  Bump when the
#: report or manifest layout changes incompatibly.
SCHEMA_VERSION = 2


def git_sha(root: Optional[Path] = None) -> str:
    """The repo's current commit SHA, or ``"unknown"`` outside git."""
    if root is None:
        root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def config_hash(config: Optional[dict]) -> str:
    """Short stable hash of a configuration dict (``"none"`` if empty).

    Canonical JSON (sorted keys, ``str()`` fallback for exotic values)
    keeps the hash independent of dict ordering and process.
    """
    if not config:
        return "none"
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def run_manifest(config: Optional[dict] = None,
                 registry: Optional[Registry] = None) -> dict:
    """Provenance block for one benchmark/experiment run."""
    return {
        "git_sha": git_sha(),
        "config_hash": config_hash(config),
        "created_unix": time.time(),
        "python_version": sys.version.split()[0],
        "platform": platform.platform(),
        "instruments": registry.snapshot() if registry is not None
        else None,
    }


def stamp_report(report: dict, config: Optional[dict] = None,
                 registry: Optional[Registry] = None) -> dict:
    """Attach ``schema_version`` + ``manifest`` to a report, in place.

    Returns the same dict for chaining; existing keys are preserved so
    legacy consumers keep working.
    """
    report["schema_version"] = SCHEMA_VERSION
    report["manifest"] = run_manifest(config=config, registry=registry)
    return report
