"""The ``repro`` logger hierarchy and its one-call configuration.

Library modules log through ``logging.getLogger(__name__)``, which
lands everything under the ``repro`` root logger — callers control
the whole reproduction's verbosity with one dial.  The library itself
never installs handlers (standard library etiquette); the CLI calls
:func:`configure_logging` with the ``--log-level`` flag, and embedding
applications configure logging however they already do.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

#: Root of the library's logger hierarchy.
ROOT_LOGGER = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (the root when unnamed)."""
    if name is None or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(f"{ROOT_LOGGER}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(level: Union[int, str] = "warning",
                      stream=None) -> logging.Logger:
    """Point the ``repro`` hierarchy at one stderr handler.

    Idempotent: repeated calls reconfigure the same handler instead of
    stacking duplicates.  Returns the root ``repro`` logger.

    Args:
        level: Name (``"debug"`` .. ``"critical"``) or numeric level.
        stream: Handler target; default ``sys.stderr`` so CLI stdout
            stays machine-parseable.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    logger.propagate = False
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    return logger
