"""Declarative SLOs over registry snapshots, with burn-rate alerts.

An :class:`Slo` names an objective in one of three shapes:

* ``availability`` — 1 - bad/total over named counters (e.g. gateway
  operations that did not hit the internal-error boundary).
* ``latency`` — the fraction of a histogram's observations at or
  under ``threshold_s`` (so ``target=0.99`` with ``threshold_s=0.3``
  reads "p99 <= 300 ms").  Evaluated from bucket counts, which is why
  thresholds should sit on a bucket bound.
* ``report`` — a bound on a dotted path into a benchmark report
  (e.g. ``parity.max_force_delta_n <= 0``), for objectives that are
  properties of an artifact rather than of live counters.

:func:`evaluate_snapshot` / :func:`evaluate_report` are pure
functions returning one status dict per objective (compliance,
target, error-budget remaining, ok flag).  :class:`SloMonitor` adds
time: it keeps a bounded deque of (timestamp, snapshot) samples and
computes **multi-window burn rates** — the rate at which the error
budget is being consumed over a short and a long trailing window.  An
objective *alerts* only when every window with data burns above its
factor, the standard fast-burn/slow-burn pairing that ignores both
ancient history and single-sample blips.

Surfaces: ``GET /healthz`` detail on the gateway, the ``repro slo``
CLI (non-zero exit on violation), and the ``--slo`` gate in
``benchmarks/compare_bench.py``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Default burn-rate windows: (window seconds, max burn-rate factor).
#: Factors follow the SRE-workbook pairing for a ~99.9% objective:
#: a fast burn (14.4x budget velocity over 5 minutes) and a slow
#: burn (6x over an hour).
DEFAULT_WINDOWS: Tuple[Tuple[float, float], ...] = (
    (300.0, 14.4),
    (3600.0, 6.0),
)


@dataclass(frozen=True)
class Slo:
    """One declarative objective.

    Attributes:
        name: Stable identifier (shows up in /healthz and CLI output).
        kind: ``"availability"`` | ``"latency"`` | ``"report"``.
        target: Compliance target in [0, 1] for availability/latency
            (the objective holds while compliance >= target); unused
            for ``report`` bounds.
        description: One-line human explanation.
        total / bad: Counter names summed for availability.
        histogram / threshold_s: Latency source and bound.
        path: Dotted path into a report dict (``report`` kind).
        upper_bound / lower_bound: Report-value bounds (either or
            both; a violated bound fails the objective).
    """

    name: str
    kind: str
    target: float = 0.999
    description: str = ""
    total: Tuple[str, ...] = ()
    bad: Tuple[str, ...] = ()
    histogram: str = ""
    threshold_s: float = 0.3
    path: str = ""
    upper_bound: Optional[float] = None
    lower_bound: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency", "report"):
            raise ObservabilityError(
                f"SLO {self.name}: unknown kind {self.kind!r}")
        if self.kind != "report" and not 0.0 < self.target < 1.0:
            raise ObservabilityError(
                f"SLO {self.name}: target must be in (0, 1), got "
                f"{self.target}")
        if self.kind == "report" and not self.path:
            raise ObservabilityError(
                f"SLO {self.name}: report objectives need a path")


def _counter_sum(snapshot: dict, names: Sequence[str]) -> float:
    counters = snapshot.get("counters") or {}
    return float(sum(counters.get(name, 0) for name in names))


def _bad_total(slo: Slo, snapshot: dict) -> Tuple[float, float]:
    """(bad events, total events) for a counter-backed objective."""
    if slo.kind == "availability":
        return (_counter_sum(snapshot, slo.bad),
                _counter_sum(snapshot, slo.total))
    histogram = (snapshot.get("histograms") or {}).get(slo.histogram)
    if not histogram:
        return 0.0, 0.0
    total = float(histogram.get("count", 0))
    good = float(sum(
        count for bound, count in zip(histogram.get("bounds", ()),
                                      histogram.get("counts", ()))
        if bound <= slo.threshold_s))
    return total - good, total


def _lookup_path(report: dict, path: str):
    node = report
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def evaluate_slo(slo: Slo, snapshot: dict) -> dict:
    """Point-in-time status of one counter/histogram objective.

    An objective with no traffic yet is compliant by definition
    (``no_data: True``) — empty services do not page.
    """
    bad, total = _bad_total(slo, snapshot)
    status = {
        "name": slo.name,
        "kind": slo.kind,
        "description": slo.description,
        "target": slo.target,
        "events": total,
        "bad_events": bad,
    }
    if total <= 0.0:
        status.update(compliance=None, ok=True, no_data=True,
                      budget_remaining=1.0)
        return status
    compliance = 1.0 - bad / total
    budget = 1.0 - slo.target
    consumed = (1.0 - compliance) / budget if budget > 0 else 0.0
    status.update(
        compliance=compliance,
        ok=compliance >= slo.target,
        no_data=False,
        budget_remaining=max(0.0, 1.0 - consumed),
    )
    return status


def evaluate_report_slo(slo: Slo, report: dict) -> dict:
    """Status of one ``report``-kind objective against a report dict."""
    value = _lookup_path(report, slo.path)
    status = {
        "name": slo.name,
        "kind": slo.kind,
        "description": slo.description,
        "path": slo.path,
        "value": value,
        "upper_bound": slo.upper_bound,
        "lower_bound": slo.lower_bound,
    }
    if value is None or isinstance(value, bool) \
            or not isinstance(value, (int, float)):
        status.update(ok=bool(value) if isinstance(value, bool)
                      else False,
                      no_data=value is None)
        return status
    ok = True
    if slo.upper_bound is not None and value > slo.upper_bound:
        ok = False
    if slo.lower_bound is not None and value < slo.lower_bound:
        ok = False
    status.update(ok=ok, no_data=False)
    return status


def evaluate_snapshot(slos: Sequence[Slo], snapshot: dict
                      ) -> List[dict]:
    """Statuses of every counter/histogram objective in ``slos``."""
    return [evaluate_slo(slo, snapshot) for slo in slos
            if slo.kind != "report"]


def evaluate_report(slos: Sequence[Slo], report: dict) -> List[dict]:
    """Statuses of every objective against one benchmark report.

    Counter/histogram objectives read the report's instrument
    snapshot (the ``telemetry`` block, else ``manifest.instruments``);
    ``report`` objectives read the report itself.
    """
    snapshot = report.get("telemetry") \
        or (report.get("manifest") or {}).get("instruments") or {}
    statuses = []
    for slo in slos:
        if slo.kind == "report":
            statuses.append(evaluate_report_slo(slo, report))
        else:
            statuses.append(evaluate_slo(slo, snapshot))
    return statuses


class SloMonitor:
    """Burn-rate evaluation over a rolling window of snapshots.

    Feed it registry snapshots (:meth:`observe`) at whatever cadence
    the caller polls — the gateway does so on every ``/healthz`` hit —
    and it answers point-in-time compliance plus per-window burn
    rates computed from counter *deltas* between the oldest in-window
    sample and the newest.

    Args:
        slos: Objectives to track (``report`` kinds are ignored here).
        windows: (seconds, max burn factor) pairs; alerting requires
            every window with data to burn above its factor.
        clock: Monotonic time source (injectable for tests).
        max_samples: Bound on retained snapshots.
    """

    def __init__(self, slos: Sequence[Slo],
                 windows: Sequence[Tuple[float, float]] = DEFAULT_WINDOWS,
                 clock: Callable[[], float] = time.monotonic,
                 max_samples: int = 512):
        self.slos = tuple(slo for slo in slos if slo.kind != "report")
        self.windows = tuple((float(seconds), float(factor))
                             for seconds, factor in windows)
        self._clock = clock
        self._samples: "deque[Tuple[float, dict]]" = deque(
            maxlen=max_samples)

    def observe(self, snapshot: dict) -> List[dict]:
        """Record one snapshot sample and return fresh statuses."""
        self._samples.append((self._clock(), snapshot))
        return self.evaluate()

    def _window_burn(self, slo: Slo, window_s: float,
                     max_factor: float) -> dict:
        now, newest = self._samples[-1]
        oldest = None
        for stamp, snapshot in self._samples:
            if now - stamp <= window_s:
                oldest = (stamp, snapshot)
                break
        burn = {"window_s": window_s, "max_burn_rate": max_factor,
                "burn_rate": None, "alerting": False}
        if oldest is None or oldest[0] == now:
            return burn
        bad_new, total_new = _bad_total(slo, newest)
        bad_old, total_old = _bad_total(slo, oldest[1])
        delta_total = total_new - total_old
        if delta_total <= 0.0:
            return burn
        error_rate = max(0.0, bad_new - bad_old) / delta_total
        budget = 1.0 - slo.target
        rate = error_rate / budget if budget > 0 else 0.0
        burn.update(burn_rate=rate, alerting=rate > max_factor)
        return burn

    def evaluate(self) -> List[dict]:
        """Point-in-time statuses with per-window burn annotations."""
        if not self._samples:
            return [dict(evaluate_slo(slo, {}), burn=[],
                         alerting=False) for slo in self.slos]
        _, newest = self._samples[-1]
        statuses = []
        for slo in self.slos:
            status = evaluate_slo(slo, newest)
            burns = [self._window_burn(slo, seconds, factor)
                     for seconds, factor in self.windows]
            measured = [b for b in burns if b["burn_rate"] is not None]
            status["burn"] = burns
            status["alerting"] = bool(measured) and all(
                b["alerting"] for b in measured)
            statuses.append(status)
        return statuses


def default_slos() -> Tuple[Slo, ...]:
    """The built-in objectives for a live gateway (``/healthz``)."""
    return (
        Slo(name="gateway-availability", kind="availability",
            target=0.999,
            total=("gateway.http_requests", "gateway.ws_messages"),
            bad=("gateway.internal_errors",),
            description="gateway operations that never hit the "
                        "internal-error boundary"),
        Slo(name="serve-latency", kind="latency", target=0.99,
            histogram="serve.latency_seconds", threshold_s=0.3,
            description="end-to-end estimates under 300 ms (p99)"),
    )


def report_slos() -> Tuple[Slo, ...]:
    """Objectives for a serve benchmark report (``repro slo``)."""
    return (
        Slo(name="serve-availability", kind="availability",
            target=0.999,
            total=("serve.requests",), bad=("serve.rejected",),
            description="admitted requests that were not shed as "
                        "backpressure"),
        Slo(name="serve-latency", kind="latency", target=0.99,
            histogram="serve.latency_seconds", threshold_s=0.3,
            description="end-to-end estimates under 300 ms (p99)"),
        Slo(name="parity-force", kind="report",
            path="parity.max_force_delta_n", upper_bound=0.0,
            description="batched vs scalar force estimates are "
                        "bit-identical"),
        Slo(name="parity-location", kind="report",
            path="parity.max_location_delta_m", upper_bound=0.0,
            description="batched vs scalar locations are "
                        "bit-identical"),
        Slo(name="batching-speedup", kind="report",
            path="speedup_vs_serial", lower_bound=1.0,
            description="micro-batching beats the serial baseline"),
    )


def render_statuses(statuses: Sequence[dict]) -> str:
    """One-screen table of SLO statuses (the ``repro slo`` output)."""
    lines = [f"{'objective':<22} {'kind':<13} {'status':<6} "
             f"{'compliance':>10} {'target':>8}  detail"]
    for status in statuses:
        verdict = "ok" if status["ok"] else "FAIL"
        if status.get("kind") == "report":
            compliance = ("-" if status.get("value") is None
                          else f"{status['value']:.6g}")
            bounds = []
            if status.get("upper_bound") is not None:
                bounds.append(f"<= {status['upper_bound']:g}")
            if status.get("lower_bound") is not None:
                bounds.append(f">= {status['lower_bound']:g}")
            target = " ".join(bounds) or "-"
            detail = status.get("path", "")
        else:
            compliance = ("no data" if status.get("no_data")
                          else f"{status['compliance']:.5f}")
            target = f"{status['target']:.3f}"
            detail = (f"budget {status['budget_remaining']:.0%} left"
                      if not status.get("no_data") else "")
            if status.get("alerting"):
                detail += " [BURN ALERT]"
        lines.append(f"{status['name']:<22} {status['kind']:<13} "
                     f"{verdict:<6} {compliance:>10} {target:>8}  "
                     f"{detail}")
    return "\n".join(lines)
