"""Opt-in lightweight profiler: hotspot timers with aggregate report.

Where the registry's spans answer "what happened during this run",
the :class:`Profiler` answers "where did the time go" — wrap candidate
hotspots in ``with profiler.section("stage"):`` and read
:meth:`Profiler.report` for a per-stage table of calls, total, mean,
max, and share of all profiled time.  A disabled profiler hands out a
shared no-op section, so instrumented code never needs to branch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict


@dataclass
class StageStats:
    """Aggregate timings for one profiled stage."""

    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean per-call time (0 when never called)."""
        return self.total_s / self.calls if self.calls else 0.0


class _Section:
    """One timed entry into a stage (context manager)."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler._record(self._name,
                               time.perf_counter() - self._start)


class _NullSection:
    """Shared no-op for a disabled profiler."""

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SECTION = _NullSection()


class Profiler:
    """Context-manager hotspot timer with a per-stage aggregate view.

    Args:
        enabled: ``False`` makes every :meth:`section` a no-op, so a
            profiler can be threaded through call paths and switched
            on only when needed.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._stats: Dict[str, StageStats] = {}

    def section(self, name: str):
        """Time one entry into ``name`` (use as a context manager)."""
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self, name)

    def _record(self, name: str, seconds: float) -> None:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = StageStats()
        stats.calls += 1
        stats.total_s += seconds
        stats.max_s = max(stats.max_s, seconds)

    def stats(self) -> Dict[str, StageStats]:
        """Per-stage aggregates recorded so far (copy)."""
        return dict(self._stats)

    def reset(self) -> None:
        """Drop every recorded stage."""
        self._stats.clear()

    def report(self) -> str:
        """Aligned per-stage table, hottest total first."""
        if not self._stats:
            return "profiler: no sections recorded"
        grand_total = sum(s.total_s for s in self._stats.values())
        width = max(len(name) for name in self._stats)
        header = (f"{'stage':<{width}}  {'calls':>6}  {'total s':>9}  "
                  f"{'mean s':>9}  {'max s':>9}  {'share':>6}")
        lines = [header, "-" * len(header)]
        ranked = sorted(self._stats.items(),
                        key=lambda item: item[1].total_s, reverse=True)
        for name, stats in ranked:
            share = (stats.total_s / grand_total) if grand_total else 0.0
            lines.append(
                f"{name:<{width}}  {stats.calls:>6}  "
                f"{stats.total_s:>9.4f}  {stats.mean_s:>9.4f}  "
                f"{stats.max_s:>9.4f}  {share:>5.1%}")
        return "\n".join(lines)
