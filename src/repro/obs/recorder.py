"""The flight recorder: a bounded ring of recent telemetry events.

Every process keeps one :class:`FlightRecorder` — a ``deque`` of the
last ~2k events (span records, wide structured log events, injected
fault events).  Recording is always cheap (one append); nothing is
written anywhere until something goes wrong.  On a failure trigger —
a ``gateway.internal_errors`` increment, a circuit breaker opening,
or a chaos-harness crash — the ring is dumped as JSONL so the events
*leading up to* the failure survive for post-mortem.

Dump format: line one is a header
(``{"kind": "header", "schema": 1, "reason": ..., "pid": ...,
"created_unix": ..., "events": N}``), then one JSON object per event
with a monotonically increasing ``seq`` and a ``kind`` of ``"span"``
(a registry span event, including its trace/span IDs when sampled),
``"log"`` (a wide event from :meth:`FlightRecorder.note`), or
``"fault"`` (an injected :class:`repro.faults.inject.FaultEvent`).
``"log"`` and ``"fault"`` events carry **no timestamps**, so two
same-seed chaos runs dump bit-identical non-span lines — the replay
determinism contract tested in ``tests/test_obs_recorder.py``.
``repro trace show`` renders span waterfalls from these files.

Dumps are opt-in: they go to an explicit directory
(constructor/``dump`` argument), else ``REPRO_RECORDER_DIR``, else —
only when ``REPRO_RECORDER`` is truthy — ``./flight-recordings``.
With none of those set, triggers still record the wide event but
write nothing, so test suites that intentionally provoke failures do
not litter the working tree.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Union

#: Directory for automatic dumps (setting it enables them).
RECORDER_DIR_ENV = "REPRO_RECORDER_DIR"

#: Truthy value enables dumps into ``./flight-recordings``.
RECORDER_ENV = "REPRO_RECORDER"

DEFAULT_CAPACITY = 2048

#: Per-process cap on automatic dumps (a crash loop must not fill
#: the disk with near-identical recordings).
DEFAULT_MAX_DUMPS = 16

_DUMP_SCHEMA = 1


def _truthy(raw: str) -> bool:
    raw = raw.strip().lower()
    return bool(raw) and raw not in ("0", "false", "no")


def _slug(text: str) -> str:
    cleaned = "".join(char if char.isalnum() else "-"
                      for char in text.lower())
    return "-".join(part for part in cleaned.split("-") if part) or "dump"


class FlightRecorder:
    """Bounded ring buffer of recent events with JSONL dumps.

    Args:
        capacity: Ring size in events (oldest evicted first).
        directory: Explicit dump directory; when given, dumps are
            always written (the env-var gate is for the implicit
            process-wide recorder).
        max_dumps: Automatic-dump budget for this recorder.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 directory: Optional[Union[str, Path]] = None,
                 max_dumps: int = DEFAULT_MAX_DUMPS):
        self.capacity = int(capacity)
        self.directory = Path(directory) if directory is not None else None
        self.max_dumps = int(max_dumps)
        self.dumps: List[Path] = []
        self._events: "deque[dict]" = deque(maxlen=self.capacity)
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._events)

    def record(self, kind: str, payload: dict) -> None:
        """Append one event (the only hot-path entry point).

        The ring's ``kind`` tag is authoritative — a payload carrying
        its own ``kind`` key (injected fault events do) cannot
        overwrite it.
        """
        self._sequence += 1
        event = {"seq": self._sequence}
        event.update(payload)
        event["kind"] = kind
        self._events.append(event)

    def record_span_event(self, event: dict) -> None:
        """Feed one registry span event into the ring."""
        self.record("span", event)

    def note(self, event: str, **fields) -> None:
        """Record one wide structured log event (no timestamp — the
        deterministic-replay contract covers these lines)."""
        payload = {"event": event}
        payload.update(fields)
        self.record("log", payload)

    def note_fault(self, fault_event: dict) -> None:
        """Record one injected-fault event dict.

        The fault's own ``kind`` (stall/reject/...) is preserved as
        ``fault_kind`` so the ring-level ``kind: "fault"`` tag stays
        unambiguous.
        """
        payload = dict(fault_event)
        if "kind" in payload:
            payload["fault_kind"] = payload.pop("kind")
        self.record("fault", payload)

    def snapshot(self) -> List[dict]:
        """The current ring contents, oldest first (copies)."""
        return [dict(event) for event in self._events]

    def clear(self) -> None:
        """Drop all buffered events (the sequence keeps counting)."""
        self._events.clear()

    def _resolve_directory(self, directory: Optional[Union[str, Path]]
                           ) -> Optional[Path]:
        if directory is not None:
            return Path(directory)
        if self.directory is not None:
            return self.directory
        env_dir = os.environ.get(RECORDER_DIR_ENV, "").strip()
        if env_dir:
            return Path(env_dir)
        if _truthy(os.environ.get(RECORDER_ENV, "")):
            return Path("flight-recordings")
        return None

    def dump(self, reason: str,
             directory: Optional[Union[str, Path]] = None
             ) -> Optional[Path]:
        """Write the ring as JSONL; returns the path (None if gated).

        ``None`` means dumps are disabled (no directory resolved) or
        this recorder already spent its ``max_dumps`` budget.
        """
        target = self._resolve_directory(directory)
        if target is None or len(self.dumps) >= self.max_dumps:
            return None
        target.mkdir(parents=True, exist_ok=True)
        name = (f"flight-{_slug(reason)}-{os.getpid()}-"
                f"{len(self.dumps):03d}.jsonl")
        path = target / name
        header = {
            "kind": "header",
            "schema": _DUMP_SCHEMA,
            "reason": reason,
            "pid": os.getpid(),
            "created_unix": time.time(),
            "events": len(self._events),
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(event, sort_keys=True, default=str)
                     for event in self._events)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        self.dumps.append(path)
        return path

    def trigger(self, reason: str, **fields) -> Optional[Path]:
        """Record a wide event for ``reason``, then dump the ring."""
        self.note(reason, **fields)
        return self.dump(reason)


_recorder = FlightRecorder()


def flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder (always exists)."""
    return _recorder


def set_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the process-wide recorder; returns the previous one."""
    global _recorder
    previous, _recorder = _recorder, recorder
    return previous


@contextmanager
def recording(capacity: int = DEFAULT_CAPACITY,
              directory: Optional[Union[str, Path]] = None,
              max_dumps: int = DEFAULT_MAX_DUMPS
              ) -> Iterator[FlightRecorder]:
    """Scope a fresh process-wide recorder for one ``with`` block.

    What the chaos harness (and tests) use so one run's ring cannot
    leak stale events into another run's dump.
    """
    fresh = FlightRecorder(capacity=capacity, directory=directory,
                           max_dumps=max_dumps)
    previous = set_flight_recorder(fresh)
    try:
        yield fresh
    finally:
        set_flight_recorder(previous)
