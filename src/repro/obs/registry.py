"""The shared instrument registry and the process-wide default.

A :class:`Registry` owns named instruments, snapshots them as a
JSON-ready dict, and forwards span events to a pluggable sink.  One
process-wide default registry lets every subsystem — reader,
estimator, tracker, campaign executor, inference service — record
into the same place, so a single snapshot observes everything from a
single sensor press to a million-request load test.

Observation is **off by default**: instrumented code calls
:func:`active`, gets ``None``, and skips all instrument work — one
function call and a branch of overhead (asserted < 5% on
``invert_batch`` in ``benchmarks/test_perf_estimator.py``).  Turn it
on globally with :func:`enable` (or ``REPRO_OBS=1`` via
:func:`enable_from_env`), or scoped with the :func:`observed` context
manager, which swaps in a fresh registry and restores the previous
state on exit (what tests and the benchmark harnesses use).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence

from repro.obs import trace
from repro.obs.instruments import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    NullSink,
    Span,
    TelemetrySink,
)
from repro.obs.recorder import flight_recorder

#: Environment variable that turns observation on at CLI startup.
OBS_ENV = "REPRO_OBS"

#: Path for a JSONL span-event export sink, installed at CLI startup
#: when observation is enabled (``repro trace show`` reads it).
TRACE_EXPORT_ENV = "REPRO_TRACE_EXPORT"


class Registry:
    """Instrument registry with a JSON snapshot and pluggable sink.

    Args:
        sink: Where span events go; default discards them.
    """

    def __init__(self, sink: Optional[TelemetrySink] = None):
        self.sink = sink if sink is not None else NullSink()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  bounds: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        """Get or create the named histogram."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, tuple(bounds))
        return histogram

    def span(self, name: str,
             attributes: Optional[dict] = None,
             context: Optional[trace.TraceContext] = None,
             parent: Optional[trace.TraceContext] = None,
             links: Optional[Sequence[trace.TraceContext]] = None
             ) -> Span:
        """Open a trace span (use as a context manager).

        On exit the span's duration lands in the per-stage histogram
        ``span.<name>.seconds`` (how per-stage latency stats survive
        into snapshots) and one event dict goes to the sink and the
        flight recorder.  ``context`` / ``parent`` / ``links`` pin the
        span's place in the trace tree explicitly; by default it
        nests under the ambient :func:`repro.obs.trace.current_context`.
        """
        return Span(self, name, attributes, context=context,
                    parent=parent, links=links)

    def _record_span(self, span: Span, exc: Optional[BaseException]
                     ) -> None:
        """Span exit hook: emit the event, keep the stage histogram."""
        self.histogram(f"span.{span.name}.seconds").observe(
            span.duration_s)
        event = {
            "span": span.name,
            "duration_s": span.duration_s,
            "status": "ok" if exc is None else "error",
            "error": None if exc is None else type(exc).__name__,
        }
        if exc is not None:
            event["error_message"] = str(exc)
        context = span.context
        if context is not None and context.sampled:
            event["trace_id"] = context.trace_id
            event["span_id"] = context.span_id
            event["parent_span_id"] = span.parent_span_id
            event["start_unix"] = span.start_unix
            links = [{"trace_id": link.trace_id,
                      "span_id": link.span_id}
                     for link in span.links if link.sampled]
            if links:
                event["links"] = links
        event.update(span.attributes)
        self.sink.emit(event)
        flight_recorder().record_span_event(event)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        How campaign-worker telemetry survives the process boundary:
        counters sum, histograms merge elementwise (matching bounds
        required), gauges are point-in-time so the incoming value
        wins.  Merging the same snapshot twice double-counts — the
        caller owns exactly-once delivery.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).increment(int(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(float(value))
        for name, payload in (snapshot.get("histograms") or {}).items():
            incoming = Histogram.from_dict(payload)
            existing = self._histograms.get(name)
            if existing is None:
                self._histograms[name] = incoming
            else:
                existing.merge(incoming)

    def snapshot(self) -> dict:
        """All instrument states as a JSON-ready dict."""
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: gauge.value
                       for name, gauge in sorted(self._gauges.items())},
            "histograms": {name: histogram.to_dict()
                           for name, histogram
                           in sorted(self._histograms.items())},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


_registry = Registry()
_enabled = False


def get_registry() -> Registry:
    """The process-wide default registry (always exists)."""
    return _registry


def set_registry(registry: Registry) -> Registry:
    """Swap the default registry; returns the previous one."""
    global _registry
    previous, _registry = _registry, registry
    return previous


def enable(registry: Optional[Registry] = None) -> Registry:
    """Turn observation on; optionally install ``registry`` first."""
    global _enabled
    if registry is not None:
        set_registry(registry)
    _enabled = True
    return _registry


def disable() -> None:
    """Turn observation off (instruments stay as they are)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether instrumented code is currently recording."""
    return _enabled


def enable_from_env(environ: Optional[dict] = None) -> bool:
    """Enable observation when ``REPRO_OBS`` is set truthy.

    Returns whether observation is enabled afterwards.  ``0``, empty,
    ``false`` and ``no`` (case-insensitive) leave it off.  When
    enabling, a ``REPRO_TRACE_EXPORT=<path>`` additionally points the
    default registry's sink at a :class:`JsonlSink`, so every span
    event (trace IDs included) lands in a file ``repro trace show``
    can render.
    """
    env = environ if environ is not None else os.environ
    raw = env.get(OBS_ENV, "").strip().lower()
    if raw and raw not in ("0", "false", "no"):
        enable()
        export_path = env.get(TRACE_EXPORT_ENV, "").strip()
        if export_path and isinstance(_registry.sink, NullSink):
            _registry.sink = JsonlSink(export_path)
    return _enabled


def active() -> Optional[Registry]:
    """The default registry when observation is on, else ``None``.

    The one-line gate for hot paths::

        obs = active()
        if obs is not None:
            obs.counter("estimator.inversions").increment()
    """
    return _registry if _enabled else None


class _NullSpan:
    """Do-nothing stand-in so ``with maybe_span(...)`` always works."""

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


def maybe_span(name: str, attributes: Optional[dict] = None,
               context: Optional[trace.TraceContext] = None,
               parent: Optional[trace.TraceContext] = None,
               links: Optional[Sequence[trace.TraceContext]] = None):
    """A real span when observation is on, else a shared no-op."""
    obs = active()
    if obs is None:
        return _NULL_SPAN
    return obs.span(name, attributes, context=context, parent=parent,
                    links=links)


@contextmanager
def observed(sink: Optional[TelemetrySink] = None,
             registry: Optional[Registry] = None) -> Iterator[Registry]:
    """Enable observation on a fresh registry for one ``with`` block.

    Restores the previous default registry and enabled state on exit,
    so tests and benchmark harnesses can observe without leaking
    global state.
    """
    global _enabled
    fresh = registry if registry is not None else Registry(sink)
    previous_registry = set_registry(fresh)
    previous_enabled = _enabled
    _enabled = True
    try:
        yield fresh
    finally:
        _enabled = previous_enabled
        set_registry(previous_registry)
