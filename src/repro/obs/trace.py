"""Distributed trace context: IDs, the ``traceparent`` codec, sampling.

One trace is a tree of :class:`~repro.obs.instruments.Span` records
sharing a 128-bit trace ID; every span carries its own 64-bit span ID
and a link to its parent.  The context rides three transports:

* **In-process** — a :class:`contextvars.ContextVar` holds the current
  :class:`TraceContext`; opening a span makes its context current for
  the ``with`` body, so nested spans (and any ``asyncio`` task spawned
  inside it) pick up the right parent automatically.
* **Over the wire** — the W3C ``traceparent`` header shape
  (``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``) is carried
  in gateway HTTP headers and as an optional ``"traceparent"`` key on
  WebSocket estimate messages.  :func:`parse_traceparent` is total: a
  malformed header degrades to ``None`` (the request starts a fresh
  root trace) and never raises.
* **Across processes** — :class:`~repro.experiments.parallel.CampaignExecutor`
  serializes the current context into each worker payload, so a
  campaign trial's spans stitch into the submitting trace.

Sampling is **deterministic head sampling**: the decision is a pure
function of the trace ID and the ``REPRO_TRACE_SAMPLE`` rate
(``int(trace_id[:16], 16) < rate * 2**64``), so every process that
sees a trace makes the same call with no coordination.  An unsampled
context still propagates (the gateway echoes its trace ID either
way); only span *recording* of trace fields is skipped, which is what
keeps the instrumentation-overhead budget intact at low rates.

Span IDs are sequenced from a per-process random odd base (a
multiplicative counter over ``2**64``), re-seeded on fork so campaign
workers cannot collide with the parent; trace IDs are 16 random
bytes.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional

#: Environment variable holding the head-sampling rate in [0, 1].
#: Unset / unparsable means 1.0 (record every trace when obs is on).
TRACE_SAMPLE_ENV = "REPRO_TRACE_SAMPLE"

_ZERO_TRACE_ID = "0" * 32
_ZERO_SPAN_ID = "0" * 16
_HEX_DIGITS = frozenset("0123456789abcdef")
_SPAN_MASK = (1 << 64) - 1


def _is_hex(text: str) -> bool:
    return bool(text) and all(char in _HEX_DIGITS for char in text)


# --------------------------------------------------------------------------
# ID generation
# --------------------------------------------------------------------------

def new_trace_id() -> str:
    """A fresh 128-bit trace ID (32 lowercase hex chars, never zero)."""
    trace_id = os.urandom(16).hex()
    while trace_id == _ZERO_TRACE_ID:  # pragma: no cover - 2**-128
        trace_id = os.urandom(16).hex()
    return trace_id


# Multiplying an odd base by a counter is a bijection mod 2**64, so
# span IDs are unique per process without per-span entropy; the state
# is keyed on the PID so forked campaign workers re-seed instead of
# replaying the parent's sequence.
_span_state = {
    "pid": os.getpid(),
    "base": int.from_bytes(os.urandom(8), "big") | 1,
    "counter": itertools.count(1),
}


def new_span_id() -> str:
    """A fresh 64-bit span ID (16 lowercase hex chars, never zero)."""
    pid = os.getpid()
    if pid != _span_state["pid"]:
        _span_state.update(
            pid=pid,
            base=int.from_bytes(os.urandom(8), "big") | 1,
            counter=itertools.count(1),
        )
    value = (_span_state["base"] * next(_span_state["counter"])) \
        & _SPAN_MASK
    return format(value or 1, "016x")


# --------------------------------------------------------------------------
# Sampling
# --------------------------------------------------------------------------

_rate_cache = (None, 1.0)


def sample_rate(environ: Optional[dict] = None) -> float:
    """The head-sampling rate from ``REPRO_TRACE_SAMPLE`` (default 1).

    Clamped to [0, 1]; an unparsable value falls back to 1.0 so a
    typo'd deployment records too much rather than nothing.
    """
    global _rate_cache
    raw = (environ if environ is not None else os.environ).get(
        TRACE_SAMPLE_ENV, "").strip()
    if raw == _rate_cache[0]:
        return _rate_cache[1]
    try:
        rate = float(raw) if raw else 1.0
    except ValueError:
        rate = 1.0
    rate = min(max(rate, 0.0), 1.0)
    _rate_cache = (raw, rate)
    return rate


def trace_sampled(trace_id: str, rate: float) -> bool:
    """Deterministic head-sampling decision for ``trace_id``.

    A pure function of (trace ID, rate): the top 64 bits of the trace
    ID are compared against ``rate * 2**64``, so every process that
    sees the same trace agrees without coordination.
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    return int(trace_id[:16], 16) < int(rate * 2.0 ** 64)


# --------------------------------------------------------------------------
# The context itself
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceContext:
    """One point in a trace: (trace ID, span ID, sampled flag)."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def child(self) -> "TraceContext":
        """A child context: same trace, fresh span ID.

        An unsampled context returns itself — no span will be
        recorded under it, so allocating IDs would be pure overhead.
        """
        if not self.sampled:
            return self
        return TraceContext(self.trace_id, new_span_id(), True)

    def to_traceparent(self) -> str:
        """Serialize as a W3C-style ``traceparent`` value."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"


#: Shared stand-in for "tracing decided no" with no ID allocation.
UNSAMPLED = TraceContext(_ZERO_TRACE_ID, _ZERO_SPAN_ID, sampled=False)


def encode_traceparent(context: TraceContext) -> str:
    """Alias for :meth:`TraceContext.to_traceparent`."""
    return context.to_traceparent()


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Decode a ``traceparent`` header; ``None`` on any malformation.

    Total by contract: hostile input of any shape degrades to a fresh
    root trace at the caller (property-tested in
    ``tests/test_obs_trace.py``) — it never raises.  Per the W3C
    grammar the fields are lowercase hex, version ``ff`` is invalid,
    all-zero trace/span IDs are invalid, and a version-``00`` header
    must have exactly four fields.
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[:4]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if len(parts) > 4 and version == "00":
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id) \
            or trace_id == _ZERO_TRACE_ID:
        return None
    if len(span_id) != 16 or not _is_hex(span_id) \
            or span_id == _ZERO_SPAN_ID:
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    return TraceContext(trace_id, span_id,
                        sampled=bool(int(flags, 16) & 1))


def new_root() -> TraceContext:
    """Root context for a span with no ambient parent.

    At rate 0 this is the shared :data:`UNSAMPLED` sentinel (no ID
    allocation on the hot path); otherwise fresh IDs with the
    deterministic sampling decision applied.
    """
    rate = sample_rate()
    if rate <= 0.0:
        return UNSAMPLED
    trace_id = new_trace_id()
    return TraceContext(trace_id, new_span_id(),
                        sampled=trace_sampled(trace_id, rate))


def request_context(remote: Optional[TraceContext] = None
                    ) -> TraceContext:
    """Per-request context at a transport edge (always real IDs).

    The gateway echoes the trace ID on every response, so even an
    unsampled request needs genuine IDs here — unlike
    :func:`new_root`, rate 0 still allocates.  A remote parent's
    sampling decision is honored (head sampling: whoever started the
    trace decided).
    """
    if remote is not None:
        return remote.child() if remote.sampled else remote
    trace_id = new_trace_id()
    return TraceContext(trace_id, new_span_id(),
                        sampled=trace_sampled(trace_id, sample_rate()))


# --------------------------------------------------------------------------
# Ambient propagation
# --------------------------------------------------------------------------

_current: "ContextVar[Optional[TraceContext]]" = ContextVar(
    "repro_trace_context", default=None)


def current_context() -> Optional[TraceContext]:
    """The ambient trace context of this task/thread, if any."""
    return _current.get()


def set_context(context: Optional[TraceContext]):
    """Make ``context`` current; returns the reset token."""
    return _current.set(context)


def reset_context(token) -> None:
    """Undo a :func:`set_context` (restores the previous context)."""
    _current.reset(token)


@contextmanager
def use_context(context: Optional[TraceContext]
                ) -> Iterator[Optional[TraceContext]]:
    """Scope ``context`` as the ambient parent for a ``with`` body.

    ``None`` is a no-op scope, so deserialized maybe-absent contexts
    (``parse_traceparent`` results) thread through without a branch
    at the call site.
    """
    if context is None:
        yield None
        return
    token = _current.set(context)
    try:
        yield context
    finally:
        _current.reset(token)


def current_traceparent() -> str:
    """The ambient context as a ``traceparent`` value ("" when none)."""
    context = _current.get()
    return context.to_traceparent() if context is not None else ""


# --------------------------------------------------------------------------
# Waterfall rendering (``repro trace show``)
# --------------------------------------------------------------------------

#: Span-event keys that are structure, not user attributes.
_EVENT_KEYS = frozenset((
    "span", "duration_s", "status", "error", "error_message",
    "trace_id", "span_id", "parent_span_id", "start_unix", "links",
))


def _span_line(event: dict, origin: float, depth: int) -> str:
    offset_ms = (float(event.get("start_unix") or origin) - origin) * 1e3
    duration_ms = float(event.get("duration_s") or 0.0) * 1e3
    status = str(event.get("status") or "ok")
    parts = [f"{'  ' * depth}[{offset_ms:9.2f}ms +{duration_ms:8.2f}ms]",
             f"{status:<5}", str(event.get("span", "?"))]
    attrs = {key: value for key, value in event.items()
             if key not in _EVENT_KEYS}
    if attrs:
        parts.append(" ".join(f"{key}={value}"
                              for key, value in sorted(attrs.items())))
    links = event.get("links") or ()
    if links:
        parts.append(f"links={len(links)}")
    if event.get("error"):
        message = event.get("error_message", "")
        parts.append(f"!{event['error']}"
                     + (f": {message}" if message else ""))
    return "  " + " ".join(parts)


def render_waterfall(events, trace_id: str) -> str:
    """Render span events matching a trace-ID prefix as a waterfall.

    ``events`` is an iterable of span-event dicts (the JSONL rows a
    :class:`~repro.obs.instruments.JsonlSink` exports).  Spans are
    grouped per trace, nested by ``parent_span_id``, and ordered by
    start time; offsets are milliseconds from the trace's earliest
    span.  Returns ``""`` when nothing matches.
    """
    spans = [event for event in events
             if isinstance(event, dict) and "span" in event
             and "span_id" in event
             and str(event.get("trace_id", "")).startswith(trace_id)]
    if not spans:
        return ""
    by_trace: dict = {}
    for event in spans:
        by_trace.setdefault(event["trace_id"], []).append(event)
    blocks = []
    for tid in sorted(by_trace):
        group = sorted(by_trace[tid],
                       key=lambda e: float(e.get("start_unix") or 0.0))
        origin = float(group[0].get("start_unix") or 0.0)
        known = {event["span_id"] for event in group}
        children: dict = {}
        roots = []
        for event in group:
            parent = event.get("parent_span_id")
            if parent and parent in known:
                children.setdefault(parent, []).append(event)
            else:
                roots.append(event)
        lines = [f"trace {tid} ({len(group)} span"
                 f"{'s' if len(group) != 1 else ''})"]
        stack = [(event, 0) for event in reversed(roots)]
        while stack:
            event, depth = stack.pop()
            lines.append(_span_line(event, origin, depth))
            for child in reversed(children.get(event["span_id"], ())):
                stack.append((child, depth + 1))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
