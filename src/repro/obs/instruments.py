"""Observability instruments: counters, gauges, histograms, spans.

Promoted from ``repro.serve.telemetry`` so every subsystem shares one
instrument vocabulary.  The hot paths (scheduler flushes, batched
inversions, per-group tracking) touch these on every operation, so the
instruments are deliberately tiny — plain attribute updates, no locks
(single-process use) and no external dependencies.

Latency histograms use fixed log-spaced bucket bounds; exact
percentiles for benchmark reports should be computed from the raw
samples (the load generator does), while :meth:`Histogram.quantile`
gives the usual bucket-interpolated estimate for monitoring.  Two
edge cases follow Prometheus semantics: the quantile of an *empty*
histogram is ``nan`` (there is no data to estimate from), and a
quantile that lands in the implicit overflow bucket is clamped to the
largest finite bound instead of extrapolating past it.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs import trace

#: Default latency buckets [s]: 100 us .. ~5 s, log-spaced.
LATENCY_BUCKETS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
                   1.0, 5.0)

#: Default batch-size buckets [requests / samples].
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                 256.0, 512.0, 1024.0)


class TelemetrySink:
    """Receives span/event dicts; subclass to export elsewhere."""

    def emit(self, event: dict) -> None:
        """Handle one event dict (override)."""
        raise NotImplementedError


class NullSink(TelemetrySink):
    """Discards every event (the default)."""

    def emit(self, event: dict) -> None:
        pass


class MemorySink(TelemetrySink):
    """Keeps every event in a list (tests, bench reports)."""

    def __init__(self) -> None:
        self.events: List[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)


class JsonlSink(TelemetrySink):
    """Appends every event as one JSON line to a file.

    The trace-export sink: ``REPRO_TRACE_EXPORT=<path>`` installs one
    at CLI startup (see :func:`repro.obs.registry.enable_from_env`),
    and ``repro trace show <trace-id> --input <path>`` renders span
    waterfalls from the resulting file.  Lines are flushed per event
    so a crashed process still leaves a readable file behind.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")

    def emit(self, event: dict) -> None:
        self._handle.write(
            json.dumps(event, sort_keys=True, default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        return {"name": self.name, "value": int(self.value)}


@dataclass
class Gauge:
    """A point-in-time value that can move either way.

    Used for levels and ratios (queue depth, worker utilisation)
    where a monotone counter is the wrong shape.
    """

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the current value by ``amount`` (either sign)."""
        self.value += float(amount)

    def to_dict(self) -> dict:
        return {"name": self.name, "value": float(self.value)}


@dataclass
class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``bounds`` are upper bucket edges; observations above the last
    bound land in the implicit overflow bucket.
    """

    name: str
    bounds: Tuple[float, ...] = LATENCY_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def __post_init__(self) -> None:
        bounds = tuple(float(b) for b in self.bounds)
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {self.name} needs strictly ascending "
                f"bucket bounds, got {bounds}"
            )
        self.bounds = bounds
        if not self.counts:
            self.counts = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = 0
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            index = len(self.bounds)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate.

        ``nan`` for an empty histogram; a quantile landing in the
        overflow bucket is clamped to the largest finite bound (the
        histogram cannot resolve positions beyond it — read ``max``
        from :meth:`to_dict` for the true extreme).
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return math.nan
        target = q * self.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target and count:
                if index == len(self.bounds):
                    return self.bounds[-1]
                low = 0.0 if index == 0 else self.bounds[index - 1]
                high = self.bounds[index]
                fraction = (target - (cumulative - count)) / count
                return low + fraction * max(high - low, 0.0)
        return self.bounds[-1]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": int(self.count),
            "sum": float(self.total),
            "mean": float(self.mean),
            "min": float(self.minimum) if self.count else None,
            "max": float(self.maximum) if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild a histogram from its :meth:`to_dict` snapshot."""
        histogram = cls(name=payload["name"],
                        bounds=tuple(payload["bounds"]),
                        counts=[int(c) for c in payload["counts"]],
                        total=float(payload["sum"]),
                        count=int(payload["count"]))
        if histogram.count:
            histogram.minimum = float(payload["min"])
            histogram.maximum = float(payload["max"])
        return histogram

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram.

        How campaign-worker snapshots come home: bucket counts add
        elementwise (the bounds must match exactly — merging across
        bucket layouts would silently misplace observations), the
        running count/sum add, and the extremes widen.

        Raises:
            ObservabilityError: Mismatched bucket bounds.
        """
        if other.bounds != self.bounds:
            raise ObservabilityError(
                f"histogram {self.name} cannot merge mismatched bounds "
                f"{other.bounds} into {self.bounds}")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.count:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)


class Span:
    """A trace span (context manager) with parent/child structure.

    Measures wall-clock duration with ``perf_counter`` and hands one
    event dict back to its registry on exit (which forwards it to the
    sink, the flight recorder, and a per-stage histogram).

    On entry the span resolves its :class:`repro.obs.trace.TraceContext`
    — an explicit ``context`` wins, else a child of the explicit
    ``parent``, else a child of the ambient context (a fresh root when
    there is none) — and makes it the ambient context for the ``with``
    body, so nested spans stitch into a tree without any plumbing at
    the call sites.  ``links`` carries *other* contexts causally tied
    to this span without being its parent (a micro-batch flush links
    every member request's span).
    """

    def __init__(self, registry, name: str,
                 attributes: Optional[dict] = None,
                 context: Optional[trace.TraceContext] = None,
                 parent: Optional[trace.TraceContext] = None,
                 links: Optional[Sequence[trace.TraceContext]] = None):
        self._registry = registry
        self.name = name
        self.attributes = dict(attributes or {})
        self.duration_s: Optional[float] = None
        self.context: Optional[trace.TraceContext] = None
        self.parent_span_id: Optional[str] = None
        self.start_unix: Optional[float] = None
        self.links: Tuple[trace.TraceContext, ...] = tuple(links or ())
        self._explicit_context = context
        self._explicit_parent = parent
        self._token = None
        self._start = 0.0

    def set(self, key: str, value) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        if self._explicit_context is not None:
            context = self._explicit_context
            parent = self._explicit_parent
        elif self._explicit_parent is not None:
            parent = self._explicit_parent
            context = parent.child()
        else:
            parent = trace.current_context()
            context = (parent.child() if parent is not None
                       else trace.new_root())
        self.context = context
        if parent is not None and parent.sampled:
            self.parent_span_id = parent.span_id
        self._token = trace.set_context(context)
        if context.sampled:
            self.start_unix = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = time.perf_counter() - self._start
        if self._token is not None:
            trace.reset_context(self._token)
            self._token = None
        self._registry._record_span(self, exc)
