"""Exporters: Prometheus text format and JSON snapshot round-trips.

Two consumption paths for a :class:`~repro.obs.registry.Registry`:

* :func:`to_prometheus` renders a snapshot in the Prometheus text
  exposition format (counters, gauges, and histograms with cumulative
  ``le`` buckets), so a scrape endpoint or pushgateway hook needs no
  extra dependencies.
* :func:`write_snapshot` / :func:`registry_from_snapshot` persist the
  JSON snapshot and rebuild a live registry from it — what the
  ``repro obs-report`` CLI and the benchmark manifests use.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Union

from repro.obs.instruments import Histogram
from repro.obs.registry import Registry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str) -> str:
    """``serve.latency_seconds`` -> ``repro_serve_latency_seconds``."""
    sanitized = _NAME_RE.sub("_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _format_value(value: float) -> str:
    """Prometheus sample value: integers stay integral."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a registry snapshot in Prometheus text format.

    Accepts either a :meth:`Registry.snapshot` dict or a live
    :class:`Registry`.  Histograms become the standard cumulative
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
    """
    if isinstance(snapshot, Registry):
        snapshot = snapshot.snapshot()
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, payload in sorted(snapshot.get("histograms", {}).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                f"{cumulative}")
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {payload["count"]}')
        lines.append(f"{metric}_sum {_format_value(payload['sum'])}")
        lines.append(f"{metric}_count {payload['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_snapshot(registry: Union[Registry, dict], path) -> Path:
    """Persist a registry snapshot as pretty JSON; returns the path."""
    snapshot = (registry.snapshot() if isinstance(registry, Registry)
                else registry)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def registry_from_snapshot(snapshot: Union[dict, str, Path]) -> Registry:
    """Rebuild a live registry from a snapshot dict or JSON file.

    The inverse of :meth:`Registry.snapshot` up to span-sink events
    (which are not retained): counters, gauges, and histograms come
    back with their full recorded state, so quantiles and exports work
    on reloaded data exactly as on the original.
    """
    if not isinstance(snapshot, dict):
        snapshot = json.loads(Path(snapshot).read_text())
    registry = Registry()
    for name, value in snapshot.get("counters", {}).items():
        registry.counter(name).increment(int(value))
    for name, value in snapshot.get("gauges", {}).items():
        registry.gauge(name).set(float(value))
    for name, payload in snapshot.get("histograms", {}).items():
        histogram = Histogram.from_dict(dict(payload, name=name))
        registry._histograms[name] = histogram
    return registry
