"""Gesture classification over tracked touch interactions.

Works on the :class:`repro.core.tracking.StreamingTracker` output: each
touch event's force and location trajectories are reduced to a gesture:

* ``TAP`` — brief contact, no sustained force.
* ``HOLD`` — sustained contact with a stable force level.
* ``PRESS_RAMP`` — sustained contact with monotonically growing force
  (the paper's analog-control gesture, e.g. volume).
* ``SLIDE`` — the contact location travels along the strip.

The thresholds default to fingertip-scale interactions on the 80 mm
prototype and are all configurable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.tracking import TrackedSample
from repro.errors import ConfigurationError


class GestureKind(enum.Enum):
    """Recognised gesture classes."""

    TAP = "tap"
    HOLD = "hold"
    PRESS_RAMP = "press-ramp"
    SLIDE = "slide"


@dataclass(frozen=True)
class Gesture:
    """One classified interaction.

    Attributes:
        kind: The gesture class.
        onset / release: Interaction span [s].
        start_location / end_location: Contact travel [m].
        mean_force / peak_force: Force statistics [N].
    """

    kind: GestureKind
    onset: float
    release: float
    start_location: float
    end_location: float
    mean_force: float
    peak_force: float

    @property
    def duration(self) -> float:
        """Interaction length [s]."""
        return self.release - self.onset

    @property
    def travel(self) -> float:
        """Signed location travel [m]."""
        return self.end_location - self.start_location


class GestureClassifier:
    """Rule-based gesture classification of tracked samples.

    Args:
        tap_max_duration: Longest contact still counted as a tap [s].
        slide_min_travel: Location travel that makes a slide [m].
        ramp_min_slope: Force slope that makes a press-ramp [N/s].
        min_samples: Shortest classified interaction (debounce).
    """

    def __init__(self, tap_max_duration: float = 0.15,
                 slide_min_travel: float = 8e-3,
                 ramp_min_slope: float = 2.0,
                 min_samples: int = 2):
        if tap_max_duration <= 0.0:
            raise ConfigurationError("tap duration must be positive")
        if slide_min_travel <= 0.0:
            raise ConfigurationError("slide travel must be positive")
        if ramp_min_slope <= 0.0:
            raise ConfigurationError("ramp slope must be positive")
        if min_samples < 2:
            raise ConfigurationError(
                f"min samples must be >= 2, got {min_samples}"
            )
        self.tap_max_duration = float(tap_max_duration)
        self.slide_min_travel = float(slide_min_travel)
        self.ramp_min_slope = float(ramp_min_slope)
        self.min_samples = int(min_samples)

    def _segment(self, samples: Sequence[TrackedSample]
                 ) -> List[List[TrackedSample]]:
        segments: List[List[TrackedSample]] = []
        current: List[TrackedSample] = []
        for sample in samples:
            if sample.touched:
                current.append(sample)
            elif current:
                segments.append(current)
                current = []
        if current:
            segments.append(current)
        return [segment for segment in segments
                if len(segment) >= self.min_samples]

    def _classify_segment(self, segment: List[TrackedSample]) -> Gesture:
        times = np.array([sample.time for sample in segment])
        forces = np.array([sample.force for sample in segment])
        locations = np.array([sample.location for sample in segment])
        duration = float(times[-1] - times[0])
        travel = float(locations[-1] - locations[0])
        slope = float(np.polyfit(times, forces, 1)[0]) if duration > 0 \
            else 0.0

        if abs(travel) >= self.slide_min_travel:
            kind = GestureKind.SLIDE
        elif duration <= self.tap_max_duration:
            kind = GestureKind.TAP
        elif slope >= self.ramp_min_slope:
            kind = GestureKind.PRESS_RAMP
        else:
            kind = GestureKind.HOLD
        return Gesture(
            kind=kind,
            onset=float(times[0]),
            release=float(times[-1]),
            start_location=float(locations[0]),
            end_location=float(locations[-1]),
            mean_force=float(forces.mean()),
            peak_force=float(forces.max()),
        )

    def classify(self, samples: Sequence[TrackedSample]) -> List[Gesture]:
        """Segment and classify a tracked stream into gestures."""
        return [self._classify_segment(segment)
                for segment in self._segment(samples)]
