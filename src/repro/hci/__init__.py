"""HCI application layer: gestures on top of force tracking.

The paper's UI motivation (sections 1 and 5.3): with continuous force
*and* location, a passive strip becomes a rich input device.  This
package classifies tracked touch interactions into the gesture
vocabulary that motivates the paper — taps, holds, force-steps and
slides — turning the sensing stack into an input pipeline.
"""

from repro.hci.gestures import Gesture, GestureClassifier, GestureKind

__all__ = ["Gesture", "GestureClassifier", "GestureKind"]
