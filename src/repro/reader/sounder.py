"""Fast frame-level channel sounder.

The experiments need seconds of channel estimates (tens of thousands of
frames); synthesising every baseband sample would dominate the runtime
without changing the result, because the DSP consumes only the
per-frame estimates H[k, n].  This sounder generates the estimates
directly::

    H[k, n] = H_clutter[f_k] + G_tag[f_k] * Gamma_tag(t_n, f_k) + w[k, n]

with ``w`` at the analytically equivalent noise level of the
sample-level modem (cross-validated in the tests), plus a quantization
floor from the SDR front end's dynamic range — the effect that forces
the tissue experiment's metal plate (paper section 5.2).

The switch state is sampled mid-preamble; the clocks (1 kHz) are slow
against the frame (57.6 us), so intra-frame switch flips affect well
under 1% of frames and average out in the phase groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.multipath import MultipathChannel
from repro.channel.noise import awgn, channel_estimate_noise_std
from repro.channel.propagation import BackscatterLink
from repro.errors import DynamicRangeError
from repro.faults.inject import armed as fault_armed
from repro.reader.frontend import SDRFrontEnd, USRP_N210
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.tag import TagState, WiForceTag


@dataclass(frozen=True)
class ChannelEstimateStream:
    """A block of periodic channel estimates.

    Attributes:
        estimates: H[n, k], shape (frames, subcarriers).
        times: Estimate timestamps [s], shape (frames,).
        frequencies: Absolute subcarrier frequencies [Hz], shape (K,).
        frame_period: Nominal estimate spacing T [s].
    """

    estimates: np.ndarray
    times: np.ndarray
    frequencies: np.ndarray
    frame_period: float

    def __post_init__(self) -> None:
        if self.estimates.shape != (self.times.size, self.frequencies.size):
            raise ValueError(
                f"estimates shape {self.estimates.shape} does not match "
                f"times ({self.times.size}) x tones ({self.frequencies.size})"
            )

    @property
    def frames(self) -> int:
        """Number of channel estimates."""
        return self.times.size

    @property
    def duration(self) -> float:
        """Capture span [s]."""
        return float(self.times[-1] - self.times[0]) + self.frame_period


def concatenate_streams(*streams: ChannelEstimateStream
                        ) -> ChannelEstimateStream:
    """Join consecutive captures into one continuous stream.

    Used to build time-varying interactions (a press profile) from
    piecewise-static captures: record each force segment with the
    sounder's ``start_time`` continuing where the last segment ended,
    then concatenate for the streaming tracker.

    Raises:
        ValueError: Streams disagree on grid/period or are not
            time-contiguous.
    """
    if not streams:
        raise ValueError("need at least one stream")
    first = streams[0]
    for previous, current in zip(streams, streams[1:]):
        if not np.array_equal(previous.frequencies, current.frequencies):
            raise ValueError("streams have different subcarrier grids")
        if previous.frame_period != current.frame_period:
            raise ValueError("streams have different frame periods")
        gap = current.times[0] - previous.times[-1]
        if not np.isclose(gap, previous.frame_period, rtol=1e-6):
            raise ValueError(
                f"streams are not contiguous: gap of {gap:.3e} s vs frame "
                f"period {previous.frame_period:.3e} s"
            )
    return ChannelEstimateStream(
        estimates=np.concatenate([s.estimates for s in streams]),
        times=np.concatenate([s.times for s in streams]),
        frequencies=first.frequencies.copy(),
        frame_period=first.frame_period,
    )


class FrameLevelSounder:
    """Synthesises channel-estimate streams for a deployed tag.

    Args:
        config: OFDM sounding waveform.
        tag: The backscatter tag under test.
        link: Reader/tag geometry and gains.
        clutter: Static environment multipath (may be ``None`` for an
            anechoic setup; the direct path then still comes from the
            link geometry).
        front_end: SDR receive chain model.
        noise_figure_db: Receiver noise figure [dB].
        tag_phase_jitter_deg_per_sqrt_s: Random-walk phase noise of the
            tag's oscillator [deg per sqrt(second)]; sets the floor on
            phase stability that no amount of SNR removes (Fig. 18).
        rng: Random source.
    """

    def __init__(self, config: OFDMSounderConfig, tag: WiForceTag,
                 link: BackscatterLink,
                 clutter: Optional[MultipathChannel] = None,
                 front_end: SDRFrontEnd = USRP_N210,
                 noise_figure_db: float = 6.0,
                 tag_phase_jitter_deg_per_sqrt_s: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        if tag_phase_jitter_deg_per_sqrt_s < 0.0:
            raise ValueError(
                "tag phase jitter must be >= 0, got "
                f"{tag_phase_jitter_deg_per_sqrt_s}"
            )
        self.config = config
        self.tag = tag
        self.link = link
        self.clutter = clutter
        self.front_end = front_end
        self.noise_figure_db = float(noise_figure_db)
        self.tag_phase_jitter = float(tag_phase_jitter_deg_per_sqrt_s)
        self._jitter_phase = 0.0
        self._rng = rng or np.random.default_rng()
        self._frequencies = config.subcarrier_frequencies()
        self._tag_gain = link.tag_path_gain(self._frequencies)
        self._direct = link.direct_path_gain(self._frequencies)
        if clutter is not None:
            self._static = self._direct + clutter.frequency_response(
                self._frequencies)
        else:
            self._static = self._direct.copy()

    @property
    def frequencies(self) -> np.ndarray:
        """Absolute subcarrier frequencies [Hz]."""
        return self._frequencies.copy()

    def thermal_noise_std(self) -> float:
        """Per-estimate complex noise std from the receiver chain."""
        return channel_estimate_noise_std(
            bandwidth_hz=self.config.bandwidth,
            preamble_samples=self.config.preamble_samples,
            subcarriers=self.config.subcarriers,
            tx_amplitude=self.config.tx_amplitude,
            noise_figure_db=self.noise_figure_db,
        )

    def quantization_noise_std(self) -> float:
        """Quantization floor set by the front end's dynamic range.

        The ADC is scaled to the total received signal (dominated by
        the direct path); everything ``dynamic_range_db`` below that
        level is buried in quantization noise.
        """
        total_power = float(np.mean(np.abs(self._static) ** 2))
        return self.front_end.quantization_floor_amplitude(total_power)

    def effective_noise_std(self) -> float:
        """Combined thermal + quantization noise std per estimate."""
        thermal = self.thermal_noise_std()
        quantization = self.quantization_noise_std()
        return float(np.sqrt(thermal ** 2 + quantization ** 2))

    def tag_signal_std(self, state: TagState) -> float:
        """RMS amplitude of the tag's switching contribution."""
        reflections = self.tag.state_reflections(self._frequencies, state)
        on1 = reflections[(True, False)] - reflections[(False, False)]
        on2 = reflections[(False, True)] - reflections[(False, False)]
        swing = 0.5 * (np.abs(on1) + np.abs(on2))
        return float(np.mean(np.abs(self._tag_gain) * swing))

    def backscatter_snr_db(self, state: TagState) -> float:
        """SNR of the switching tag signal against the effective noise."""
        signal = self.tag_signal_std(state)
        noise = self.effective_noise_std()
        if noise <= 0.0:
            return float("inf")
        return float(20.0 * np.log10(signal / noise))

    def assert_decodable(self, state: TagState,
                         min_snr_db: float = 0.0) -> None:
        """Raise when the tag signal is below the quantization floor.

        Reproduces the paper's section 5.2 failure: the direct path
        saturates the ADC's dynamic range and the backscatter cannot be
        decoded without isolating the direct path.
        """
        signal = self.tag_signal_std(state)
        floor = self.quantization_noise_std()
        if floor > 0.0 and 20.0 * np.log10(
                max(signal, 1e-300) / floor) < min_snr_db:
            raise DynamicRangeError(
                "backscatter signal is below the receiver's quantization "
                f"floor (direct-path dominated); tag RMS {signal:.3e} vs "
                f"floor {floor:.3e}. Isolate the direct path (metal plate) "
                "or reduce its power."
            )

    def capture(self, state: TagState, frames: int,
                start_time: float = 0.0) -> ChannelEstimateStream:
        """Record ``frames`` consecutive channel estimates.

        Args:
            state: Press state held during the capture.
            frames: Number of estimates.
            start_time: Capture start [s] (keeps clock phase continuous
                across consecutive captures).
        """
        times = start_time + self.config.frame_times(frames)
        # Sample the switch state mid-preamble.
        midpoints = times + 0.5 * (self.config.preamble_samples
                                   / self.config.bandwidth)
        clock_fault = snr_fault = None
        inj = fault_armed()
        if inj is not None:
            clock_fault = inj.draw("sensor.clock")
            snr_fault = inj.draw("channel.snr")
        if clock_fault is not None and clock_fault.kind == "duty_jitter":
            # Jitter the switch sampling instants (duty-cycle timing
            # noise); magnitude is the jitter std in frame periods.
            midpoints = midpoints + clock_fault.rng().normal(
                0.0, clock_fault.magnitude * self.config.frame_period,
                frames)
        gamma = self.tag.reflection_series(self._frequencies, midpoints,
                                           state)
        if clock_fault is not None and clock_fault.kind == "drift":
            # Extra oscillator drift: a linear phase ramp over the
            # capture; magnitude is the drift rate in rad/s.
            ramp = clock_fault.magnitude * (times - times[0])
            gamma = gamma * np.exp(1j * ramp)[:, None]
        if self.tag_phase_jitter > 0.0:
            # Oscillator phase wander rotates only the switched (AC)
            # part of the reflection; the off-off state is clock-free.
            step = np.radians(self.tag_phase_jitter) * np.sqrt(
                self.config.frame_period)
            walk = self._jitter_phase + np.cumsum(
                self._rng.normal(0.0, step, frames))
            self._jitter_phase = float(walk[-1])
            resting = self.tag.state_reflections(
                self._frequencies, state)[(False, False)]
            gamma = (resting[None, :]
                     + (gamma - resting[None, :])
                     * np.exp(1j * walk)[:, None])
        estimates = (self._static[None, :]
                     + self._tag_gain[None, :] * gamma)
        noise_std = self.effective_noise_std()
        if snr_fault is not None and snr_fault.kind == "collapse":
            # SNR collapse: the noise floor is multiplied up by the
            # fault magnitude for this capture.
            noise_std = noise_std * snr_fault.magnitude
        if noise_std > 0.0:
            estimates = estimates + awgn(estimates.shape, noise_std ** 2,
                                         self._rng)
        if snr_fault is not None and snr_fault.kind == "interference":
            # Narrowband interferer on one random subcarrier, with
            # amplitude `magnitude` times the RMS static field.
            erng = snr_fault.rng()
            tone = int(erng.integers(self._frequencies.size))
            amplitude = snr_fault.magnitude * float(
                np.mean(np.abs(self._static)))
            phase = erng.uniform(0.0, 2.0 * np.pi, frames)
            if not estimates.flags.writeable:
                estimates = estimates.copy()
            estimates[:, tone] += amplitude * np.exp(1j * phase)
        return ChannelEstimateStream(
            estimates=estimates,
            times=times,
            frequencies=self._frequencies.copy(),
            frame_period=self.config.frame_period,
        )
