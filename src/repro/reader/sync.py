"""Frame synchronization and CFO estimation.

The paper's single-USRP reader shares one clock between TX and RX, so
it needs neither timing search nor carrier-frequency-offset correction
(section 4.4).  A reader split across devices — or a listener deployment
on a commodity AP — does.  This module supplies both pieces at the
sample level: Schmidl-Cox-style repeated-symbol detection (the sounding
preamble is five repeats of one 64-sample symbol, so the metric comes
for free) and the classic repeated-symbol CFO estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReaderError
from repro.reader.waveform import OFDMSounderConfig, generate_preamble


@dataclass(frozen=True)
class SyncResult:
    """Detection outcome for one capture.

    Attributes:
        offset: Sample index where the preamble starts.
        cfo: Estimated carrier frequency offset [Hz].
        metric: Peak detection metric (0-1; ~1 = clean detection).
    """

    offset: int
    cfo: float
    metric: float


class FrameSynchronizer:
    """Detects the sounding preamble and estimates CFO.

    Args:
        config: The sounding waveform description.
        detection_threshold: Minimum correlation metric to accept.
    """

    def __init__(self, config: OFDMSounderConfig,
                 detection_threshold: float = 0.6):
        if not 0.0 < detection_threshold <= 1.0:
            raise ReaderError(
                f"detection threshold must be in (0, 1], got "
                f"{detection_threshold}"
            )
        if config.symbol_repeats < 2:
            raise ReaderError(
                "repetition-based sync needs at least 2 symbol repeats"
            )
        self.config = config
        self.detection_threshold = float(detection_threshold)
        self._template = generate_preamble(config)

    def correlation_metric(self, samples: np.ndarray) -> np.ndarray:
        """Repeated-symbol (Schmidl-Cox) metric at every lag.

        ``|sum x[n] conj(x[n+L])| / sum |x|^2`` over one symbol length
        L — near 1 wherever two consecutive preamble symbols align.
        """
        samples = np.asarray(samples, dtype=complex)
        symbol = self.config.subcarriers
        window = symbol
        if samples.size < 2 * symbol:
            raise ReaderError(
                f"need at least {2 * symbol} samples, got {samples.size}"
            )
        lags = samples.size - 2 * symbol + 1
        metric = np.empty(lags)
        product = samples[:-symbol] * np.conj(samples[symbol:])
        energy = np.abs(samples) ** 2
        correlation = np.convolve(product, np.ones(window), mode="valid")
        power = np.convolve(energy[:-symbol] + energy[symbol:],
                            0.5 * np.ones(window), mode="valid")
        metric = np.abs(correlation[:lags]) / np.maximum(power[:lags],
                                                         1e-300)
        return metric

    def detect(self, samples: np.ndarray) -> SyncResult:
        """Find the preamble and estimate CFO.

        Raises:
            ReaderError: No correlation peak above the threshold.
        """
        samples = np.asarray(samples, dtype=complex)
        metric = self.correlation_metric(samples)
        peak = int(np.argmax(metric))
        if metric[peak] < self.detection_threshold:
            raise ReaderError(
                f"no preamble found: best metric {metric[peak]:.3f} below "
                f"threshold {self.detection_threshold}"
            )
        # The metric is flat across the repeated region; take the first
        # index within 1% of the peak as the frame start.
        plateau = np.flatnonzero(metric >= 0.99 * metric[peak])
        offset = int(plateau[0])
        cfo = self.estimate_cfo(samples, offset)
        return SyncResult(offset=offset, cfo=cfo, metric=float(metric[peak]))

    def estimate_cfo(self, samples: np.ndarray, offset: int = 0) -> float:
        """Repeated-symbol CFO estimate [Hz].

        The phase of ``sum x[n] conj(x[n+L])`` over the preamble equals
        ``-2 pi cfo L / fs``; unambiguous for |cfo| < fs / (2 L)
        (±97.6 kHz for the paper's waveform).
        """
        samples = np.asarray(samples, dtype=complex)
        symbol = self.config.subcarriers
        span = self.config.preamble_samples - symbol
        if offset < 0 or offset + self.config.preamble_samples > samples.size:
            raise ReaderError(
                f"offset {offset} leaves no room for the preamble"
            )
        head = samples[offset:offset + span]
        tail = samples[offset + symbol:offset + symbol + span]
        rotation = np.sum(tail * np.conj(head))
        if rotation == 0:
            raise ReaderError("zero energy in the preamble window")
        return float(np.angle(rotation) * self.config.bandwidth
                     / (2.0 * np.pi * symbol))

    @property
    def max_cfo(self) -> float:
        """Largest unambiguous CFO [Hz]."""
        return self.config.bandwidth / (2.0 * self.config.subcarriers)


def apply_cfo(samples: np.ndarray, cfo: float,
              sample_rate: float) -> np.ndarray:
    """Impart a carrier frequency offset onto baseband samples."""
    if sample_rate <= 0.0:
        raise ReaderError(f"sample rate must be positive, got {sample_rate}")
    samples = np.asarray(samples, dtype=complex)
    n = np.arange(samples.size)
    return samples * np.exp(2j * np.pi * cfo * n / sample_rate)


def correct_cfo(samples: np.ndarray, cfo: float,
                sample_rate: float) -> np.ndarray:
    """Remove an estimated CFO from baseband samples."""
    return apply_cfo(samples, -cfo, sample_rate)
