"""Sample-level OFDM channel-sounding modem.

The slow-but-faithful path: modulates the actual preamble, runs it
through a frequency response (the channel is static within one 57.6 us
frame — the switching clocks are three orders of magnitude slower),
adds thermal noise at the receiver, and least-squares-estimates the
channel from the known tones, averaging the repeated symbols.

The fast frame-level sounder (:mod:`repro.reader.sounder`) must agree
with this modem — a cross-validation test in the suite enforces it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.noise import awgn
from repro.errors import ReaderError
from repro.reader.waveform import (
    OFDMSounderConfig,
    generate_preamble,
    preamble_tones,
)
from repro.units import thermal_noise_power


class OFDMModem:
    """Transmit/receive pair for one sounding frame.

    Args:
        config: Waveform description.
        noise_figure_db: Receiver noise figure [dB].
        rng: Random source for the noise.
    """

    def __init__(self, config: OFDMSounderConfig,
                 noise_figure_db: float = 6.0,
                 rng: Optional[np.random.Generator] = None):
        self.config = config
        self.noise_figure_db = float(noise_figure_db)
        self._rng = rng or np.random.default_rng()
        self._preamble = generate_preamble(config)
        self._tones = preamble_tones(config)

    @property
    def preamble(self) -> np.ndarray:
        """The transmitted preamble (time domain, copy)."""
        return self._preamble.copy()

    def received_preamble(self, channel_response: np.ndarray) -> np.ndarray:
        """Pass the preamble through a per-subcarrier channel response.

        Args:
            channel_response: Complex response on the subcarrier grid in
                ascending-frequency order, shape (subcarriers,).

        Returns:
            Noisy received preamble samples.
        """
        n = self.config.subcarriers
        response = np.asarray(channel_response, dtype=complex)
        if response.shape != (n,):
            raise ReaderError(
                f"channel response must have shape ({n},), got "
                f"{response.shape}"
            )
        # The preamble is periodic with period n, so per-symbol circular
        # convolution is exact; apply the channel tone-by-tone.
        response_fft_order = np.fft.ifftshift(response)
        symbol = self._preamble[:n]
        symbol_spectrum = np.fft.fft(symbol)
        received_symbol = np.fft.ifft(symbol_spectrum * response_fft_order)
        received = np.tile(received_symbol, self.config.symbol_repeats)
        noise_power = thermal_noise_power(self.config.bandwidth,
                                          self.noise_figure_db)
        return received + awgn(received.shape, noise_power, self._rng)

    def estimate_channel(self, received: np.ndarray) -> np.ndarray:
        """LS channel estimate from one received preamble.

        Averages the repeated symbols, divides by the known tones, and
        returns the estimate in ascending-frequency order.
        """
        n = self.config.subcarriers
        repeats = self.config.symbol_repeats
        received = np.asarray(received, dtype=complex)
        if received.shape != (n * repeats,):
            raise ReaderError(
                f"received preamble must have shape ({n * repeats},), got "
                f"{received.shape}"
            )
        symbols = received.reshape(repeats, n)
        averaged = symbols.mean(axis=0)
        spectrum = np.fft.fft(averaged)
        tx_spectrum = np.fft.fft(self._preamble[:n])
        estimate = spectrum / tx_spectrum
        return np.fft.fftshift(estimate)

    def sound_once(self, channel_response: np.ndarray) -> np.ndarray:
        """One complete sounding: TX -> channel -> RX -> LS estimate."""
        received = self.received_preamble(channel_response)
        return self.estimate_channel(received)

    def sound_many(self, channel_responses: np.ndarray) -> np.ndarray:
        """Batched sounding: many frames through the modem at once.

        Equivalent in distribution to mapping :meth:`sound_once` over
        the rows, but every per-frame FFT collapses into one batched
        transform and the receiver noise is one fused draw — the
        sample-level analogue of the batched frame sounder.  The RNG
        draw order differs from a sequential :meth:`sound_once` loop
        (one interleaved complex draw instead of per-frame pairs), so
        results match the loop statistically, not bitwise.

        Args:
            channel_responses: Complex responses on the subcarrier grid
                in ascending-frequency order, shape (frames,
                subcarriers).

        Returns:
            LS channel estimates, shape (frames, subcarriers).
        """
        n = self.config.subcarriers
        repeats = self.config.symbol_repeats
        responses = np.asarray(channel_responses, dtype=complex)
        if responses.ndim != 2 or responses.shape[1] != n:
            raise ReaderError(
                f"channel responses must have shape (frames, {n}), got "
                f"{responses.shape}"
            )
        frames = responses.shape[0]
        response_fft_order = np.fft.ifftshift(responses, axes=-1)
        symbol_spectrum = np.fft.fft(self._preamble[:n])
        received_symbols = np.fft.ifft(
            symbol_spectrum[None, :] * response_fft_order, axis=-1)
        noise_power = thermal_noise_power(self.config.bandwidth,
                                          self.noise_figure_db)
        noise = self._rng.standard_normal(
            2 * frames * repeats * n).view(np.complex128).reshape(
            frames, repeats, n) * np.sqrt(noise_power / 2.0)
        # The preamble repeats one symbol, so the LS estimate only
        # needs the symbol-averaged noise; average before the FFT.
        averaged = received_symbols + noise.mean(axis=1)
        spectrum = np.fft.fft(averaged, axis=-1)
        tx_spectrum = np.fft.fft(self._preamble[:n])
        return np.fft.fftshift(spectrum / tx_spectrum[None, :], axes=-1)

    def estimate_noise_std(self) -> float:
        """Predicted per-subcarrier channel-estimate noise std.

        Analytic counterpart used by the frame-level sounder; the
        cross-validation test compares a Monte-Carlo estimate from this
        modem against this prediction.
        """
        noise = thermal_noise_power(self.config.bandwidth,
                                    self.noise_figure_db)
        per_tone_power = (np.abs(self._preamble[:self.config.subcarriers]) ** 2
                          ).mean() * self.config.subcarriers
        averaging = self.config.symbol_repeats
        return float(np.sqrt(noise * self.config.subcarriers
                             / (averaging * per_tone_power)))
