"""Batched vectorized sounding: the simulator's fast cold path.

One cold campaign pushes ~337k OFDM frames through
:meth:`repro.reader.sounder.FrameLevelSounder.capture`; profiling shows
the per-capture cost is dominated by the per-frame AWGN draw (two
``(frames, K)`` Gaussian arrays per capture) with the rest spent on
repeated broadcast passes over the ``(frames, K)`` estimate block.
This module restructures that hot loop into batched array form:

* :meth:`FastSounder.capture_batch` synthesises many consecutive
  captures as **one fused array operation** over the concatenated
  ``[captures x frames x subcarriers]`` block: a single gather from
  the tag's batched state tables
  (:meth:`repro.sensor.tag.WiForceTag.reflection_table`), clock-phase
  walks via cumulative sums over the concatenated capture axis, and a
  single AWGN draw for the whole batch.
* :meth:`FastSounder.capture_matrices` goes further for the reader
  pipeline: the phase-group extraction
  (:class:`repro.core.harmonics.HarmonicExtractor`) only consumes the
  per-group DFT bins at the readout tones, and white Gaussian noise is
  invariant under that (unitary) projection — so the fast path
  evaluates the group DFT **analytically** from per-state coefficient
  sums (an ``O(frames)`` scalar reduction plus a rank-4 matmul) and
  draws the noise directly at the group level:
  ``groups x tones x K`` Gaussians instead of ``frames x K``.  For a
  rectangular window with integer-period groups this is exactly
  equivalent in distribution (see DESIGN.md "Batched sounder" for the
  proof sketch and the RNG-stream contract).

Parity contract (enforced by ``tests/test_fast_sounder.py``):

* ``FastSounder.capture`` (single capture) preserves the oracle's RNG
  draw order and floating-point operation order — **bit-identical** to
  :class:`FrameLevelSounder`, including under armed fault plans.
* ``capture_batch`` reorders RNG draws (walks first, one fused noise
  draw) — bit-identical when the sounder consumes no randomness
  (``tag_phase_jitter = 0`` and zero noise), bounded-delta otherwise.
* ``capture_matrices`` is bounded-delta: statistically exact, with the
  tolerance justified in DESIGN.md.

Fault sites fire identically per-capture in every batched path: the
injector's ``sensor.clock`` and ``channel.snr`` sites are drawn once
per capture in capture order, exactly as a sequential oracle run
would, so chaos replay stays bit-deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, ReaderError
from repro.faults.inject import armed as fault_armed
from repro.obs.registry import active, maybe_span
from repro.reader._kernels import HAVE_NUMBA, accumulate_harmonics
from repro.reader.sounder import ChannelEstimateStream, FrameLevelSounder
from repro.sensor.tag import TagState

__all__ = ["FastSounder", "SOUNDER_KINDS", "resolve_sounder"]


class FastSounder(FrameLevelSounder):
    """Drop-in vectorized replacement for :class:`FrameLevelSounder`.

    Same constructor, same physics, same noise model; the synthesis is
    restructured for throughput.  The oracle remains available behind
    the ``sounder="oracle"`` switch of the system builders for
    bit-level verification.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Memoized per (frames,): arange(frames) * frame_period.
        self._time_base: Dict[int, np.ndarray] = {}
        # Memoized per (tone, frames, group_length, remove_mean):
        # mean-removed normalized DFT weights, their per-group sums,
        # and the per-group noise variance factor.
        self._basis_cache: Dict[Tuple[float, int, int, bool],
                                Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # shared helpers

    def _frame_base(self, frames: int) -> np.ndarray:
        """``arange(frames) * frame_period`` (cached, read-only)."""
        base = self._time_base.get(frames)
        if base is None:
            base = self.config.frame_times(frames)
            base.setflags(write=False)
            self._time_base[frames] = base
        return base

    def _draw_capture_faults(self, count: int) -> List[Tuple]:
        """One ``(sensor.clock, channel.snr)`` draw pair per capture.

        Drawn in capture order so the injector's site visit counters
        advance exactly as they would for ``count`` sequential oracle
        captures — the chaos-replay invariant.
        """
        inj = fault_armed()
        if inj is None:
            return [(None, None)] * count
        return [(inj.draw("sensor.clock"), inj.draw("channel.snr"))
                for _ in range(count)]

    # ------------------------------------------------------------------
    # stream synthesis (single + batched)

    def capture(self, state: TagState, frames: int,
                start_time: float = 0.0) -> ChannelEstimateStream:
        """One capture, bit-identical to the oracle sounder.

        RNG draws follow the oracle order (jitter walk, then the two
        AWGN component arrays) and every floating-point operation is
        applied in the oracle's order, so the returned stream matches
        :meth:`FrameLevelSounder.capture` bit for bit — including
        under armed fault plans.
        """
        return self._synthesize([state], [frames], start_time,
                                fused_rng=False)[0]

    def capture_batch(self, states: Sequence[TagState],
                      frames: Union[int, Sequence[int]],
                      start_time: float = 0.0
                      ) -> List[ChannelEstimateStream]:
        """Record consecutive captures as one fused array operation.

        Captures are time-contiguous: capture ``c`` starts where
        capture ``c - 1`` ended, exactly as a sequential protocol
        driving :meth:`capture` with a running clock.

        Args:
            states: Press state held during each capture.
            frames: Frame count per capture (scalar applies to all).
            start_time: Start of the first capture [s].

        Returns:
            One :class:`ChannelEstimateStream` per state.  The streams
            are views into one contiguous batch buffer — treat them as
            immutable (every downstream mutator copies first).
        """
        if not states:
            raise ConfigurationError("need at least one capture state")
        if isinstance(frames, (int, np.integer)):
            per_frames = [int(frames)] * len(states)
        else:
            per_frames = [int(value) for value in frames]
            if len(per_frames) != len(states):
                raise ConfigurationError(
                    f"got {len(states)} states but {len(per_frames)} "
                    f"frame counts")
        with maybe_span("reader.capture_batch",
                        {"captures": len(states),
                         "frames": sum(per_frames)}):
            streams = self._synthesize(list(states), per_frames, start_time,
                                       fused_rng=True)
        obs = active()
        if obs is not None:
            obs.counter("reader.batched_captures").increment(len(states))
            obs.histogram(
                "reader.batch_frames",
                (1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6),
            ).observe(float(sum(per_frames)))
        return streams

    def _synthesize(self, states: List[TagState], per_frames: List[int],
                    start_time: float,
                    fused_rng: bool) -> List[ChannelEstimateStream]:
        """The batched kernel behind both stream entry points.

        ``fused_rng=False`` preserves the oracle's per-capture RNG
        draw order (bit-parity mode); ``fused_rng=True`` draws all
        clock-walk steps once and all noise as a single fused draw.
        """
        for count in per_frames:
            if count < 1:
                raise ConfigurationError(f"frames must be >= 1, got {count}")
        period = self.config.frame_period
        k_tones = self._frequencies.size
        # Capture offsets accumulate exactly like a sequential driver's
        # running clock (`clock += frames * period`) so batch timestamps
        # are bit-identical to sequential oracle captures.
        offsets = np.empty(len(per_frames))
        clock = start_time
        for index, count in enumerate(per_frames):
            offsets[index] = clock
            clock = clock + count * period
        bounds = np.concatenate(([0], np.cumsum(per_frames)))
        total = int(bounds[-1])
        mid_shift = 0.5 * (self.config.preamble_samples
                           / self.config.bandwidth)

        times = np.empty(total, dtype=float)
        for index, count in enumerate(per_frames):
            times[bounds[index]:bounds[index + 1]] = (
                offsets[index] + self._frame_base(count))
        midpoints = times + mid_shift

        faults = self._draw_capture_faults(len(states))
        for index, (clock_fault, _) in enumerate(faults):
            if clock_fault is not None and clock_fault.kind == "duty_jitter":
                span = slice(bounds[index], bounds[index + 1])
                midpoints[span] = midpoints[span] + clock_fault.rng().normal(
                    0.0, clock_fault.magnitude * period, per_frames[index])

        # Batched tag state evaluation: one gather over the stacked
        # per-state tables, indexed by 4 * state_slot + switch_index.
        slots: Dict[Tuple[float, float], int] = {}
        capture_slot = np.empty(len(states), dtype=np.int64)
        unique_states: List[TagState] = []
        for index, state in enumerate(states):
            key = (state.force, state.location)
            slot = slots.get(key)
            if slot is None:
                slot = len(unique_states)
                slots[key] = slot
                unique_states.append(state)
            capture_slot[index] = slot
        tables = self.tag.reflection_table(self._frequencies, unique_states)
        flat_tables = tables.reshape(-1, k_tones)
        switch_index = self.tag.state_indices(midpoints)
        rows = switch_index + 4 * np.repeat(capture_slot, per_frames)
        gamma = flat_tables[rows]

        for index, (clock_fault, _) in enumerate(faults):
            if clock_fault is not None and clock_fault.kind == "drift":
                span = slice(bounds[index], bounds[index + 1])
                ramp = clock_fault.magnitude * (
                    times[span] - times[bounds[index]])
                gamma[span] = gamma[span] * np.exp(1j * ramp)[:, None]

        if self.tag_phase_jitter > 0.0:
            step = np.radians(self.tag_phase_jitter) * np.sqrt(period)
            if fused_rng:
                steps = self._rng.normal(0.0, step, total)
            for index in range(len(states)):
                span = slice(bounds[index], bounds[index + 1])
                if not fused_rng:
                    walk = self._jitter_phase + np.cumsum(
                        self._rng.normal(0.0, step, per_frames[index]))
                else:
                    walk = self._jitter_phase + np.cumsum(steps[span])
                self._jitter_phase = float(walk[-1])
                resting = tables[capture_slot[index], 0]
                # In-place on the gamma view, preserving the oracle's
                # operand order: IEEE-754 addition reorders bitwise,
                # but numpy's complex multiply does NOT commute at the
                # bit level (broadcast operand order selects different
                # inner loops), so the multiply goes through
                # ``np.multiply(..., out=)`` with the oracle's operand
                # order.  The batch block is bigger than L2, so every
                # avoided block-sized temporary is a real win.
                block = gamma[span]
                block -= resting[None, :]
                np.multiply(block, np.exp(1j * walk)[:, None], out=block)
                block += resting[None, :]

        # `static + gain * gamma` evaluated in place on gamma (freshly
        # gathered, so we own it): same bits, no batch-sized temps.
        np.multiply(self._tag_gain[None, :], gamma, out=gamma)
        gamma += self._static[None, :]
        estimates = gamma

        base_std = self.effective_noise_std()
        scales = np.full(len(states), base_std)
        for index, (_, snr_fault) in enumerate(faults):
            if snr_fault is not None and snr_fault.kind == "collapse":
                scales[index] = scales[index] * snr_fault.magnitude
        if base_std > 0.0:
            if fused_rng:
                # Single AWGN draw for the whole batch; interleaved
                # real/imag components via a complex view.
                noise = self._rng.standard_normal(2 * total * k_tones).view(
                    np.complex128).reshape(total, k_tones)
                if np.all(scales == scales[0]):
                    noise *= np.sqrt(scales[0] ** 2 / 2.0)
                else:
                    for index in range(len(states)):
                        span = slice(bounds[index], bounds[index + 1])
                        noise[span] *= np.sqrt(scales[index] ** 2 / 2.0)
                estimates += noise
            else:
                for index in range(len(states)):
                    if not scales[index] > 0.0:
                        continue  # oracle skips the draw entirely
                    span = slice(bounds[index], bounds[index + 1])
                    shape = (per_frames[index], k_tones)
                    scale = np.sqrt(scales[index] ** 2 / 2.0)
                    estimates[span] += (
                        self._rng.normal(0.0, 1.0, shape)
                        + 1j * self._rng.normal(0.0, 1.0, shape)) * scale

        for index, (_, snr_fault) in enumerate(faults):
            if snr_fault is not None and snr_fault.kind == "interference":
                span = slice(bounds[index], bounds[index + 1])
                erng = snr_fault.rng()
                tone = int(erng.integers(self._frequencies.size))
                amplitude = snr_fault.magnitude * float(
                    np.mean(np.abs(self._static)))
                phase = erng.uniform(0.0, 2.0 * np.pi, per_frames[index])
                estimates[bounds[index]:bounds[index + 1], tone] += (
                    amplitude * np.exp(1j * phase))

        return [
            ChannelEstimateStream(
                estimates=estimates[bounds[index]:bounds[index + 1]],
                times=times[bounds[index]:bounds[index + 1]],
                frequencies=self._frequencies.copy(),
                frame_period=period,
            )
            for index in range(len(states))
        ]

    # ------------------------------------------------------------------
    # harmonic-domain fast path

    def supports_matrices(self, extractor) -> bool:
        """Whether :meth:`capture_matrices` can stand in for
        ``extract(capture(...))`` for this extractor.

        Requires the rectangular window with integer-period groups
        (the default configuration): the readout tones must land on
        distinct non-DC DFT bins of the group, which is what makes the
        group-level noise draw exactly equivalent.
        """
        if extractor.window != "rect":
            return False
        length = extractor.group_length
        period = self.config.frame_period
        bins = []
        for tone in extractor.tones:
            if tone * period > 0.5:  # beyond Nyquist
                return False
            cycles = tone * length * period
            if abs(cycles - round(cycles)) > 1e-9 * max(1.0, cycles):
                return False
            bins.append(int(round(cycles)) % length)
        if 0 in bins or len(set(bins)) != len(bins):
            return False
        return True

    def _tone_basis(self, tone: float, frames: int, group_length: int,
                    remove_mean: bool
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Normalized (mean-removed) DFT weights for one readout tone.

        Returns ``(weights, group_sums, variance_factor)`` where
        ``weights`` are the per-frame complex weights the extractor
        would apply to a capture starting at t=0, ``group_sums`` their
        per-group totals before mean removal, and ``variance_factor``
        the per-group ``sum |w|^2`` that scales the group-level noise.
        """
        key = (tone, frames, group_length, remove_mean)
        cached = self._basis_cache.get(key)
        if cached is not None:
            return cached
        groups = frames // group_length
        base = self._frame_base(frames)
        weights = np.exp(-2j * np.pi * tone * base) / group_length
        sums = weights.reshape(groups, group_length).sum(axis=1)
        if remove_mean:
            weights = weights - np.repeat(sums / group_length, group_length)
        variance = np.abs(weights.reshape(groups, group_length)
                          ) ** 2
        variance = variance.sum(axis=1)
        weights.setflags(write=False)
        sums.setflags(write=False)
        variance.setflags(write=False)
        self._basis_cache[key] = (weights, sums, variance)
        return weights, sums, variance

    def capture_matrices(self, state: TagState, groups: int, extractor,
                         start_time: float = 0.0):
        """Fused capture + harmonic extraction for one press state.

        Equivalent to ``extractor.extract(self.capture(state, groups *
        extractor.group_length, start_time))`` in distribution, at a
        fraction of the cost: the per-group readout-tone DFT is
        evaluated analytically from per-state coefficient sums, and
        the receiver noise — white, circular, Gaussian — is drawn
        directly at the group level where the unitary DFT projection
        leaves it i.i.d.

        Raises:
            ReaderError: The extractor configuration is outside the
                fast path's support (use :meth:`supports_matrices`).
        """
        from repro.core.harmonics import HarmonicMatrix

        if groups < 1:
            raise ReaderError(f"groups must be >= 1, got {groups}")
        if not self.supports_matrices(extractor):
            raise ReaderError(
                "extractor configuration outside the fast harmonic path "
                "(needs rect window and integer-period readout tones)")
        length = extractor.group_length
        frames = groups * length
        period = self.config.frame_period
        base = self._frame_base(frames)
        times = start_time + base
        midpoints = times + 0.5 * (self.config.preamble_samples
                                   / self.config.bandwidth)
        table = self.tag.state_table(self._frequencies, state)
        delta = table - table[0][None, :]
        switch_index = self.tag.state_indices(midpoints)

        rotation: Optional[np.ndarray] = None
        if self.tag_phase_jitter > 0.0:
            step = np.radians(self.tag_phase_jitter) * np.sqrt(period)
            walk = self._jitter_phase + np.cumsum(
                self._rng.normal(0.0, step, frames))
            self._jitter_phase = float(walk[-1])
            rotation = np.exp(1j * walk)

        resting_field = self._static + self._tag_gain * table[0]
        bins = switch_index + 4 * (np.arange(frames) // length)
        noise_std = self.effective_noise_std()
        group_times = times.reshape(groups, length).mean(axis=1)

        result: Dict[float, HarmonicMatrix] = {}
        for tone in extractor.tones:
            weights, sums, variance = self._tone_basis(
                tone, frames, length, extractor.remove_mean)
            if rotation is not None:
                weights = weights * rotation
            coefficients = accumulate_harmonics(
                bins, weights, 4 * groups).reshape(groups, 4)
            values = self._tag_gain[None, :] * (coefficients @ delta)
            if not extractor.remove_mean:
                values = values + sums[:, None] * resting_field[None, :]
            # The capture's absolute start rotates every DFT weight by
            # a common factor; the noise is circular so only the
            # signal needs it.
            values = values * np.exp(-2j * np.pi * tone * start_time)
            if noise_std > 0.0:
                scale = np.sqrt(noise_std ** 2 * variance / 2.0)[:, None]
                values = values + scale * (
                    self._rng.normal(0.0, 1.0, values.shape)
                    + 1j * self._rng.normal(0.0, 1.0, values.shape))
            result[tone] = HarmonicMatrix(tone=tone, values=values,
                                          group_times=group_times)
        obs = active()
        if obs is not None:
            obs.counter("reader.harmonic_captures").increment()
            obs.counter("reader.harmonic_frames").increment(frames)
        return result


#: The sounder switch exposed by the system builders.
SOUNDER_KINDS = ("fast", "oracle")


def resolve_sounder(kind: str):
    """Map a ``sounder=`` switch value to its class.

    ``"fast"`` is the batched default; ``"oracle"`` selects the
    bit-level verification sounder.
    """
    if kind == "fast":
        return FastSounder
    if kind == "oracle":
        return FrameLevelSounder
    raise ConfigurationError(
        f"unknown sounder kind {kind!r}; choose from {SOUNDER_KINDS}")
