"""Optional compiled kernels for the batched sounder hot loop.

The batched fast path (:mod:`repro.reader.batch`) is pure numpy; the
one loop that resists full vectorization is the per-frame harmonic
coefficient accumulation — a scatter-add of complex weights into
``(group, switch-state)`` bins.  Numpy covers it with two
:func:`numpy.bincount` calls (real and imaginary parts); when numba is
importable the same accumulation runs as a single fused jit loop.

The numba path is strictly optional and strictly behind the numpy
fallback:

* ``REPRO_NUMBA=0`` disables it outright (the kill switch — use it
  when bit-reproducible replay across machines matters more than
  speed, since jitted floating-point reductions may round differently
  from the numpy reference).
* An absent or broken numba import silently selects the numpy path;
  nothing in the repo depends on numba being installed.

:data:`HAVE_NUMBA` reports which implementation is live so tests and
run manifests can record it.
"""

from __future__ import annotations

import os

import numpy as np

#: Whether the jitted kernels are active for this process.
HAVE_NUMBA = False

_numba = None
if os.environ.get("REPRO_NUMBA", "1") != "0":
    try:  # pragma: no cover - exercised only where numba is installed
        import numba as _numba

        HAVE_NUMBA = True
    except Exception:  # pragma: no cover - import guard
        _numba = None
        HAVE_NUMBA = False


def _accumulate_numpy(bins: np.ndarray, weights: np.ndarray,
                      n_bins: int) -> np.ndarray:
    """Sum complex ``weights`` into ``n_bins`` bins (numpy reference)."""
    real = np.bincount(bins, weights=weights.real, minlength=n_bins)
    imag = np.bincount(bins, weights=weights.imag, minlength=n_bins)
    return real + 1j * imag


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @_numba.njit(cache=True)
    def _accumulate_jit(bins, weights, n_bins):  # type: ignore[no-redef]
        out = np.zeros(n_bins, dtype=np.complex128)
        for n in range(bins.size):
            out[bins[n]] += weights[n]
        return out

    def accumulate_harmonics(bins: np.ndarray, weights: np.ndarray,
                             n_bins: int) -> np.ndarray:
        """Scatter-add complex weights into bins (jitted)."""
        return _accumulate_jit(np.ascontiguousarray(bins, dtype=np.int64),
                               np.ascontiguousarray(weights,
                                                    dtype=np.complex128),
                               n_bins)

else:

    def accumulate_harmonics(bins: np.ndarray, weights: np.ndarray,
                             n_bins: int) -> np.ndarray:
        """Scatter-add complex weights into bins (numpy fallback)."""
        return _accumulate_numpy(bins, weights, n_bins)
