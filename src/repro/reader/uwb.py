"""Impulse-radio UWB channel sounder — the third waveform of section 3.3.

The paper lists UWB alongside FMCW and OFDM as waveforms the algorithm
runs on, since all it needs is periodic wideband channel estimates.  An
impulse radio transmits a short pulse every repetition interval and
correlates the return against the pulse template; the FFT of the
estimated channel impulse response is exactly the H[k, n] snapshot the
phase-group processing consumes — here with hundreds of MHz of span
instead of OFDM's 12.5 MHz, i.e. far more subcarriers to average over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.multipath import MultipathChannel
from repro.channel.noise import awgn
from repro.channel.propagation import BackscatterLink
from repro.errors import ConfigurationError
from repro.reader.sounder import ChannelEstimateStream
from repro.sensor.tag import TagState, WiForceTag
from repro.units import thermal_noise_power


@dataclass(frozen=True)
class UWBSounderConfig:
    """Impulse-radio sounding parameters.

    Attributes:
        carrier_frequency: Band centre [Hz] (3.5-6.5 GHz typical).
        bandwidth: Pulse bandwidth [Hz] (>= 500 MHz for regulatory UWB).
        bins: Frequency bins of the estimated response.
        pulse_repetition_interval: Time between sounding pulses [s].
        pulses_per_estimate: Pulses coherently averaged into one
            channel estimate.
        tx_power_dbm: Average transmit power [dBm] (UWB masks are low).
    """

    carrier_frequency: float = 4e9
    bandwidth: float = 500e6
    bins: int = 256
    pulse_repetition_interval: float = 1e-6
    pulses_per_estimate: int = 57
    tx_power_dbm: float = -10.0

    def __post_init__(self) -> None:
        if self.carrier_frequency <= 0.0 or self.bandwidth <= 0.0:
            raise ConfigurationError(
                "carrier frequency and bandwidth must be positive"
            )
        if self.bandwidth >= 2.0 * self.carrier_frequency:
            raise ConfigurationError("bandwidth exceeds the band centre")
        if self.bins < 8:
            raise ConfigurationError(f"need >= 8 bins, got {self.bins}")
        if self.pulse_repetition_interval <= 0.0:
            raise ConfigurationError("PRI must be positive")
        if self.pulses_per_estimate < 1:
            raise ConfigurationError(
                f"need >= 1 pulse per estimate, got "
                f"{self.pulses_per_estimate}"
            )

    @property
    def estimate_period(self) -> float:
        """Channel-estimate repetition period [s]."""
        return self.pulse_repetition_interval * self.pulses_per_estimate

    @property
    def max_harmonic_frequency(self) -> float:
        """Nyquist limit on observable switching tones [Hz]."""
        return 0.5 / self.estimate_period

    def bin_frequencies(self) -> np.ndarray:
        """Absolute frequency of each response bin [Hz]."""
        k = np.arange(self.bins) - self.bins // 2
        return self.carrier_frequency + k * (self.bandwidth / self.bins)

    @property
    def tx_amplitude(self) -> float:
        """RMS transmit amplitude [sqrt(W)]."""
        return float(np.sqrt(10.0 ** (self.tx_power_dbm / 10.0) * 1e-3))


class UWBSounder:
    """Synthesises per-estimate channel snapshots from pulse trains.

    All bins of one estimate are sampled effectively simultaneously
    (the pulse is nanoseconds long), so unlike FMCW there is no
    intra-estimate stagger; the cost is the low UWB power mask, paid
    back by coherent pulse averaging and the huge subcarrier count.
    """

    def __init__(self, config: UWBSounderConfig, tag: WiForceTag,
                 link: BackscatterLink,
                 clutter: Optional[MultipathChannel] = None,
                 noise_figure_db: float = 6.0,
                 rng: Optional[np.random.Generator] = None):
        self.config = config
        self.tag = tag
        self.link = link
        self.clutter = clutter
        self.noise_figure_db = float(noise_figure_db)
        self._rng = rng or np.random.default_rng()
        self._frequencies = config.bin_frequencies()
        self._tag_gain = link.tag_path_gain(self._frequencies)
        static = link.direct_path_gain(self._frequencies)
        if clutter is not None:
            static = static + clutter.frequency_response(self._frequencies)
        self._static = static

    def estimate_noise_std(self) -> float:
        """Per-bin complex noise std of one averaged estimate.

        Thermal noise over the full pulse bandwidth, split across the
        bins and averaged down by the coherent pulse count.
        """
        noise = thermal_noise_power(self.config.bandwidth,
                                    self.noise_figure_db)
        per_bin = noise / self.config.bins
        averaged = per_bin / self.config.pulses_per_estimate
        return float(np.sqrt(averaged) / self.config.tx_amplitude
                     * np.sqrt(self.config.bins))

    def capture(self, state: TagState, estimates: int,
                start_time: float = 0.0) -> ChannelEstimateStream:
        """Record ``estimates`` consecutive channel snapshots."""
        if estimates < 1:
            raise ConfigurationError(
                f"estimates must be >= 1, got {estimates}"
            )
        times = start_time + np.arange(estimates) * self.config.estimate_period
        midpoints = times + 0.5 * self.config.estimate_period
        # One gather from the tag's 4-state table covers the whole
        # pulse train (all bins sample the same instant per estimate).
        lookup = self.tag.state_table(self._frequencies, state)
        gamma = lookup[self.tag.state_indices(midpoints)]
        values = self._static[None, :] + self._tag_gain[None, :] * gamma
        noise_std = self.estimate_noise_std()
        if noise_std > 0.0:
            values = values + awgn(values.shape, noise_std ** 2, self._rng)
        return ChannelEstimateStream(
            estimates=values,
            times=times,
            frequencies=self._frequencies.copy(),
            frame_period=self.config.estimate_period,
        )
