"""Wireless reader substrate: waveforms, sounding, SDR front end.

The reader transmits a wideband waveform and extracts periodic channel
estimates H[k, n] (paper section 4.4: 64-subcarrier, 12.5 MHz OFDM with
a fresh estimate every 60 us).  Three fidelity levels are provided and
cross-validated in the tests: a sample-level OFDM modem, a frame-level
sounder that synthesises the channel-estimate stream directly (the
bit-level verification oracle), and a batched fast sounder that fuses
captures — and, for the reader pipeline, the harmonic extraction —
into single array operations (the production default).  An FMCW
sounder demonstrates the waveform-agnostic claim of section 3.3, and
the front-end model enforces the USRP's dynamic-range limit that
drives the tissue experiment's metal-plate isolation (section 5.2).
"""

from repro.reader.waveform import OFDMSounderConfig, generate_preamble
from repro.reader.ofdm import OFDMModem
from repro.reader.sounder import (ChannelEstimateStream, FrameLevelSounder,
                                  concatenate_streams)
from repro.reader.batch import FastSounder, SOUNDER_KINDS, resolve_sounder
from repro.reader.fmcw import FMCWSounderConfig, FMCWSounder
from repro.reader.frontend import SDRFrontEnd, USRP_N210
from repro.reader.sync import FrameSynchronizer, SyncResult, apply_cfo, correct_cfo
from repro.reader.uwb import UWBSounder, UWBSounderConfig

__all__ = [
    "OFDMSounderConfig",
    "generate_preamble",
    "OFDMModem",
    "ChannelEstimateStream",
    "FrameLevelSounder",
    "FastSounder",
    "SOUNDER_KINDS",
    "resolve_sounder",
    "FMCWSounderConfig",
    "FMCWSounder",
    "SDRFrontEnd",
    "USRP_N210",
    "concatenate_streams",
    "FrameSynchronizer",
    "SyncResult",
    "apply_cfo",
    "correct_cfo",
    "UWBSounder",
    "UWBSounderConfig",
]
