"""SDR front-end model (USRP N210 class).

Captures the receive-chain properties the paper's evaluation leans on:
finite dynamic range (≈60 dB for the USRP's ADC chain), which buries
the backscatter under quantization noise when the direct path is too
strong (the tissue experiment's reason for the metal plate, section
5.2), plus transmit power limits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SDRFrontEnd:
    """Receive/transmit chain model.

    Attributes:
        name: Device identifier.
        dynamic_range_db: Usable ratio between the strongest signal the
            ADC is scaled to and the quantization floor [dB].
        max_tx_power_dbm: Transmit power ceiling [dBm].
        synchronized_tx_rx: Whether TX and RX share a clock (true for
            the paper's single-USRP reader, so no CFO between them).
    """

    name: str = "generic-sdr"
    dynamic_range_db: float = 60.0
    max_tx_power_dbm: float = 20.0
    synchronized_tx_rx: bool = True

    def __post_init__(self) -> None:
        if self.dynamic_range_db <= 0.0:
            raise ConfigurationError(
                f"dynamic range must be positive, got {self.dynamic_range_db}"
            )

    def quantization_floor_amplitude(self, scaled_power: float) -> float:
        """Quantization noise amplitude when scaled to ``scaled_power``.

        Args:
            scaled_power: Power of the signal the ADC full scale tracks
                (typically the direct path + clutter) [linear].

        Returns:
            RMS amplitude of the quantization floor (same linear units).
        """
        if scaled_power < 0.0:
            raise ConfigurationError(
                f"scaled power must be >= 0, got {scaled_power}"
            )
        if scaled_power == 0.0:
            return 0.0
        floor_power = scaled_power * 10.0 ** (-self.dynamic_range_db / 10.0)
        return float(np.sqrt(floor_power))

    def check_tx_power(self, tx_power_dbm: float) -> None:
        """Raise when the requested transmit power exceeds the chain."""
        if tx_power_dbm > self.max_tx_power_dbm:
            raise ConfigurationError(
                f"{self.name} cannot transmit {tx_power_dbm} dBm "
                f"(max {self.max_tx_power_dbm} dBm)"
            )


#: The paper's reader: USRP N210, ~60 dB usable dynamic range,
#: synchronized TX/RX chains on one device (section 4.4).
USRP_N210 = SDRFrontEnd(
    name="USRP-N210",
    dynamic_range_db=60.0,
    max_tx_power_dbm=20.0,
    synchronized_tx_rx=True,
)
