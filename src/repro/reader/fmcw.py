"""FMCW channel sounder — the waveform-agnostic claim of section 3.3.

WiForce's algorithm only needs *periodic wideband channel estimates*;
the paper notes it works equally with FMCW or UWB radars, where the
"subcarrier" axis is the sweep's frequency steps.  This sounder models
a stepped-FMCW radar: each sweep visits K frequency steps in sequence,
so unlike OFDM the tones of one estimate are sampled at slightly
different times.  The harmonic extraction uses true timestamps per
estimate and tolerates the intra-sweep stagger as long as the sweep is
fast against the switching clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.multipath import MultipathChannel
from repro.channel.noise import awgn
from repro.channel.propagation import BackscatterLink
from repro.errors import ConfigurationError
from repro.reader.sounder import ChannelEstimateStream
from repro.sensor.tag import TagState, WiForceTag
from repro.units import thermal_noise_power


@dataclass(frozen=True)
class FMCWSounderConfig:
    """Stepped-FMCW sweep description.

    Attributes:
        carrier_frequency: Sweep centre [Hz].
        bandwidth: Swept bandwidth [Hz].
        steps: Frequency steps per sweep (the "subcarriers").
        sweep_period: Time for one complete sweep + retrace [s].
        tx_power_dbm: Transmit power [dBm].
    """

    carrier_frequency: float = 900e6
    bandwidth: float = 12.5e6
    steps: int = 64
    sweep_period: float = 57.6e-6
    tx_power_dbm: float = 10.0

    def __post_init__(self) -> None:
        if self.carrier_frequency <= 0.0 or self.bandwidth <= 0.0:
            raise ConfigurationError(
                "carrier frequency and bandwidth must be positive"
            )
        if self.steps < 2:
            raise ConfigurationError(f"need >= 2 steps, got {self.steps}")
        if self.sweep_period <= 0.0:
            raise ConfigurationError(
                f"sweep period must be positive, got {self.sweep_period}"
            )

    @property
    def step_spacing(self) -> float:
        """Frequency increment per step [Hz]."""
        return self.bandwidth / self.steps

    @property
    def step_dwell(self) -> float:
        """Dwell time on each step [s] (80% duty; 20% retrace)."""
        return 0.8 * self.sweep_period / self.steps

    @property
    def max_harmonic_frequency(self) -> float:
        """Nyquist limit on observable switching tones [Hz]."""
        return 0.5 / self.sweep_period

    def step_frequencies(self) -> np.ndarray:
        """Absolute frequency of each sweep step [Hz]."""
        k = np.arange(self.steps) - self.steps // 2
        return self.carrier_frequency + k * self.step_spacing

    @property
    def tx_amplitude(self) -> float:
        """RMS transmit amplitude [sqrt(W)]."""
        return float(np.sqrt(10.0 ** (self.tx_power_dbm / 10.0) * 1e-3))


class FMCWSounder:
    """Synthesises per-sweep channel estimates from a stepped sweep."""

    def __init__(self, config: FMCWSounderConfig, tag: WiForceTag,
                 link: BackscatterLink,
                 clutter: Optional[MultipathChannel] = None,
                 noise_figure_db: float = 6.0,
                 rng: Optional[np.random.Generator] = None):
        self.config = config
        self.tag = tag
        self.link = link
        self.clutter = clutter
        self.noise_figure_db = float(noise_figure_db)
        self._rng = rng or np.random.default_rng()
        self._frequencies = config.step_frequencies()
        self._tag_gain = link.tag_path_gain(self._frequencies)
        static = link.direct_path_gain(self._frequencies)
        if clutter is not None:
            static = static + clutter.frequency_response(self._frequencies)
        self._static = static

    def estimate_noise_std(self) -> float:
        """Per-step channel-estimate noise std.

        Each step integrates thermal noise over its dwell time, giving
        a noise bandwidth of 1/dwell.
        """
        noise = thermal_noise_power(1.0 / self.config.step_dwell,
                                    self.noise_figure_db)
        return float(np.sqrt(noise) / self.config.tx_amplitude)

    def capture(self, state: TagState, sweeps: int,
                start_time: float = 0.0) -> ChannelEstimateStream:
        """Record ``sweeps`` consecutive sweep estimates.

        Within one sweep, step k is measured at its own dwell time, so
        the tag's switch state is evaluated per (sweep, step) pair —
        the stagger OFDM does not have.
        """
        if sweeps < 1:
            raise ConfigurationError(f"sweeps must be >= 1, got {sweeps}")
        sweep_starts = start_time + np.arange(sweeps) * self.config.sweep_period
        step_offsets = (np.arange(self.config.steps) + 0.5) * self.config.step_dwell
        # Step k of sweep s is only observed at its own dwell time:
        # gather Gamma(t_{s,k}, f_k) directly from the tag's 4-state
        # table instead of synthesising a full (K, K) reflection block
        # per sweep and keeping its diagonal.
        sample_times = sweep_starts[:, None] + step_offsets[None, :]
        lookup = self.tag.state_table(self._frequencies, state)
        switch_index = self.tag.state_indices(sample_times.ravel()).reshape(
            sweeps, self.config.steps)
        gamma = lookup[switch_index, np.arange(self.config.steps)[None, :]]
        estimates = self._static[None, :] + self._tag_gain[None, :] * gamma
        noise_std = self.estimate_noise_std()
        if noise_std > 0.0:
            estimates = estimates + awgn(estimates.shape, noise_std ** 2,
                                         self._rng)
        return ChannelEstimateStream(
            estimates=estimates,
            times=sweep_starts,
            frequencies=self._frequencies.copy(),
            frame_period=self.config.sweep_period,
        )
