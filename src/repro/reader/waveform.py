"""OFDM sounding waveform (paper section 4.4).

The prototype sounds the channel with a 64-subcarrier, 12.5 MHz OFDM
preamble of 320 samples (five repeats of one 64-sample symbol) padded
with 400 zeros, giving a fresh channel estimate every
``720 / 12.5 MHz = 57.6 us`` (the paper rounds to 60 us).  The padding
also bounds the Nyquist limit on observable switching harmonics to
``1 / (2 T) ~ 8.7 kHz``, comfortably above the 1 / 4 kHz readout tones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OFDMSounderConfig:
    """Static description of the channel-sounding OFDM waveform.

    Attributes:
        carrier_frequency: RF centre frequency [Hz] (900 MHz / 2.4 GHz).
        bandwidth: Baseband sample rate = sounded bandwidth [Hz].
        subcarriers: FFT size / number of sounded tones.
        symbol_repeats: Preamble repeats of the base symbol.
        zero_padding: Silent samples after the preamble.
        tx_power_dbm: Transmit power [dBm].
    """

    carrier_frequency: float = 900e6
    bandwidth: float = 12.5e6
    subcarriers: int = 64
    symbol_repeats: int = 5
    zero_padding: int = 400
    tx_power_dbm: float = 10.0

    def __post_init__(self) -> None:
        if self.carrier_frequency <= 0.0 or self.bandwidth <= 0.0:
            raise ConfigurationError(
                "carrier frequency and bandwidth must be positive"
            )
        if self.subcarriers < 2 or (self.subcarriers & (self.subcarriers - 1)):
            raise ConfigurationError(
                f"subcarriers must be a power of two >= 2, got "
                f"{self.subcarriers}"
            )
        if self.symbol_repeats < 1:
            raise ConfigurationError(
                f"need at least one symbol repeat, got {self.symbol_repeats}"
            )
        if self.zero_padding < 0:
            raise ConfigurationError(
                f"zero padding must be >= 0, got {self.zero_padding}"
            )
        if self.bandwidth >= self.carrier_frequency:
            raise ConfigurationError(
                "bandwidth must be far below the carrier frequency"
            )

    @property
    def subcarrier_spacing(self) -> float:
        """Tone spacing [Hz] (195 kHz for the paper's parameters)."""
        return self.bandwidth / self.subcarriers

    @property
    def preamble_samples(self) -> int:
        """Preamble length in samples (320 for the paper's parameters)."""
        return self.symbol_repeats * self.subcarriers

    @property
    def frame_samples(self) -> int:
        """Total frame length in samples (720)."""
        return self.preamble_samples + self.zero_padding

    @property
    def frame_period(self) -> float:
        """Channel-estimate repetition period T [s] (57.6 us)."""
        return self.frame_samples / self.bandwidth

    @property
    def max_harmonic_frequency(self) -> float:
        """Nyquist limit 1/(2T) on observable switching tones [Hz]."""
        return 0.5 / self.frame_period

    @property
    def tx_amplitude(self) -> float:
        """RMS transmit amplitude [sqrt(W)]."""
        return float(np.sqrt(10.0 ** (self.tx_power_dbm / 10.0) * 1e-3))

    def subcarrier_frequencies(self) -> np.ndarray:
        """Absolute RF frequency of each sounded tone [Hz].

        Baseband tones span ``[-B/2, B/2)`` around the carrier, in FFT
        bin order converted to ascending frequency.
        """
        k = np.arange(self.subcarriers) - self.subcarriers // 2
        return self.carrier_frequency + k * self.subcarrier_spacing

    def frame_times(self, frames: int,
                    start_time: float = 0.0) -> np.ndarray:
        """Start time [s] of each of ``frames`` consecutive frames.

        Args:
            frames: Number of consecutive frames.
            start_time: Offset of the first frame [s] — lets batched
                callers place capture windows without re-deriving the
                grid.
        """
        if frames < 1:
            raise ConfigurationError(f"frames must be >= 1, got {frames}")
        times = np.arange(frames) * self.frame_period
        if start_time != 0.0:
            times = start_time + times
        return times


def generate_preamble(config: OFDMSounderConfig,
                      seed: int = 7) -> np.ndarray:
    """Deterministic QPSK preamble, time domain, unit average power.

    One 64-sample OFDM symbol built from a fixed pseudo-random QPSK
    sequence, repeated ``symbol_repeats`` times.  The receiver knows
    the same sequence (seeded), as with a standards preamble.
    """
    rng = np.random.default_rng(seed)
    phases = rng.integers(0, 4, config.subcarriers)
    tones = np.exp(1j * (np.pi / 4.0 + np.pi / 2.0 * phases))
    symbol = np.fft.ifft(tones) * np.sqrt(config.subcarriers)
    preamble = np.tile(symbol, config.symbol_repeats)
    return preamble * config.tx_amplitude


def preamble_tones(config: OFDMSounderConfig, seed: int = 7) -> np.ndarray:
    """The frequency-domain QPSK tones the preamble was built from."""
    rng = np.random.default_rng(seed)
    phases = rng.integers(0, 4, config.subcarriers)
    return np.exp(1j * (np.pi / 4.0 + np.pi / 2.0 * phases))
