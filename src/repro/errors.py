"""Exception hierarchy for the WiForce reproduction.

All library errors derive from :class:`WiForceError` so callers can catch
one type at the API boundary.  The subtypes mirror the major subsystems:
mechanics, RF, sensor, channel, reader and estimation.
"""

from __future__ import annotations


class WiForceError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(WiForceError, ValueError):
    """A component was constructed with physically invalid parameters."""


class MechanicsError(WiForceError):
    """Beam/contact mechanics could not produce a valid solution."""


class ContactSolverError(MechanicsError):
    """The contact solver failed to converge."""


class RFError(WiForceError):
    """Invalid RF network operation (dimension mismatch, singular port)."""


class SensorError(WiForceError):
    """Sensor-level failure (force out of range, bad clocking scheme)."""


class ClockingError(SensorError):
    """The switch clocking scheme violates the separation constraints."""


class ChannelError(WiForceError):
    """Channel model failure (invalid path, non-physical layer stack)."""


class ReaderError(WiForceError):
    """Wireless reader failure (sounding, synchronization, front end)."""


class DynamicRangeError(ReaderError):
    """Backscatter signal fell below the receiver's dynamic-range floor.

    Raised by the SDR front-end model when the direct-path signal is so
    much stronger than the backscatter reflection that the quantizer
    cannot represent both (paper section 5.2).
    """


class CalibrationError(WiForceError):
    """Calibration data is insufficient or inconsistent."""


class EstimationError(WiForceError):
    """Force/location estimation failed (no sensor signal found)."""


class SurrogateError(EstimationError):
    """Surrogate inverse training/serialization failed."""


class CampaignTrialError(WiForceError):
    """One campaign trial raised; names the trial so sharded runs
    fail with the same diagnostics as a plain serial loop."""


class ObservabilityError(WiForceError):
    """Misused observability instrument (bad bounds, negative count)."""


class CacheError(WiForceError):
    """Artifact-cache misuse (an argument the key schema cannot
    canonicalize, or an invalid cache configuration).

    I/O trouble — corrupt artifacts, unwritable directories — is
    deliberately *not* raised as this: the cache degrades to a miss and
    recomputes, so a broken disk can slow a run down but never fail it.
    """


class ServeError(WiForceError):
    """Inference-service failure (scheduling, session routing)."""


class QueueFullError(ServeError):
    """The micro-batch scheduler's bounded queue rejected a request.

    Backpressure signal: the caller should retry later or shed load;
    admitting the request would have grown the queue without bound.
    """


class ProtocolError(ServeError):
    """A wire payload could not be decoded into a protocol dataclass.

    Every ``from_dict`` / ``from_json`` decoder on the serve boundary
    raises this (never a bare ``KeyError`` / ``TypeError`` /
    ``AttributeError``) for malformed, truncated, or type-confused
    payloads, so transport adapters can map decode failures to a 4xx
    without pattern-matching on builtin exceptions.
    """


class GatewayError(ServeError):
    """Network-gateway failure (transport, handshake, routing)."""


class AuthError(GatewayError):
    """The request carried no valid tenant credential (HTTP 401)."""


class QuotaError(GatewayError):
    """A tenant exceeded its rate or connection quota (HTTP 429).

    Backpressure signal like :class:`QueueFullError`, but enforced at
    the gateway per tenant *before* the request reaches the scheduler:
    shedding here protects every other tenant's latency budget.
    """


class FaultError(WiForceError):
    """Fault-injection misuse (unknown site/kind, malformed plan).

    Raised when *configuring* fault injection — an injected fault
    itself never surfaces as this; it surfaces as whatever the faulted
    site would naturally raise (or as degraded output).
    """
