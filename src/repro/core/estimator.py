"""Force magnitude + location estimation by model inversion.

Given the pair of measured differential phases (phi1, phi2), find the
(force, location) whose model-predicted phases best match.  Residuals
are compared on the unit circle (wrapped), the search is a coarse grid
followed by two local zoom refinements — deterministic, derivative-free
and robust to the model's mild non-monotonicities.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.calibration import SensorModel
from repro.errors import EstimationError
from repro.obs.instruments import BATCH_BUCKETS
from repro.obs.registry import active


@dataclass(frozen=True)
class ForceLocationEstimate:
    """One inverted reading.

    Attributes:
        force: Estimated contact force [N].
        location: Estimated contact location [m] from port 1.
        residual: RMS wrapped phase residual at the optimum [rad].
        touched: False when the phases say "no contact".
    """

    force: float
    location: float
    residual: float
    touched: bool

    def to_dict(self) -> dict:
        """JSON-ready dict (plain python scalars only)."""
        return {
            "force": float(self.force),
            "location": float(self.location),
            "residual": float(self.residual),
            "touched": bool(self.touched),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ForceLocationEstimate":
        """Inverse of :meth:`to_dict`."""
        return cls(
            force=float(payload["force"]),
            location=float(payload["location"]),
            residual=float(payload["residual"]),
            touched=bool(payload["touched"]),
        )


@dataclass(frozen=True)
class BatchForceLocationEstimate:
    """N inverted readings as parallel arrays.

    Untouched samples carry zeros in ``force``/``location``/``residual``
    with ``touched`` False, mirroring the scalar no-contact estimate.

    Attributes:
        force: Estimated forces [N], shape (N,).
        location: Estimated locations [m], shape (N,).
        residual: RMS wrapped phase residuals [rad], shape (N,).
        touched: Contact classification per sample, shape (N,).
    """

    force: np.ndarray
    location: np.ndarray
    residual: np.ndarray
    touched: np.ndarray

    def __len__(self) -> int:
        return int(self.force.shape[0])

    def __getitem__(self, index: int) -> ForceLocationEstimate:
        return ForceLocationEstimate(
            force=float(self.force[index]),
            location=float(self.location[index]),
            residual=float(self.residual[index]),
            touched=bool(self.touched[index]),
        )

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]


def _wrapped_error(shifted_measured, predicted: np.ndarray,
                   out: Optional[np.ndarray] = None) -> np.ndarray:
    """Wrapped (measured - predicted) phase error on [-pi, pi).

    ``shifted_measured`` is the measured phase pre-offset by +pi, so
    the wrap costs one pass over the prediction grid.  Arithmetic
    equivalent of ``angle(exp(1j*(measured - predicted)))`` up to the
    sign of the +/-pi branch point, which the squared cost cannot see,
    at a fraction of the transcendental cost.  Both search paths must
    use this same formula so batch and scalar inversion stay
    bit-identical.  ``out`` may alias ``predicted`` to work in place.
    """
    out = np.subtract(shifted_measured, predicted, out=out)
    np.remainder(out, 2.0 * np.pi, out=out)
    np.subtract(out, np.pi, out=out)
    return out


class ForceLocationEstimator:
    """Inverts a :class:`SensorModel`.

    Args:
        model: Calibrated phase-force model.
        touch_threshold_deg: Phases below this magnitude at both ports
            are classified as "no contact".
        force_resolution / location_resolution: Final grid pitch of the
            zoomed search [N] / [m].
    """

    #: Registry name of this inversion strategy (see
    #: :func:`build_estimator`); subclasses override it.
    backend = "grid"

    def __init__(self, model: SensorModel, touch_threshold_deg: float = 5.0,
                 force_resolution: float = 0.01,
                 location_resolution: float = 0.05e-3):
        if touch_threshold_deg < 0.0:
            raise EstimationError(
                f"touch threshold must be >= 0, got {touch_threshold_deg}"
            )
        if force_resolution <= 0.0 or location_resolution <= 0.0:
            raise EstimationError("search resolutions must be positive")
        self.model = model
        self.touch_threshold = np.radians(touch_threshold_deg)
        self.force_resolution = float(force_resolution)
        self.location_resolution = float(location_resolution)

    def _grid_search(self, measured: Tuple[float, float],
                     force_span: Tuple[float, float],
                     location_span: Tuple[float, float],
                     points: int) -> Tuple[float, float, float]:
        obs = active()
        if obs is not None:
            obs.counter("estimator.grid_stages").increment()
        forces = np.linspace(force_span[0], force_span[1], points)
        locations = np.linspace(location_span[0], location_span[1], points)
        phi1, phi2 = self.model.predict_grid(forces, locations)
        error1 = _wrapped_error(measured[0] + np.pi, phi1)
        error2 = _wrapped_error(measured[1] + np.pi, phi2)
        cost = 0.5 * (error1 * error1 + error2 * error2)
        index = np.unravel_index(int(np.argmin(cost)), cost.shape)
        best_force = float(forces[index[0]])
        best_location = float(locations[index[1]])
        return best_force, best_location, float(np.sqrt(cost[index]))

    def invert(self, phi1: float, phi2: float,
               location_hint: Optional[float] = None
               ) -> ForceLocationEstimate:
        """Estimate (force, location) from measured phases [rad].

        Args:
            phi1 / phi2: Differential phases at the two readout tones.
            location_hint: Optional prior location [m]; restricts the
                initial search to +/- 10 mm around it.
        """
        obs = active()
        if obs is None:
            return self._invert(phi1, phi2, location_hint)
        start = time.perf_counter()
        estimate = self._invert(phi1, phi2, location_hint)
        obs.histogram("estimator.invert_seconds").observe(
            time.perf_counter() - start)
        obs.counter("estimator.inversions").increment()
        if not estimate.touched:
            obs.counter("estimator.no_touch").increment()
        return estimate

    def _invert(self, phi1: float, phi2: float,
                location_hint: Optional[float] = None
                ) -> ForceLocationEstimate:
        if (abs(phi1) < self.touch_threshold
                and abs(phi2) < self.touch_threshold):
            return ForceLocationEstimate(force=0.0, location=0.0,
                                         residual=0.0, touched=False)
        force_low, force_high = self.model.force_range
        locations = self.model.locations
        location_low, location_high = float(locations[0]), float(locations[-1])
        if location_hint is not None:
            location_low = max(location_low, location_hint - 10e-3)
            location_high = min(location_high, location_hint + 10e-3)
            if location_low >= location_high:
                raise EstimationError(
                    f"location hint {location_hint} m lies outside the "
                    f"calibrated span"
                )

        force_span = (force_low, force_high)
        location_span = (location_low, location_high)
        best = self._grid_search((phi1, phi2), force_span, location_span, 25)
        for zoom in (0.15, 0.03):
            force_radius = zoom * (force_high - force_low)
            location_radius = zoom * (location_high - location_low)
            force_span = (max(force_low, best[0] - force_radius),
                          min(force_high, best[0] + force_radius))
            location_span = (max(location_low, best[1] - location_radius),
                             min(location_high, best[1] + location_radius))
            best = self._grid_search((phi1, phi2), force_span,
                                     location_span, 21)
        return ForceLocationEstimate(force=best[0], location=best[1],
                                     residual=best[2], touched=True)

    def _batch_grid_search(
        self, shifted1: np.ndarray, shifted2: np.ndarray,
        force_low: np.ndarray, force_high: np.ndarray,
        location_low: np.ndarray, location_high: np.ndarray,
        points: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One grid-search stage over N samples with per-sample spans.

        ``shifted1`` / ``shifted2`` are the measured phases pre-offset
        by +pi (see :func:`_wrapped_error`).  Builds one
        (N, points, points) wrapped-residual tensor via the model's
        per-sample grid prediction; the flattened per-sample argmin
        uses C order, matching the scalar search's tie-breaking.
        """
        obs = active()
        if obs is not None:
            obs.counter("estimator.grid_stages").increment()
        forces = np.linspace(force_low, force_high, points, axis=-1)
        locations = np.linspace(location_low, location_high, points,
                                axis=-1)
        if (force_low[0] == force_low).all() \
                and (force_high[0] == force_high).all() \
                and (location_low[0] == location_low).all() \
                and (location_high[0] == location_high).all():
            # All samples share one span (the hint-free coarse stage):
            # predict a single (points, points) grid and broadcast it
            # against the batch instead of predicting N copies.
            grid1, grid2 = self.model.predict_grid(forces[0], locations[0])
            error1 = _wrapped_error(shifted1[:, np.newaxis, np.newaxis],
                                    grid1[np.newaxis, :, :])
            error2 = _wrapped_error(shifted2[:, np.newaxis, np.newaxis],
                                    grid2[np.newaxis, :, :])
        else:
            grid1, grid2 = self.model.predict_span(forces, locations)
            # The grids are freshly allocated; wrap in place.
            error1 = _wrapped_error(shifted1[:, np.newaxis, np.newaxis],
                                    grid1, out=grid1)
            error2 = _wrapped_error(shifted2[:, np.newaxis, np.newaxis],
                                    grid2, out=grid2)
        np.multiply(error1, error1, out=error1)
        np.multiply(error2, error2, out=error2)
        # argmin over e1^2 + e2^2: the scalar path's 0.5 factor is an
        # exact, monotone scale, so the minimiser (ties included) is
        # unchanged and the factor is applied to the winner only.
        score = np.add(error1, error2, out=error1).reshape(shifted1.size,
                                                           -1)
        flat = np.argmin(score, axis=1)
        rows = np.arange(shifted1.size)
        best_force = forces[rows, flat // points]
        best_location = locations[rows, flat % points]
        return best_force, best_location, np.sqrt(0.5 * score[rows, flat])

    def invert_batch(self, phi1: np.ndarray, phi2: np.ndarray,
                     location_hint: Optional[np.ndarray] = None
                     ) -> BatchForceLocationEstimate:
        """Estimate (force, location) for N phase pairs at once.

        Vectorizes the coarse-plus-zoom search of :meth:`invert` over
        the whole batch: each stage evaluates a single broadcast
        residual tensor instead of N Python-level grid searches.  The
        search schedule is identical to the scalar path, so results
        match :meth:`invert` element-wise.

        Args:
            phi1 / phi2: Measured differential phases [rad], shape (N,)
                (broadcast-compatible shapes are accepted).
            location_hint: Optional prior location(s) [m] — a scalar or
                shape-(N,) array; restricts each sample's initial
                search to +/- 10 mm around its hint.
        """
        obs = active()
        if obs is None:
            return self._invert_batch(phi1, phi2, location_hint)
        start = time.perf_counter()
        batch = self._invert_batch(phi1, phi2, location_hint)
        obs.histogram("estimator.batch_seconds").observe(
            time.perf_counter() - start)
        obs.histogram("estimator.batch_size",
                      BATCH_BUCKETS).observe(len(batch))
        obs.counter("estimator.batch_inversions").increment()
        obs.counter("estimator.batched_samples").increment(len(batch))
        return batch

    def _invert_batch(self, phi1: np.ndarray, phi2: np.ndarray,
                      location_hint: Optional[np.ndarray] = None
                      ) -> BatchForceLocationEstimate:
        phi1 = np.atleast_1d(np.asarray(phi1, dtype=float))
        phi2 = np.atleast_1d(np.asarray(phi2, dtype=float))
        phi1, phi2 = np.broadcast_arrays(phi1, phi2)
        if phi1.ndim != 1:
            raise EstimationError(
                f"phase batches must be 1-D, got shape {phi1.shape}"
            )
        count = phi1.shape[0]
        touched = ~((np.abs(phi1) < self.touch_threshold)
                    & (np.abs(phi2) < self.touch_threshold))
        force = np.zeros(count)
        location = np.zeros(count)
        residual = np.zeros(count)
        active = np.flatnonzero(touched)
        if active.size:
            force_low, force_high = self.model.force_range
            calibrated = self.model.locations
            location_low = np.full(active.size, float(calibrated[0]))
            location_high = np.full(active.size, float(calibrated[-1]))
            if location_hint is not None:
                hint = np.broadcast_to(
                    np.atleast_1d(np.asarray(location_hint, dtype=float)),
                    (count,))[active]
                location_low = np.maximum(location_low, hint - 10e-3)
                location_high = np.minimum(location_high, hint + 10e-3)
                if np.any(location_low >= location_high):
                    raise EstimationError(
                        "location hint lies outside the calibrated span"
                    )
            measured1 = phi1[active] + np.pi
            measured2 = phi2[active] + np.pi
            span_force_low = np.full(active.size, force_low)
            span_force_high = np.full(active.size, force_high)
            best = self._batch_grid_search(
                measured1, measured2, span_force_low, span_force_high,
                location_low, location_high, 25)
            for zoom in (0.15, 0.03):
                force_radius = zoom * (force_high - force_low)
                location_radius = zoom * (location_high - location_low)
                span_force_low = np.maximum(force_low,
                                            best[0] - force_radius)
                span_force_high = np.minimum(force_high,
                                             best[0] + force_radius)
                span_location_low = np.maximum(location_low,
                                               best[1] - location_radius)
                span_location_high = np.minimum(location_high,
                                                best[1] + location_radius)
                best = self._batch_grid_search(
                    measured1, measured2, span_force_low, span_force_high,
                    span_location_low, span_location_high, 21)
            force[active], location[active], residual[active] = best
        return BatchForceLocationEstimate(force=force, location=location,
                                          residual=residual,
                                          touched=touched)


#: Inversion strategies :func:`build_estimator` can resolve.
ESTIMATOR_BACKENDS = ("grid", "surrogate")


def build_estimator(model: SensorModel, backend: str = "grid",
                    touch_threshold_deg: float = 5.0,
                    **options) -> ForceLocationEstimator:
    """Build an estimator by backend name (the pluggable seam).

    Mirrors :func:`repro.reader.batch.resolve_sounder`: callers name a
    strategy, the registry builds it, and every strategy honors the
    same ``invert`` / ``invert_batch`` contract.

    * ``"grid"`` — the coarse-plus-zoom grid search (the accuracy
      oracle); ``options`` pass through to
      :class:`ForceLocationEstimator` (``force_resolution``,
      ``location_resolution``).
    * ``"surrogate"`` — the learned amortized inverse of
      :mod:`repro.surrogate` (imported lazily so the core package
      carries no dependency on it); ``options`` pass through to
      :func:`repro.surrogate.model.build_surrogate_estimator`
      (``carrier_frequency``, ``fast``, ``spec``, ...).

    Raises:
        EstimationError: Unknown backend name.
    """
    if backend == "grid":
        return ForceLocationEstimator(
            model, touch_threshold_deg=touch_threshold_deg, **options)
    if backend == "surrogate":
        from repro.surrogate.model import build_surrogate_estimator

        return build_surrogate_estimator(
            model, touch_threshold_deg=touch_threshold_deg, **options)
    raise EstimationError(
        f"unknown estimator backend {backend!r}; expected one of "
        f"{ESTIMATOR_BACKENDS}")
