"""Force magnitude + location estimation by model inversion.

Given the pair of measured differential phases (phi1, phi2), find the
(force, location) whose model-predicted phases best match.  Residuals
are compared on the unit circle (wrapped), the search is a coarse grid
followed by two local zoom refinements — deterministic, derivative-free
and robust to the model's mild non-monotonicities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.calibration import SensorModel
from repro.errors import EstimationError


@dataclass(frozen=True)
class ForceLocationEstimate:
    """One inverted reading.

    Attributes:
        force: Estimated contact force [N].
        location: Estimated contact location [m] from port 1.
        residual: RMS wrapped phase residual at the optimum [rad].
        touched: False when the phases say "no contact".
    """

    force: float
    location: float
    residual: float
    touched: bool


def _wrapped_residual(predicted: Tuple[float, float],
                      measured: Tuple[float, float]) -> float:
    error1 = np.angle(np.exp(1j * (measured[0] - predicted[0])))
    error2 = np.angle(np.exp(1j * (measured[1] - predicted[1])))
    return float(np.sqrt(0.5 * (error1 ** 2 + error2 ** 2)))


class ForceLocationEstimator:
    """Inverts a :class:`SensorModel`.

    Args:
        model: Calibrated phase-force model.
        touch_threshold_deg: Phases below this magnitude at both ports
            are classified as "no contact".
        force_resolution / location_resolution: Final grid pitch of the
            zoomed search [N] / [m].
    """

    def __init__(self, model: SensorModel, touch_threshold_deg: float = 5.0,
                 force_resolution: float = 0.01,
                 location_resolution: float = 0.05e-3):
        if touch_threshold_deg < 0.0:
            raise EstimationError(
                f"touch threshold must be >= 0, got {touch_threshold_deg}"
            )
        if force_resolution <= 0.0 or location_resolution <= 0.0:
            raise EstimationError("search resolutions must be positive")
        self.model = model
        self.touch_threshold = np.radians(touch_threshold_deg)
        self.force_resolution = float(force_resolution)
        self.location_resolution = float(location_resolution)

    def _grid_search(self, measured: Tuple[float, float],
                     force_span: Tuple[float, float],
                     location_span: Tuple[float, float],
                     points: int) -> Tuple[float, float, float]:
        forces = np.linspace(force_span[0], force_span[1], points)
        locations = np.linspace(location_span[0], location_span[1], points)
        phi1, phi2 = self.model.predict_grid(forces, locations)
        error1 = np.angle(np.exp(1j * (measured[0] - phi1)))
        error2 = np.angle(np.exp(1j * (measured[1] - phi2)))
        cost = 0.5 * (error1 ** 2 + error2 ** 2)
        index = np.unravel_index(int(np.argmin(cost)), cost.shape)
        best_force = float(forces[index[0]])
        best_location = float(locations[index[1]])
        return best_force, best_location, float(np.sqrt(cost[index]))

    def invert(self, phi1: float, phi2: float,
               location_hint: Optional[float] = None
               ) -> ForceLocationEstimate:
        """Estimate (force, location) from measured phases [rad].

        Args:
            phi1 / phi2: Differential phases at the two readout tones.
            location_hint: Optional prior location [m]; restricts the
                initial search to +/- 10 mm around it.
        """
        if (abs(phi1) < self.touch_threshold
                and abs(phi2) < self.touch_threshold):
            return ForceLocationEstimate(force=0.0, location=0.0,
                                         residual=0.0, touched=False)
        force_low, force_high = self.model.force_range
        locations = self.model.locations
        location_low, location_high = float(locations[0]), float(locations[-1])
        if location_hint is not None:
            location_low = max(location_low, location_hint - 10e-3)
            location_high = min(location_high, location_hint + 10e-3)
            if location_low >= location_high:
                raise EstimationError(
                    f"location hint {location_hint} m lies outside the "
                    f"calibrated span"
                )

        force_span = (force_low, force_high)
        location_span = (location_low, location_high)
        best = self._grid_search((phi1, phi2), force_span, location_span, 25)
        for zoom in (0.15, 0.03):
            force_radius = zoom * (force_high - force_low)
            location_radius = zoom * (location_high - location_low)
            force_span = (max(force_low, best[0] - force_radius),
                          min(force_high, best[0] + force_radius))
            location_span = (max(location_low, best[1] - location_radius),
                             min(location_high, best[1] + location_radius))
            best = self._grid_search((phi1, phi2), force_span,
                                     location_span, 21)
        return ForceLocationEstimate(force=best[0], location=best[1],
                                     residual=best[2], touched=True)
