"""The sensor model: cubic phase-force calibration (paper section 4.2).

The paper presses the sensor at five known locations (20..60 mm) with
known forces, records the differential phases at both ports, and fits
a cubic phase-force curve per (port, location).  Intermediate
locations are linearly interpolated (validated at 55 mm in Table 1).
The fitted model is what the estimator inverts.

Two calibration observables are supported:

* ``port`` — the VNA observable: differential reflection phase at the
  sensor's own ports (the paper's wired calibration).
* ``harmonic`` — the wireless observable: phase of the switching-tone
  difference vector at the tag's antenna, exactly what the reader's
  conjugate-multiply measures.  Using it keeps the calibration and the
  over-the-air measurement in the same domain (see DESIGN.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache import get_cache
from repro.errors import CalibrationError
from repro.sensor.tag import TagState, WiForceTag
from repro.sensor.transduction import ForceTransducer

#: Artifact version of cached harmonic-observable calibrations.  Bump
#: whenever the fit (or the harmonic observable itself) changes the
#: model produced for identical inputs.
HARMONIC_CALIBRATION_VERSION = 1


@dataclass(frozen=True)
class CalibrationCurve:
    """Cubic phase-force fit for one (port, location).

    Attributes:
        location: Calibrated press location [m].
        coefficients: Polynomial coefficients, highest power first
            (numpy polyval convention), phase in radians vs force in
            newtons.
        force_range: (min, max) force [N] covered by the fit.
    """

    location: float
    coefficients: Tuple[float, ...]
    force_range: Tuple[float, float]

    def phase(self, force: Union[float, np.ndarray]) -> np.ndarray:
        """Predicted phase [rad]; forces are clipped to the fit range."""
        force = np.clip(np.asarray(force, dtype=float),
                        self.force_range[0], self.force_range[1])
        return np.polyval(self.coefficients, force)


class SensorModel:
    """Interpolated two-port phase-force model over the sensor length.

    Args:
        locations: Calibrated locations [m], ascending.
        port1_curves / port2_curves: One cubic fit per location.
        frequency: Carrier the calibration was taken at [Hz].
    """

    def __init__(self, locations: Sequence[float],
                 port1_curves: Sequence[CalibrationCurve],
                 port2_curves: Sequence[CalibrationCurve],
                 frequency: float):
        self._locations = np.asarray(list(locations), dtype=float)
        if self._locations.size < 2:
            raise CalibrationError(
                "need at least 2 calibrated locations for interpolation"
            )
        if np.any(np.diff(self._locations) <= 0.0):
            raise CalibrationError("locations must be strictly ascending")
        if not (len(port1_curves) == len(port2_curves)
                == self._locations.size):
            raise CalibrationError(
                "one curve per port per location is required"
            )
        self._port1 = list(port1_curves)
        self._port2 = list(port2_curves)
        self.frequency = float(frequency)
        self._tables = (self._stack_curves(self._port1),
                        self._stack_curves(self._port2))

    @staticmethod
    def _stack_curves(
        curves: List[CalibrationCurve],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stack per-location fits into (coefficients, force ranges).

        Coefficients are left-padded with zeros to a common length,
        which leaves Horner evaluation (``numpy.polyval``'s scheme)
        unchanged; this is what lets prediction vectorize over
        arbitrary (force, location) tensors.
        """
        width = max(len(curve.coefficients) for curve in curves)
        coefficients = np.zeros((len(curves), width))
        for index, curve in enumerate(curves):
            coefficients[index, width - len(curve.coefficients):] = (
                curve.coefficients)
        ranges = np.array([curve.force_range for curve in curves])
        return coefficients, ranges

    def _segments(
        self, locations: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-element interpolation segment index and weight."""
        clipped = np.clip(np.asarray(locations, dtype=float),
                          self._locations[0], self._locations[-1])
        segment = np.clip(
            np.searchsorted(self._locations, clipped) - 1,
            0, self._locations.size - 2)
        weight = (clipped - self._locations[segment]) / (
            self._locations[segment + 1] - self._locations[segment])
        return segment, weight

    @staticmethod
    def _curve_values(coefficients: np.ndarray, ranges: np.ndarray,
                      segment: np.ndarray,
                      forces: np.ndarray) -> np.ndarray:
        """Evaluate per-element calibration curves (Horner's scheme)."""
        clipped = np.clip(forces, ranges[segment, 0], ranges[segment, 1])
        gathered = coefficients[segment]
        values = np.zeros_like(clipped)
        for power in range(gathered.shape[-1]):
            values = values * clipped + gathered[..., power]
        return values

    def predict_batch(
        self, forces: np.ndarray, locations: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Element-wise vectorized prediction.

        ``forces`` and ``locations`` may be any broadcast-compatible
        shapes; returns (phi1, phi2) [rad] in the broadcast shape.
        Numerically identical to looping :meth:`predict`.
        """
        forces = np.asarray(forces, dtype=float)
        if np.any(forces < 0.0):
            raise CalibrationError("forces must be >= 0")
        segment, weight = self._segments(locations)
        phases = []
        for coefficients, ranges in self._tables:
            low = self._curve_values(coefficients, ranges, segment, forces)
            high = self._curve_values(coefficients, ranges, segment + 1,
                                      forces)
            phases.append((1.0 - weight) * low + weight * high)
        return phases[0], phases[1]

    def predict_span(
        self, forces: np.ndarray, locations: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample grid prediction for batched search.

        ``forces`` is (N, F) — one force axis per sample — and
        ``locations`` is (N, L); returns (phi1, phi2) shaped (N, F, L),
        sample ``n``'s prediction over the outer product of its axes.
        Element-wise identical to broadcasting :meth:`predict_batch`
        over the full grids, but each calibration curve is evaluated
        once per force axis instead of once per (force, location)
        cell, which is what makes the batched estimator fast.
        """
        forces = np.asarray(forces, dtype=float)
        locations = np.asarray(locations, dtype=float)
        segment, weight = self._segments(locations)
        needed = np.unique(segment)
        needed = np.union1d(needed, needed + 1)
        low_slot = np.searchsorted(needed, segment)[:, np.newaxis, :]
        high_slot = np.searchsorted(needed, segment + 1)[:, np.newaxis, :]
        blend = weight[:, np.newaxis, :]
        phases = []
        for coefficients, ranges in self._tables:
            # Calibration schedules usually share one force range
            # across locations, in which case the clip is hoisted out
            # of the per-curve loop (identical values either way).
            shared = bool(np.all(ranges == ranges[0]))
            if shared:
                clipped = np.clip(forces, ranges[0, 0], ranges[0, 1])
            table = np.empty(forces.shape + (needed.size,))
            for slot, curve in enumerate(needed):
                if not shared:
                    clipped = np.clip(forces, ranges[curve, 0],
                                      ranges[curve, 1])
                accum = np.full_like(clipped, coefficients[curve, 0])
                for power in range(1, coefficients.shape[1]):
                    accum *= clipped
                    accum += coefficients[curve, power]
                table[..., slot] = accum
            low = np.take_along_axis(table, low_slot, axis=2)
            high = np.take_along_axis(table, high_slot, axis=2)
            # (1 - w) * low + w * high, evaluated in place.
            np.multiply(low, 1.0 - blend, out=low)
            np.multiply(high, blend, out=high)
            phases.append(np.add(low, high, out=low))
        return phases[0], phases[1]

    @property
    def locations(self) -> np.ndarray:
        """Calibrated locations [m] (copy)."""
        return self._locations.copy()

    @property
    def force_range(self) -> Tuple[float, float]:
        """Common calibrated force range [N]."""
        low = max(curve.force_range[0] for curve in self._port1 + self._port2)
        high = min(curve.force_range[1] for curve in self._port1 + self._port2)
        return low, high

    def predict(self, force: float, location: float) -> Tuple[float, float]:
        """(phi1, phi2) [rad] for a press of ``force`` at ``location``."""
        if force < 0.0:
            raise CalibrationError(f"force must be >= 0, got {force}")
        phi1, phi2 = self.predict_batch(np.asarray(force, dtype=float),
                                        np.asarray(location, dtype=float))
        return float(phi1), float(phi2)

    def predict_grid(self, forces: np.ndarray,
                     locations: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized prediction over a (force, location) grid.

        Returns two arrays shaped (len(forces), len(locations)).
        """
        forces = np.asarray(forces, dtype=float)
        locations = np.asarray(locations, dtype=float)
        return self.predict_batch(forces[:, np.newaxis],
                                  locations[np.newaxis, :])

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serialisable representation."""
        def curve_dict(curve: CalibrationCurve) -> Dict:
            return {
                "location": curve.location,
                "coefficients": list(curve.coefficients),
                "force_range": list(curve.force_range),
            }

        return {
            "frequency": self.frequency,
            "locations": self._locations.tolist(),
            "port1": [curve_dict(c) for c in self._port1],
            "port2": [curve_dict(c) for c in self._port2],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SensorModel":
        """Rebuild a model serialised with :meth:`to_dict`."""
        def curve(entry: Dict) -> CalibrationCurve:
            return CalibrationCurve(
                location=float(entry["location"]),
                coefficients=tuple(entry["coefficients"]),
                force_range=(float(entry["force_range"][0]),
                             float(entry["force_range"][1])),
            )

        return cls(
            locations=data["locations"],
            port1_curves=[curve(c) for c in data["port1"]],
            port2_curves=[curve(c) for c in data["port2"]],
            frequency=float(data["frequency"]),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the model to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SensorModel":
        """Read a model from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def fit_sensor_model(locations: Sequence[float], forces: Sequence[float],
                     phases_port1: np.ndarray, phases_port2: np.ndarray,
                     frequency: float, degree: int = 3) -> SensorModel:
    """Fit per-location cubic curves from measured phase data.

    Args:
        locations: Calibrated locations [m], ascending, length L.
        forces: Force samples [N], length F.
        phases_port1 / phases_port2: Measured phases [rad], shape (L, F).
        frequency: Calibration carrier [Hz].
        degree: Polynomial degree (3 = the paper's cubic fit).
    """
    forces = np.asarray(list(forces), dtype=float)
    phases_port1 = np.asarray(phases_port1, dtype=float)
    phases_port2 = np.asarray(phases_port2, dtype=float)
    expected = (len(list(locations)), forces.size)
    if phases_port1.shape != expected or phases_port2.shape != expected:
        raise CalibrationError(
            f"phase arrays must be shaped {expected}, got "
            f"{phases_port1.shape} and {phases_port2.shape}"
        )
    if forces.size < degree + 1:
        raise CalibrationError(
            f"need at least {degree + 1} force samples for a degree-"
            f"{degree} fit, got {forces.size}"
        )
    port1_curves = []
    port2_curves = []
    for index, location in enumerate(locations):
        # Pre-contact samples (no shorting yet) report exactly zero at
        # both ports; they sit on a different branch of the physics and
        # must not enter the cubic fit.  Stiff units may not touch
        # until well above the lowest commanded force.
        in_contact = ((phases_port1[index] != 0.0)
                      | (phases_port2[index] != 0.0))
        if int(in_contact.sum()) < degree + 1:
            raise CalibrationError(
                f"location {location}: only {int(in_contact.sum())} "
                f"in-contact samples; raise the calibration forces"
            )
        valid_forces = forces[in_contact]
        force_range = (float(valid_forces.min()),
                       float(valid_forces.max()))
        # Unwrap along the force axis: the physical phase is continuous
        # in force even when the wrapped measurement crosses +/- pi.
        phase1 = np.unwrap(phases_port1[index][in_contact])
        phase2 = np.unwrap(phases_port2[index][in_contact])
        coeff1 = np.polyfit(valid_forces, phase1, degree)
        coeff2 = np.polyfit(valid_forces, phase2, degree)
        port1_curves.append(CalibrationCurve(
            float(location), tuple(coeff1), force_range))
        port2_curves.append(CalibrationCurve(
            float(location), tuple(coeff2), force_range))
    return SensorModel(locations, port1_curves, port2_curves, frequency)


def calibrate_port_observable(
    transducer: ForceTransducer, frequency: float,
    locations: Sequence[float], forces: Sequence[float],
    phase_noise_std_deg: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> SensorModel:
    """Calibrate from the VNA (sensor-port) observable (section 4.2).

    Optionally adds VNA phase trace noise to the samples before the
    cubic fit, as a real calibration would contain.
    """
    rng = rng or np.random.default_rng()
    locations = list(locations)
    forces = list(forces)
    phases1 = np.zeros((len(locations), len(forces)))
    phases2 = np.zeros_like(phases1)
    for i, location in enumerate(locations):
        for j, force in enumerate(forces):
            observed = transducer.differential_phases(frequency, float(force),
                                                      float(location))
            phases1[i, j] = observed.port1
            phases2[i, j] = observed.port2
    if phase_noise_std_deg > 0.0:
        noise = np.radians(phase_noise_std_deg)
        phases1 = phases1 + rng.normal(0.0, noise, phases1.shape)
        phases2 = phases2 + rng.normal(0.0, noise, phases2.shape)
    return fit_sensor_model(locations, forces, phases1, phases2, frequency)


def calibrate_with_rig(
    transducer: ForceTransducer, frequency: float,
    locations: Sequence[float], forces: Sequence[float],
    rig, phase_noise_std_deg: float = 0.5,
    tag: Optional[WiForceTag] = None,
    rng: Optional[np.random.Generator] = None,
) -> SensorModel:
    """Calibrate the way the paper actually does it (section 4.2).

    The actuated indenter presses each calibration location with each
    commanded force; the *applied* force (with regulation error) drives
    the sensor, the phases are measured with trace noise, and the cubic
    fit runs against the *load-cell* readings — so the model carries
    the same measurement imperfections a physical calibration would.

    Args:
        transducer: The sensor under calibration.
        frequency: Calibration carrier [Hz].
        locations: Calibration press locations [m].
        forces: Commanded force schedule [N].
        rig: A :class:`repro.mechanics.indenter.GroundTruthRig`.
        phase_noise_std_deg: Phase trace noise [deg].
        tag: When given, calibrate through the assembled tag in the
            wireless (switching-harmonic) observable — the domain the
            reader actually measures in.  When ``None``, use the wired
            VNA (sensor-port) observable.
        rng: Random source for the phase noise.
    """
    rng = rng or np.random.default_rng()
    locations = list(locations)
    forces = list(forces)
    noise = np.radians(phase_noise_std_deg)
    phases1 = np.zeros((len(locations), len(forces)))
    phases2 = np.zeros_like(phases1)
    measured_forces = np.zeros_like(phases1)
    for i, location in enumerate(locations):
        for j, force in enumerate(forces):
            press = rig.press(float(force), float(location))
            if tag is not None:
                phi1, phi2 = harmonic_differential_phases(
                    tag, frequency, press.applied_force,
                    press.applied_location)
            else:
                observed = transducer.differential_phases(
                    frequency, press.applied_force,
                    press.applied_location)
                phi1, phi2 = observed.port1, observed.port2
            phases1[i, j] = phi1 + rng.normal(0.0, noise)
            phases2[i, j] = phi2 + rng.normal(0.0, noise)
            measured_forces[i, j] = press.measured_force
    # Per-location force axes differ slightly (regulation error); fit
    # against the mean measured schedule, which is what a practitioner
    # tabulating load-cell readings would use.
    force_axis = measured_forces.mean(axis=0)
    return fit_sensor_model(locations, force_axis, phases1, phases2,
                            frequency)


def harmonic_differential_phases(tag: WiForceTag, frequency: float,
                                 force: float,
                                 location: float) -> Tuple[float, float]:
    """The wireless observable for one press, computed noiselessly.

    Phase of the switching-tone difference vector (on-state minus
    off-state reflection) of the pressed tag, conjugated against the
    untouched tag — exactly what the reader's phase-group processing
    converges to as noise vanishes.
    """
    grid = np.array([float(frequency)])
    base = tag.state_reflections(grid, TagState())
    touch = tag.state_reflections(grid, TagState(force, location))

    def difference(states, key):
        return states[key][0] - states[(False, False)][0]

    phi1 = np.angle(difference(touch, (True, False))
                    * np.conj(difference(base, (True, False))))
    phi2 = np.angle(difference(touch, (False, True))
                    * np.conj(difference(base, (False, True))))
    return float(phi1), float(phi2)


def calibrate_harmonic_observable(
    tag: WiForceTag, frequency: float, locations: Sequence[float],
    forces: Sequence[float],
) -> SensorModel:
    """Calibrate in the wireless (switching-harmonic) domain.

    A bench calibration of the assembled tag: noiseless harmonic-domain
    phases per (location, force), cubic-fitted exactly like the VNA
    model.  This is the model the estimator should use for over-the-air
    readings, since it lives in the same observable domain.

    The fit is a pure function of the transducer spec, the carrier and
    the press schedule (the tag's clocking and crystal offset shape the
    time series, not the per-state reflections the harmonic observable
    is built from), so the model is memoized through
    :mod:`repro.cache` with the :meth:`SensorModel.to_dict` codec —
    Monte-Carlo campaign workers calibrating identically-parameterized
    (including identically-*toleranced*) units share one fit across
    processes.
    """
    locations = [float(value) for value in locations]
    forces = [float(value) for value in forces]
    key = {
        "transducer": tag.transducer.cache_spec(),
        "frequency": float(frequency),
        "locations": locations,
        "forces": forces,
    }
    return get_cache().get_or_compute(
        "core.harmonic_calibration", HARMONIC_CALIBRATION_VERSION, key,
        lambda: _fit_harmonic_observable(tag, frequency, locations,
                                         forces),
        encode=SensorModel.to_dict, decode=SensorModel.from_dict)


def _fit_harmonic_observable(tag: WiForceTag, frequency: float,
                             locations: List[float],
                             forces: List[float]) -> SensorModel:
    """The cold path behind :func:`calibrate_harmonic_observable`."""
    phases1 = np.zeros((len(locations), len(forces)))
    phases2 = np.zeros_like(phases1)
    for i, location in enumerate(locations):
        for j, force in enumerate(forces):
            phi1, phi2 = harmonic_differential_phases(
                tag, frequency, float(force), float(location))
            phases1[i, j] = phi1
            phases2[i, j] = phi2
    return fit_sensor_model(locations, forces, phases1, phases2, frequency)
