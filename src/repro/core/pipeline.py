"""End-to-end wireless force reader.

Glues the stack together the way the paper's reader runs (sections 3.3
and 4.4): capture a baseline (untouched) stream, extract the two
readout-tone harmonic vectors, then for every press capture a stream,
conjugate against the baseline for the differential phases, and invert
the calibrated sensor model.

The tag's clock is a separate unsynchronized device (section 4.4), so
its readout tones sit slightly off the nominal frequencies and their
phases drift slowly.  The baseline capture therefore spans several
phase groups and fits a per-tone drift rate, which is de-rotated out of
every subsequent capture; for press protocols with an untouched gap
before each press, :meth:`WiForceReader.read` can also re-baseline
immediately before the press (the paper's before/after differential).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.calibration import SensorModel
from repro.core.estimator import ForceLocationEstimate, build_estimator
from repro.core.harmonics import (
    HarmonicExtractor,
    HarmonicMatrix,
    integer_period_group_length,
)
from repro.core.phase import differential_phase, phase_trajectory
from repro.errors import ReaderError
from repro.faults.inject import FaultEvent, armed as fault_armed
from repro.obs.registry import active, maybe_span
from repro.reader.sounder import ChannelEstimateStream, FrameLevelSounder
from repro.sensor.tag import TagState


def _faulted_stream(stream: ChannelEstimateStream,
                    fault: FaultEvent) -> ChannelEstimateStream:
    """Apply one injected ``reader.capture`` fault to a capture.

    * ``dropout`` — zero a contiguous burst of frames (``magnitude``
      is the dropped fraction of the capture).
    * ``desync`` — jump the capture clock by ``magnitude`` frame
      periods (all timestamps shift, desynchronizing drift tracking).
    * ``phase_jump`` — rotate every estimate from a random frame
      onward by ``magnitude`` radians (an RF chain glitch).
    """
    estimates = stream.estimates.copy()
    times = stream.times
    frames = stream.frames
    rng = fault.rng()
    if fault.kind == "dropout":
        count = min(frames, max(1, int(round(fault.magnitude * frames))))
        start = int(rng.integers(0, frames - count + 1))
        estimates[start:start + count] = 0.0
    elif fault.kind == "desync":
        times = times + fault.magnitude * stream.frame_period
    elif fault.kind == "phase_jump":
        start = int(rng.integers(0, frames))
        estimates[start:] = estimates[start:] * np.exp(1j * fault.magnitude)
    return ChannelEstimateStream(
        estimates=estimates, times=times,
        frequencies=stream.frequencies, frame_period=stream.frame_period)


@dataclass(frozen=True)
class PressReading:
    """One complete wireless reading.

    Attributes:
        phi1 / phi2: Measured differential phases [rad].
        estimate: Model inversion result.
    """

    phi1: float
    phi2: float
    estimate: ForceLocationEstimate

    @property
    def force(self) -> float:
        """Estimated force [N]."""
        return self.estimate.force

    @property
    def location(self) -> float:
        """Estimated location [m]."""
        return self.estimate.location

    def to_dict(self) -> dict:
        """JSON-ready dict; the nested estimate uses its own codec."""
        return {
            "phi1": float(self.phi1),
            "phi2": float(self.phi2),
            "estimate": self.estimate.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PressReading":
        """Inverse of :meth:`to_dict`."""
        return cls(
            phi1=float(payload["phi1"]),
            phi2=float(payload["phi2"]),
            estimate=ForceLocationEstimate.from_dict(payload["estimate"]),
        )


class WiForceReader:
    """Baseline-referenced wireless force reader with drift tracking.

    Args:
        sounder: Channel sounder with the deployed tag.
        model: Calibrated sensor model (harmonic-domain recommended).
        groups_per_capture: Phase groups averaged per reading.
        baseline_groups: Phase groups in the baseline capture (longer =
            better drift fit).
        group_length: Snapshots per phase group; default picks the
            smallest integer-period length for the tag's base clock.
        extractor: Override the harmonic extractor entirely.
        backend: Inversion strategy (``"grid"`` | ``"surrogate"``; see
            :func:`repro.core.estimator.build_estimator`).
        backend_options: Extra keyword arguments for the backend
            factory (e.g. ``fast`` / ``spec`` for the surrogate).
    """

    def __init__(self, sounder: FrameLevelSounder, model: SensorModel,
                 groups_per_capture: int = 2,
                 baseline_groups: int = 8,
                 group_length: Optional[int] = None,
                 extractor: Optional[HarmonicExtractor] = None,
                 backend: str = "grid",
                 backend_options: Optional[dict] = None):
        if groups_per_capture < 1:
            raise ReaderError(
                f"groups per capture must be >= 1, got {groups_per_capture}"
            )
        if baseline_groups < 2:
            raise ReaderError(
                f"baseline needs >= 2 groups for the drift fit, got "
                f"{baseline_groups}"
            )
        self.sounder = sounder
        self.model = model
        self.groups_per_capture = int(groups_per_capture)
        self.baseline_groups = int(baseline_groups)
        scheme = sounder.tag.clocking
        if extractor is None:
            if group_length is None:
                group_length = integer_period_group_length(
                    sounder.config.frame_period,
                    scheme.clock_port1.frequency)
            extractor = HarmonicExtractor(
                tones=(scheme.readout_port1, scheme.readout_port2),
                group_length=group_length,
            )
        self.extractor = extractor
        self.backend = str(backend)
        self.estimator = build_estimator(model, backend=self.backend,
                                         **(backend_options or {}))
        self._clock = 0.0
        self._baseline: Optional[Dict[float, np.ndarray]] = None
        self._drift: Dict[float, float] = {}
        self._phase_noise: Dict[float, float] = {}
        self._reference_time = 0.0

    @property
    def frames_per_capture(self) -> int:
        """Channel estimates recorded per press reading."""
        return self.extractor.group_length * self.groups_per_capture

    @property
    def elapsed(self) -> float:
        """Total sounding time consumed so far [s]."""
        return self._clock

    def _use_fast_path(self) -> bool:
        """Whether the fused capture+extract path can serve this read.

        The harmonic fast path of :class:`repro.reader.batch.FastSounder`
        bypasses the frame-level stream, so it only runs when no fault
        plan is armed: an armed injector must see every site visited in
        the oracle's order (sounder-level faults perturb the stream,
        reader-level faults mutate it), which requires the stream path.
        """
        return (fault_armed() is None
                and hasattr(self.sounder, "capture_matrices")
                and hasattr(self.sounder, "supports_matrices")
                and self.sounder.supports_matrices(self.extractor))

    def _capture_matrices(self, state: TagState,
                          groups: int) -> Dict[float, HarmonicMatrix]:
        frames = self.extractor.group_length * groups
        fast = self._use_fast_path()
        with maybe_span("reader.capture", {"frames": frames,
                                           "fast": fast}):
            if fast:
                matrices = self.sounder.capture_matrices(
                    state, groups, self.extractor, start_time=self._clock)
                self._clock += frames * self.sounder.config.frame_period
            else:
                stream = self.sounder.capture(state, frames,
                                              start_time=self._clock)
                self._clock += frames * self.sounder.config.frame_period
                inj = fault_armed()
                if inj is not None:
                    fault = inj.draw("reader.capture")
                    if fault is not None:
                        stream = _faulted_stream(stream, fault)
                matrices = self.extractor.extract(stream)
        obs = active()
        if obs is not None:
            obs.counter("reader.captures").increment()
            obs.counter("reader.frames").increment(frames)
            if fast:
                obs.counter("reader.fast_captures").increment()
        return matrices

    def _derotated_vector(self, matrix: HarmonicMatrix,
                          tone: float) -> np.ndarray:
        rate = self._drift.get(tone, 0.0)
        rotation = np.exp(-1j * rate * (matrix.group_times
                                        - self._reference_time))
        return (matrix.values * rotation[:, None]).mean(axis=0)

    def capture_baseline(self) -> None:
        """Record the untouched reference and fit the clock drift.

        Captures ``baseline_groups`` phase groups, fits a linear phase
        slope per tone (the tag clock's frequency offset), and stores
        the drift-corrected reference vectors.
        """
        with maybe_span("reader.capture_baseline",
                        {"groups": self.baseline_groups}):
            matrices = self._capture_matrices(TagState(),
                                              self.baseline_groups)
            drift: Dict[float, float] = {}
            noise: Dict[float, float] = {}
            reference_time = 0.0
            for tone, matrix in matrices.items():
                trajectory = phase_trajectory(matrix)
                coefficients = np.polyfit(matrix.group_times, trajectory, 1)
                drift[tone] = float(coefficients[0])
                residual = trajectory - np.polyval(coefficients,
                                                   matrix.group_times)
                noise[tone] = float(np.std(residual))
                reference_time = float(matrix.group_times.mean())
            self._drift = drift
            self._phase_noise = noise
            self._reference_time = reference_time
            self._baseline = {
                tone: self._derotated_vector(matrix, tone)
                for tone, matrix in matrices.items()
            }
        obs = active()
        if obs is not None:
            obs.counter("reader.baselines").increment()
            for tone, tone_noise in noise.items():
                obs.histogram("reader.baseline_phase_noise_rad",
                              (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
                               1e-1, 3e-1, 1.0)).observe(tone_noise)

    @property
    def has_baseline(self) -> bool:
        """Whether a baseline has been captured."""
        return self._baseline is not None

    @property
    def drift_rates(self) -> Dict[float, float]:
        """Fitted per-tone clock drift rates [rad/s] (copy)."""
        return dict(self._drift)

    def capture_harmonics(self, state: TagState) -> Dict[float, np.ndarray]:
        """One capture's drift-corrected harmonic vectors per tone."""
        matrices = self._capture_matrices(state, self.groups_per_capture)
        return {tone: self._derotated_vector(matrix, tone)
                for tone, matrix in matrices.items()}

    def read(self, state: TagState,
             location_hint: Optional[float] = None,
             rebaseline: bool = False) -> PressReading:
        """Read the sensor once under ``state``.

        Args:
            state: The press applied during the capture.
            location_hint: Optional prior location [m].
            rebaseline: Capture a fresh untouched reference immediately
                before the press (the paper's before/after protocol;
                use when the sensor is known untouched between reads).

        Raises:
            ReaderError: No baseline available.
        """
        with maybe_span("reader.read"):
            if rebaseline or self._baseline is None:
                self.capture_baseline()
            phi1, phi2 = self._measure_phases(state)
            estimate = self.estimator.invert(phi1, phi2,
                                             location_hint=location_hint)
        obs = active()
        if obs is not None:
            obs.counter("reader.reads").increment()
        return PressReading(phi1=phi1, phi2=phi2, estimate=estimate)

    def measure_phases_batch(self, states: List[TagState]
                             ) -> Tuple[np.ndarray, np.ndarray]:
        """Differential phase pairs for many presses in one fused pass.

        Drives :meth:`repro.reader.batch.FastSounder.capture_batch`
        when the sounder offers it — every press in the sweep rides
        one time-contiguous array pass — and falls back to sequential
        :meth:`_measure_phases` captures otherwise (oracle sounder, or
        an armed fault plan, which must see every injection site in
        the stream path's order).  Captures a baseline first if none
        exists.  This is the acquisition loop of the surrogate
        training sweeps (:mod:`repro.surrogate.data`).
        """
        if self._baseline is None:
            self.capture_baseline()
        if not states:
            return np.zeros(0), np.zeros(0)
        batched = (fault_armed() is None
                   and hasattr(self.sounder, "capture_batch"))
        if not batched:
            pairs = [self._measure_phases(state) for state in states]
            return (np.array([pair[0] for pair in pairs]),
                    np.array([pair[1] for pair in pairs]))
        frames = self.frames_per_capture
        with maybe_span("reader.capture_batch",
                        {"captures": len(states),
                         "frames": frames * len(states)}):
            streams = self.sounder.capture_batch(states, frames,
                                                 start_time=self._clock)
            self._clock += (len(states) * frames
                            * self.sounder.config.frame_period)
            tone1 = self.extractor.tones[0]
            tone2 = self.extractor.tones[1]
            phi1 = np.zeros(len(states))
            phi2 = np.zeros(len(states))
            for index, stream in enumerate(streams):
                matrices = self.extractor.extract(stream)
                phi1[index] = differential_phase(
                    self._baseline[tone1],
                    self._derotated_vector(matrices[tone1], tone1))
                phi2[index] = differential_phase(
                    self._baseline[tone2],
                    self._derotated_vector(matrices[tone2], tone2))
        obs = active()
        if obs is not None:
            obs.counter("reader.captures").increment(len(states))
            obs.counter("reader.frames").increment(frames * len(states))
            obs.counter("reader.batched_captures").increment(len(states))
        return phi1, phi2

    def _measure_phases(self, state: TagState) -> Tuple[float, float]:
        """One capture's differential phase pair against the baseline."""
        assert self._baseline is not None
        with maybe_span("reader.measure_phases"):
            harmonics = self.capture_harmonics(state)
            tone1 = self.extractor.tones[0]
            tone2 = self.extractor.tones[1]
            phi1 = differential_phase(self._baseline[tone1],
                                      harmonics[tone1])
            phi2 = differential_phase(self._baseline[tone2],
                                      harmonics[tone2])
        return phi1, phi2

    @property
    def baseline_phase_noise(self) -> Dict[float, float]:
        """Per-tone group-phase noise [rad] measured during baseline."""
        return dict(self._phase_noise)

    def measured_phase_std(self) -> float:
        """Per-reading phase noise [rad] for error-bar propagation.

        The baseline's per-group scatter, averaged across tones and
        reduced by the groups averaged per reading.
        """
        if not self._phase_noise:
            raise ReaderError("capture_baseline() must run first")
        per_group = float(np.mean(list(self._phase_noise.values())))
        return per_group / np.sqrt(self.groups_per_capture)

    def read_with_uncertainty(self, state: TagState,
                              location_hint: Optional[float] = None,
                              rebaseline: bool = False):
        """Read the sensor and attach propagated error bars.

        Returns:
            (PressReading, ReadingUncertainty or None) — the
            uncertainty is ``None`` for no-touch readings.
        """
        from repro.core.uncertainty import reading_uncertainty

        reading = self.read(state, location_hint=location_hint,
                            rebaseline=rebaseline)
        if not reading.estimate.touched:
            return reading, None
        bars = reading_uncertainty(self.model, reading.estimate,
                                   self.measured_phase_std())
        return reading, bars

    def read_sequence(self, states: List[TagState]) -> List[PressReading]:
        """Read a timeline of press states (e.g. a fingertip profile).

        The baseline is captured once up front; drift correction keeps
        the reference valid across the sequence.  Captures run
        sequentially (the sounder clock is stateful) but the model
        inversions run as one batched grid search.
        """
        if self._baseline is None:
            self.capture_baseline()
        phases = [self._measure_phases(state) for state in states]
        if not phases:
            return []
        phi1 = np.array([pair[0] for pair in phases])
        phi2 = np.array([pair[1] for pair in phases])
        estimates = self.estimator.invert_batch(phi1, phi2)
        return [
            PressReading(phi1=pair[0], phi2=pair[1], estimate=estimate)
            for pair, estimate in zip(phases, estimates)
        ]
