"""Differential phase extraction (paper Eqns. 4-5).

The force observable is the phase *jump* of a readout tone between two
phase groups: conjugate-multiplying a group's harmonic vector with a
reference group's cancels the subcarrier-dependent air-propagation
phase exp(-j 2 pi k F d/c) and every other static factor, leaving only
the sensor's phase change.  Averaging the conjugate product over
subcarriers before taking the angle gives the paper's wideband
averaging gain.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import EstimationError
from repro.core.harmonics import HarmonicMatrix

ArrayLike = Union[np.ndarray]


def _conjugate_product(reference: np.ndarray, observed: np.ndarray) -> np.ndarray:
    reference = np.asarray(reference, dtype=complex)
    observed = np.asarray(observed, dtype=complex)
    if reference.shape != observed.shape:
        raise EstimationError(
            f"harmonic vectors disagree in shape: {reference.shape} vs "
            f"{observed.shape}"
        )
    return observed * np.conj(reference)


def differential_phase(reference: np.ndarray, observed: np.ndarray) -> float:
    """Subcarrier-averaged phase change [rad] between two harmonic vectors.

    ``angle( sum_k observed[k] conj(reference[k]) )`` — the coherent
    average weights subcarriers by their signal power, which is the
    maximum-ratio way to combine them.
    """
    product = _conjugate_product(reference, observed)
    total = product.sum()
    if total == 0:
        raise EstimationError("zero harmonic energy: no sensor signal found")
    return float(np.angle(total))


def per_subcarrier_phases(reference: np.ndarray,
                          observed: np.ndarray) -> np.ndarray:
    """Phase change per subcarrier [rad] (no averaging; for ablations)."""
    return np.angle(_conjugate_product(reference, observed))


def phase_trajectory(matrix: HarmonicMatrix,
                     reference_group: int = 0) -> np.ndarray:
    """Phase of every group relative to a reference group [rad].

    Group-to-group jumps are accumulated (Eqn. 4 applied sequentially
    and summed) so the trajectory unwraps naturally even when the total
    excursion exceeds pi.
    """
    groups = matrix.groups
    if not 0 <= reference_group < groups:
        raise EstimationError(
            f"reference group {reference_group} out of range [0, {groups})"
        )
    steps = np.zeros(groups)
    for g in range(1, groups):
        steps[g] = differential_phase(matrix.values[g - 1], matrix.values[g])
    cumulative = np.cumsum(steps)
    return cumulative - cumulative[reference_group]


def phase_stability_deg(matrix: HarmonicMatrix) -> float:
    """Std-dev [deg] of the group phases with no press applied.

    The paper's Fig. 18 metric: how stable the readout phase is across
    groups at a given deployment range.
    """
    if matrix.groups < 2:
        raise EstimationError("need at least 2 groups to measure stability")
    trajectory = np.degrees(phase_trajectory(matrix))
    return float(np.std(trajectory))


def harmonic_snr_db(matrix: HarmonicMatrix) -> float:
    """Rough per-group SNR [dB] of the tone from group-to-group scatter."""
    if matrix.groups < 2:
        raise EstimationError("need at least 2 groups to estimate SNR")
    mean_vector = matrix.values.mean(axis=0)
    scatter = matrix.values - mean_vector[None, :]
    signal = float(np.mean(np.abs(mean_vector) ** 2))
    noise = float(np.mean(np.abs(scatter) ** 2))
    if noise == 0.0:
        return float("inf")
    return 10.0 * float(np.log10(max(signal, 1e-300) / noise))
