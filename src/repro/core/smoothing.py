"""Kalman smoothing for streamed force/location tracks.

The raw streaming tracker inverts every phase group independently, so
its output carries the full per-group phase noise.  Forces evolve on
the mechanical settling timescale (~0.1-1 s, see
:mod:`repro.mechanics.dynamics`), i.e. over many 36 ms groups — a
constant-velocity Kalman filter across groups is the matched smoother.
The location state uses a near-static model (a press does not wander).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.tracking import TrackedSample
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SmoothedSample:
    """One smoothed tracking output.

    Attributes:
        time: Group mid-time [s].
        force: Smoothed force [N].
        force_rate: Estimated force slew [N/s].
        location: Smoothed location [m].
        touched: Pass-through of the raw touch classification.
    """

    time: float
    force: float
    force_rate: float
    location: float
    touched: bool


class _ConstantVelocityKalman:
    """Scalar constant-velocity Kalman filter (position + rate)."""

    def __init__(self, process_noise: float, measurement_noise: float):
        self.q = process_noise
        self.r = measurement_noise
        self.state = np.zeros(2)
        self.covariance = np.diag([1e3, 1e3])

    def reset(self, value: float) -> None:
        self.state = np.array([value, 0.0])
        self.covariance = np.diag([self.r, self.r])

    def step(self, measurement: float, dt: float) -> np.ndarray:
        transition = np.array([[1.0, dt], [0.0, 1.0]])
        process = self.q * np.array([[dt ** 3 / 3.0, dt ** 2 / 2.0],
                                     [dt ** 2 / 2.0, dt]])
        state = transition @ self.state
        covariance = transition @ self.covariance @ transition.T + process
        observation = np.array([1.0, 0.0])
        innovation = measurement - observation @ state
        innovation_var = observation @ covariance @ observation + self.r
        gain = covariance @ observation / innovation_var
        self.state = state + gain * innovation
        self.covariance = (np.eye(2) - np.outer(gain, observation)) @ covariance
        return self.state


class TrackSmoother:
    """Smooths a raw tracker output into a clean force/location track.

    Args:
        force_process_noise: Force slew spectral density [N^2/s^3];
            larger = trusts the measurements more during fast presses.
        force_measurement_std: Per-group force estimate noise [N].
        location_measurement_std: Per-group location noise [m].
        location_smoothing: Exponential smoothing factor for location
            in (0, 1]; 1 = no smoothing.
    """

    def __init__(self, force_process_noise: float = 400.0,
                 force_measurement_std: float = 0.25,
                 location_measurement_std: float = 0.3e-3,
                 location_smoothing: float = 0.4):
        if force_process_noise <= 0.0 or force_measurement_std <= 0.0:
            raise ConfigurationError(
                "force noise parameters must be positive"
            )
        if location_measurement_std <= 0.0:
            raise ConfigurationError(
                "location measurement std must be positive"
            )
        if not 0.0 < location_smoothing <= 1.0:
            raise ConfigurationError(
                f"location smoothing must be in (0, 1], got "
                f"{location_smoothing}"
            )
        self.force_process_noise = float(force_process_noise)
        self.force_measurement_std = float(force_measurement_std)
        self.location_measurement_std = float(location_measurement_std)
        self.location_smoothing = float(location_smoothing)

    def smooth(self, samples: List[TrackedSample]) -> List[SmoothedSample]:
        """Smooth a raw track; untouched gaps reset the filters."""
        if not samples:
            return []
        kalman = _ConstantVelocityKalman(
            self.force_process_noise, self.force_measurement_std ** 2)
        output: List[SmoothedSample] = []
        location: Optional[float] = None
        previous_time: Optional[float] = None
        in_touch = False
        for sample in samples:
            if not sample.touched:
                in_touch = False
                location = None
                output.append(SmoothedSample(
                    time=sample.time, force=0.0, force_rate=0.0,
                    location=0.0, touched=False))
                previous_time = sample.time
                continue
            if not in_touch:
                kalman.reset(sample.force)
                location = sample.location
                in_touch = True
                state = kalman.state
            else:
                dt = (sample.time - previous_time
                      if previous_time is not None else 0.036)
                state = kalman.step(sample.force, max(dt, 1e-6))
                alpha = self.location_smoothing
                location = (1.0 - alpha) * location + alpha * sample.location
            output.append(SmoothedSample(
                time=sample.time,
                force=float(max(0.0, state[0])),
                force_rate=float(state[1]),
                location=float(location),
                touched=True))
            previous_time = sample.time
        return output

    @staticmethod
    def track_noise(samples: List[SmoothedSample]) -> float:
        """RMS group-to-group force jitter of a touched track [N]."""
        forces = [s.force for s in samples if s.touched]
        if len(forces) < 3:
            raise ConfigurationError(
                "need at least 3 touched samples to measure jitter"
            )
        return float(np.std(np.diff(forces)))
