"""Per-reading uncertainty: error bars on (force, location).

A reading is only as good as its phases.  This module propagates the
measured phase noise through the calibrated model's local sensitivity
to give each reading a standard error on force and location — the
difference between "3.2 N" and "3.2 ± 0.15 N", which a downstream
controller (surgical feedback loop, UI debouncing) actually needs.

Linearised propagation: with phase covariance ``sigma_phi^2 I`` and the
model Jacobian ``J = d(phi1, phi2)/d(F, x)`` at the estimate,

    cov(F, x) = sigma_phi^2 (J^T J)^{-1}

The phase noise itself can be supplied directly or derived from the
harmonic SNR of the capture (`repro.core.phase.harmonic_snr_db`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import SensorModel
from repro.core.estimator import ForceLocationEstimate
from repro.errors import EstimationError


@dataclass(frozen=True)
class ReadingUncertainty:
    """Standard errors of one reading.

    Attributes:
        force_std: 1-sigma force uncertainty [N].
        location_std: 1-sigma location uncertainty [m].
        conditioning: Jacobian condition number (large = the two
            phases barely disambiguate force from location here).
    """

    force_std: float
    location_std: float
    conditioning: float

    def force_interval(self, estimate: ForceLocationEstimate,
                       sigmas: float = 2.0) -> tuple:
        """(low, high) force interval [N] at ``sigmas`` significance."""
        half = sigmas * self.force_std
        return (max(0.0, estimate.force - half), estimate.force + half)


def phase_std_from_snr(snr_db: float) -> float:
    """Phase standard deviation [rad] of a tone at the given SNR.

    High-SNR approximation ``sigma_phi = 1 / sqrt(2 SNR)`` (the phase
    CRLB for a complex tone in white noise).
    """
    if not np.isfinite(snr_db):
        return 0.0
    snr = 10.0 ** (snr_db / 10.0)
    if snr <= 0.0:
        raise EstimationError(f"SNR must be positive, got {snr_db} dB")
    return float(1.0 / np.sqrt(2.0 * snr))


def model_jacobian(model: SensorModel, force: float, location: float,
                   force_step: float = 0.05,
                   location_step: float = 0.25e-3) -> np.ndarray:
    """Numerical Jacobian d(phi1, phi2)/d(F, x) at an operating point.

    Central differences, clipped to the model's calibrated ranges.
    """
    force_low, force_high = model.force_range
    locations = model.locations
    location_low, location_high = float(locations[0]), float(locations[-1])

    def clamp_force(value: float) -> float:
        return float(np.clip(value, force_low, force_high))

    def clamp_location(value: float) -> float:
        return float(np.clip(value, location_low, location_high))

    f_plus = clamp_force(force + force_step)
    f_minus = clamp_force(force - force_step)
    x_plus = clamp_location(location + location_step)
    x_minus = clamp_location(location - location_step)
    if f_plus == f_minus or x_plus == x_minus:
        raise EstimationError(
            "operating point pinned to the calibration boundary; cannot "
            "form a Jacobian"
        )
    phi_f_plus = np.array(model.predict(f_plus, location))
    phi_f_minus = np.array(model.predict(f_minus, location))
    phi_x_plus = np.array(model.predict(force, x_plus))
    phi_x_minus = np.array(model.predict(force, x_minus))
    jacobian = np.empty((2, 2))
    jacobian[:, 0] = (phi_f_plus - phi_f_minus) / (f_plus - f_minus)
    jacobian[:, 1] = (phi_x_plus - phi_x_minus) / (x_plus - x_minus)
    return jacobian


def reading_uncertainty(model: SensorModel,
                        estimate: ForceLocationEstimate,
                        phase_std_rad: float) -> ReadingUncertainty:
    """Error bars for one inverted reading.

    Args:
        model: The calibrated model the estimate came from.
        estimate: The inversion result (must be a touched reading).
        phase_std_rad: Per-tone phase noise [rad] (from
            :func:`phase_std_from_snr` or a repeatability measurement).

    Raises:
        EstimationError: Untouched reading or degenerate Jacobian.
    """
    if not estimate.touched:
        raise EstimationError("cannot attach error bars to a no-touch "
                              "reading")
    if phase_std_rad < 0.0:
        raise EstimationError(
            f"phase std must be >= 0, got {phase_std_rad}"
        )
    jacobian = model_jacobian(model, estimate.force, estimate.location)
    gram = jacobian.T @ jacobian
    determinant = float(np.linalg.det(gram))
    if determinant <= 1e-30:
        raise EstimationError(
            "degenerate sensitivity: the two phases do not disambiguate "
            "force from location at this operating point"
        )
    covariance = phase_std_rad ** 2 * np.linalg.inv(gram)
    singular_values = np.linalg.svd(jacobian, compute_uv=False)
    conditioning = float(singular_values[0]
                         / max(singular_values[-1], 1e-30))
    return ReadingUncertainty(
        force_std=float(np.sqrt(max(covariance[0, 0], 0.0))),
        location_std=float(np.sqrt(max(covariance[1, 1], 0.0))),
        conditioning=conditioning,
    )
