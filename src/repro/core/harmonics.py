"""Phase groups and the snapshot-axis harmonic DFT (paper Eqns. 1-3).

The channel-estimate stream H[k, n] contains static multipath (DC along
the snapshot axis) plus the tag's duty-cycled modulation at the readout
tones fs and 4 fs.  Dividing the stream into groups of N snapshots and
taking the DFT across each group at the readout tones isolates the tag:

    P_i[k, g] = sum_{n in group g} H[k, n] w_n exp(-j 2 pi f_i t_n)

Static clutter is 60+ dB above the backscatter, so spectral leakage
from the DC bin matters.  Two defences are provided: choosing the
group length so every readout tone spans an integer number of cycles
(rectangular-window nulls land exactly on DC leakage, see
:func:`integer_period_group_length`), and an optional Hann window plus
per-group mean removal for streams where that is impossible.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ReaderError
from repro.reader.sounder import ChannelEstimateStream

#: Supported window names.
_WINDOWS = ("rect", "hann")


def integer_period_group_length(frame_period: float, base_frequency: float,
                                max_length: int = 100_000) -> int:
    """Smallest N with ``base_frequency * N * frame_period`` integer.

    With the paper's numbers (T = 57.6 us, fs = 1 kHz) this returns
    N = 625 (36 ms per group): every readout tone then completes an
    integer number of cycles per group and the rectangular-window DFT
    nulls the DC clutter exactly.

    Raises:
        ConfigurationError: No such N up to ``max_length`` (irrational
            ratio); use a Hann window instead.
    """
    if frame_period <= 0.0 or base_frequency <= 0.0:
        raise ConfigurationError("frame period and frequency must be positive")
    cycles_per_frame = Fraction(base_frequency * frame_period).limit_denominator(
        max_length)
    error = abs(float(cycles_per_frame) - base_frequency * frame_period)
    if error > 1e-12:
        raise ConfigurationError(
            "no integer-period group length found; the tone/frame ratio "
            "is effectively irrational — use window='hann'"
        )
    length = cycles_per_frame.denominator
    if length > max_length:
        raise ConfigurationError(
            f"integer-period group length {length} exceeds limit {max_length}"
        )
    return length


@dataclass(frozen=True)
class HarmonicMatrix:
    """P_i[k, g] for one readout tone.

    Attributes:
        tone: Readout tone [Hz].
        values: Complex harmonic amplitudes, shape (groups, subcarriers).
        group_times: Mid-group timestamps [s], shape (groups,).
    """

    tone: float
    values: np.ndarray
    group_times: np.ndarray

    @property
    def groups(self) -> int:
        """Number of phase groups."""
        return self.values.shape[0]

    def magnitude_db(self) -> np.ndarray:
        """Mean tone magnitude per group [dB]."""
        return 20.0 * np.log10(
            np.maximum(np.abs(self.values).mean(axis=1), 1e-300))


class HarmonicExtractor:
    """Splits a channel-estimate stream into phase groups and extracts
    the readout-tone amplitudes.

    Args:
        tones: Readout tones [Hz] (fs and 4 fs for the default scheme).
        group_length: Snapshots N per phase group.
        window: 'rect' (use with integer-period group lengths) or
            'hann'.
        remove_mean: Subtract each group's per-subcarrier mean before
            the DFT (kills DC clutter even without integer periods).
    """

    def __init__(self, tones: Sequence[float], group_length: int,
                 window: str = "rect", remove_mean: bool = True):
        if not tones:
            raise ConfigurationError("need at least one readout tone")
        if any(tone <= 0.0 for tone in tones):
            raise ConfigurationError("readout tones must be positive")
        if group_length < 4:
            raise ConfigurationError(
                f"group length must be >= 4, got {group_length}"
            )
        if window not in _WINDOWS:
            raise ConfigurationError(
                f"unknown window {window!r}; choose from {_WINDOWS}"
            )
        self.tones = tuple(float(tone) for tone in tones)
        self.group_length = int(group_length)
        self.window = window
        self.remove_mean = bool(remove_mean)

    def _window_values(self) -> np.ndarray:
        if self.window == "hann":
            return np.hanning(self.group_length)
        return np.ones(self.group_length)

    def check_stream(self, stream: ChannelEstimateStream) -> int:
        """Validate Nyquist and length; return the usable group count."""
        nyquist = 0.5 / stream.frame_period
        for tone in self.tones:
            if tone > nyquist:
                raise ReaderError(
                    f"readout tone {tone} Hz exceeds the stream's Nyquist "
                    f"limit {nyquist:.1f} Hz; slow the switch clocks or "
                    f"shorten the frame"
                )
        groups = stream.frames // self.group_length
        if groups < 1:
            raise ReaderError(
                f"stream too short: {stream.frames} frames < one group of "
                f"{self.group_length}"
            )
        return groups

    def extract(self, stream: ChannelEstimateStream
                ) -> Dict[float, HarmonicMatrix]:
        """Compute P_i[k, g] for every configured tone."""
        groups = self.check_stream(stream)
        n = self.group_length
        usable = groups * n
        estimates = stream.estimates[:usable].reshape(
            groups, n, stream.frequencies.size)
        times = stream.times[:usable].reshape(groups, n)
        if self.remove_mean:
            estimates = estimates - estimates.mean(axis=1, keepdims=True)
        window = self._window_values()
        window = window / window.sum()
        group_times = times.mean(axis=1)
        result: Dict[float, HarmonicMatrix] = {}
        for tone in self.tones:
            basis = np.exp(-2j * np.pi * tone * times) * window[None, :]
            values = np.einsum("gn,gnk->gk", basis, estimates)
            result[tone] = HarmonicMatrix(tone=tone, values=values,
                                          group_times=group_times)
        return result

    def doppler_spectrum(self, stream: ChannelEstimateStream,
                         group_index: int = 0
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Full snapshot-axis FFT of one phase group (diagnostics).

        Returns (doppler frequencies [Hz], mean magnitude across
        subcarriers) — the "artificial Doppler" view of Fig. 9, with
        clutter at DC and the tag at its readout tones.
        """
        groups = self.check_stream(stream)
        if not 0 <= group_index < groups:
            raise ReaderError(
                f"group index {group_index} out of range [0, {groups})"
            )
        n = self.group_length
        start = group_index * n
        block = stream.estimates[start:start + n]
        window = self._window_values()
        window = window / window.sum()
        spectrum = np.fft.fft(block * window[:, None], axis=0)
        frequencies = np.fft.fftfreq(n, d=stream.frame_period)
        order = np.argsort(frequencies)
        magnitude = np.abs(spectrum[order]).mean(axis=1)
        return frequencies[order], magnitude
