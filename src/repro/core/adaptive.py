"""Adaptive phase-group sizing.

The group-length ablation shows the trade-off: longer groups integrate
receiver noise down (phase noise ∝ 1/sqrt(N)) but accumulate more tag-
oscillator wander (∝ sqrt(N T)) and stretch the static-force
assumption.  Given a deployment's measured tone SNR and the oscillator
quality, the optimum is analytic — this module computes it and snaps it
to the nearest valid integer-period group length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.harmonics import integer_period_group_length
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GroupLengthChoice:
    """A tuned phase-group configuration.

    Attributes:
        group_length: Snapshots per group.
        group_duration: Seconds per group.
        predicted_phase_std_deg: Phase error at the chosen length.
        noise_limited: True when receiver noise (not oscillator
            wander) dominates at the chosen length.
    """

    group_length: int
    group_duration: float
    predicted_phase_std_deg: float
    noise_limited: bool


def predicted_phase_std_deg(group_length: int, frame_period: float,
                            per_snapshot_phase_std_deg: float,
                            jitter_deg_per_sqrt_s: float) -> float:
    """Phase error model at a given group length.

    Receiver-noise part ``sigma_0 / sqrt(N)`` plus oscillator random
    walk ``j * sqrt(N T)``, combined in quadrature.
    """
    if group_length < 1 or frame_period <= 0.0:
        raise ConfigurationError("need positive group length and period")
    if per_snapshot_phase_std_deg < 0.0 or jitter_deg_per_sqrt_s < 0.0:
        raise ConfigurationError("noise parameters must be >= 0")
    noise = per_snapshot_phase_std_deg / np.sqrt(group_length)
    wander = jitter_deg_per_sqrt_s * np.sqrt(group_length * frame_period)
    return float(np.hypot(noise, wander))


def optimal_group_length(frame_period: float, base_frequency: float,
                         per_snapshot_phase_std_deg: float,
                         jitter_deg_per_sqrt_s: float,
                         max_duration: float = 0.25) -> GroupLengthChoice:
    """Choose the phase-group length for a deployment.

    Minimises the analytic phase-error model over integer multiples of
    the integer-period base length (so the DC nulls are preserved),
    capped by ``max_duration`` (the static-force window).

    Args:
        frame_period: Channel-estimate period T [s].
        base_frequency: Tag base clock fs [Hz].
        per_snapshot_phase_std_deg: Single-snapshot tone phase noise
            [deg] (from the link budget or a measurement).
        jitter_deg_per_sqrt_s: Oscillator wander [deg/sqrt(s)].
        max_duration: Longest admissible group [s].
    """
    if max_duration <= 0.0:
        raise ConfigurationError("max duration must be positive")
    base = integer_period_group_length(frame_period, base_frequency)
    best: GroupLengthChoice = None  # type: ignore[assignment]
    multiple = 1
    while multiple * base * frame_period <= max_duration or multiple == 1:
        length = multiple * base
        error = predicted_phase_std_deg(
            length, frame_period, per_snapshot_phase_std_deg,
            jitter_deg_per_sqrt_s)
        noise_part = per_snapshot_phase_std_deg / np.sqrt(length)
        wander_part = jitter_deg_per_sqrt_s * np.sqrt(
            length * frame_period)
        choice = GroupLengthChoice(
            group_length=length,
            group_duration=length * frame_period,
            predicted_phase_std_deg=error,
            noise_limited=bool(noise_part >= wander_part),
        )
        if best is None or error < best.predicted_phase_std_deg:
            best = choice
        multiple += 1
        if multiple * base * frame_period > max_duration:
            break
    return best
