"""2-D continuum extension (paper section 7, future work).

The paper proposes covering a surface with several WiForce strips,
each clocked at a different base frequency so each lands in its own
Doppler bins.  A press between strips is interpolated from the force
each neighbouring strip picks up.  This module implements that
extension: sensor placements on a plane, per-strip readers, and a 2-D
(x, y, force) estimate combining the per-strip readings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.pipeline import PressReading, WiForceReader
from repro.errors import ConfigurationError, EstimationError
from repro.sensor.tag import TagState


@dataclass(frozen=True)
class ArraySensorPlacement:
    """One strip's pose in the 2-D plane.

    The strip runs along the x axis at height ``offset_y``; a press at
    plane coordinates (x, y) loads this strip with a share of the force
    that decays with |y - offset_y|.

    Attributes:
        reader: The strip's wireless reader (own clocks, own model).
        offset_y: Strip centre-line y coordinate [m].
    """

    reader: WiForceReader
    offset_y: float


@dataclass(frozen=True)
class PlanarEstimate:
    """A 2-D press estimate.

    Attributes:
        force: Total estimated force [N].
        x: Along-strip coordinate [m].
        y: Across-strip coordinate [m].
        per_strip: The contributing per-strip readings.
    """

    force: float
    x: float
    y: float
    per_strip: Tuple[PressReading, ...]


class TwoDimensionalArray:
    """Several parallel strips covering a 2-D surface.

    Args:
        placements: Strip placements, ascending ``offset_y``.
        coupling_width: Lateral length scale [m] over which a press
            shares force with a neighbouring strip (soft-layer
            spreading; of the order of the beam thickness).
    """

    def __init__(self, placements: Sequence[ArraySensorPlacement],
                 coupling_width: float = 8e-3):
        self._placements = list(placements)
        if len(self._placements) < 2:
            raise ConfigurationError("a 2-D array needs at least 2 strips")
        offsets = [p.offset_y for p in self._placements]
        if any(b <= a for a, b in zip(offsets, offsets[1:])):
            raise ConfigurationError("strip offsets must be ascending")
        if coupling_width <= 0.0:
            raise ConfigurationError(
                f"coupling width must be positive, got {coupling_width}"
            )
        self.coupling_width = float(coupling_width)
        base_clocks = set()
        for placement in self._placements:
            scheme = placement.reader.sounder.tag.clocking
            key = (scheme.clock_port1.frequency,
                   scheme.clock_port2.frequency)
            if key in base_clocks:
                raise ConfigurationError(
                    "strips must use distinct clock frequencies so their "
                    "Doppler bins do not collide"
                )
            base_clocks.add(key)

    @property
    def strips(self) -> List[ArraySensorPlacement]:
        """The strip placements (copy)."""
        return list(self._placements)

    def force_share(self, y: float, offset_y: float) -> float:
        """Fraction of a press at ``y`` carried by a strip at ``offset_y``.

        Triangular sharing over ``coupling_width``, normalised later
        across strips.
        """
        distance = abs(y - offset_y)
        return max(0.0, 1.0 - distance / self.coupling_width)

    def capture_baselines(self) -> None:
        """Capture the untouched baseline on every strip."""
        for placement in self._placements:
            placement.reader.capture_baseline()

    def press(self, force: float, x: float, y: float) -> PlanarEstimate:
        """Apply a plane press and estimate (force, x, y) from readings.

        Each strip is read under its shared portion of the force; the
        across-strip coordinate is recovered from the force-share
        centroid and the along-strip coordinate from the share-weighted
        mean of the per-strip location estimates.
        """
        if force < 0.0:
            raise EstimationError(f"force must be >= 0, got {force}")
        shares = np.array([
            self.force_share(y, p.offset_y) for p in self._placements])
        if shares.sum() <= 0.0:
            raise EstimationError(
                f"press at y={y} m is outside every strip's coupling range"
            )
        shares = shares / shares.sum()
        readings: List[PressReading] = []
        for placement, share in zip(self._placements, shares):
            state = TagState(force * float(share), x)
            readings.append(placement.reader.read(state))
        estimated_forces = np.array([r.force for r in readings])
        total_force = float(estimated_forces.sum())
        if total_force <= 0.0:
            return PlanarEstimate(force=0.0, x=0.0, y=0.0,
                                  per_strip=tuple(readings))
        weights = estimated_forces / total_force
        offsets = np.array([p.offset_y for p in self._placements])
        y_hat = float(np.sum(weights * offsets))
        touched = [(r, w) for r, w in zip(readings, weights)
                   if r.estimate.touched]
        if not touched:
            return PlanarEstimate(force=0.0, x=0.0, y=y_hat,
                                  per_strip=tuple(readings))
        x_hat = float(sum(r.location * w for r, w in touched)
                      / sum(w for _, w in touched))
        return PlanarEstimate(force=total_force, x=x_hat, y=y_hat,
                              per_strip=tuple(readings))
