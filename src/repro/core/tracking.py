"""Streaming force tracking: continuous (force, location) over time.

The per-press :class:`repro.core.pipeline.WiForceReader` answers "what
is the press right now"; this module answers the paper's Fig. 17b view
— a *force-versus-time profile* tracked group by group while a user
interacts with the sensor.  It consumes one long channel-estimate
stream, applies the paper's consecutive-group conjugate-multiply
(Eqns. 4-5) to build per-tone phase trajectories, detects touch onsets
and releases, and inverts the sensor model for every group where the
sensor is touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.calibration import SensorModel
from repro.core.estimator import ForceLocationEstimator
from repro.core.harmonics import HarmonicExtractor
from repro.core.phase import differential_phase
from repro.errors import EstimationError, ReaderError
from repro.obs.registry import active, maybe_span
from repro.reader.sounder import ChannelEstimateStream


@dataclass(frozen=True)
class TrackedSample:
    """One group's tracking output.

    Attributes:
        time: Group mid-time [s].
        phi1 / phi2: Phases relative to the untouched reference [rad].
        touched: Whether the sensor is classified as touched.
        force: Estimated force [N] (0 when untouched).
        location: Estimated location [m] (0 when untouched).
        quality: ``"ok"`` for a nominal group; ``"gap"`` for a group
            whose harmonic energy vanished (signal dropout — the
            tracker coasts through it untouched instead of aborting
            the stream); served samples may also carry the service
            qualities (``"degraded"``, ``"recovered"``,
            ``"quarantined"``).
    """

    time: float
    phi1: float
    phi2: float
    touched: bool
    force: float
    location: float
    quality: str = "ok"

    def to_dict(self) -> dict:
        """JSON-ready dict (plain python scalars only)."""
        return {
            "time": float(self.time),
            "phi1": float(self.phi1),
            "phi2": float(self.phi2),
            "touched": bool(self.touched),
            "force": float(self.force),
            "location": float(self.location),
            "quality": str(self.quality),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrackedSample":
        """Inverse of :meth:`to_dict` (``quality`` defaults ``"ok"``)."""
        return cls(
            time=float(payload["time"]),
            phi1=float(payload["phi1"]),
            phi2=float(payload["phi2"]),
            touched=bool(payload["touched"]),
            force=float(payload["force"]),
            location=float(payload["location"]),
            quality=str(payload.get("quality", "ok")),
        )


@dataclass(frozen=True)
class TouchEvent:
    """A detected touch interval.

    Attributes:
        onset: Touch start time [s].
        release: Touch end time [s] (stream end if still touched).
        peak_force: Largest estimated force during the touch [N].
        mean_location: Force-weighted mean location [m].
    """

    onset: float
    release: float
    peak_force: float
    mean_location: float

    def to_dict(self) -> dict:
        """JSON-ready dict (plain python scalars only)."""
        return {
            "onset": float(self.onset),
            "release": float(self.release),
            "peak_force": float(self.peak_force),
            "mean_location": float(self.mean_location),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TouchEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            onset=float(payload["onset"]),
            release=float(payload["release"]),
            peak_force=float(payload["peak_force"]),
            mean_location=float(payload["mean_location"]),
        )


class StreamingTracker:
    """Group-by-group tracker over one continuous capture.

    The first ``baseline_groups`` groups must be untouched: they set
    the phase reference and fit the tag clock's drift, which is then
    de-rotated from the whole stream.

    Args:
        model: Calibrated sensor model.
        extractor: Harmonic extractor (tones + group length).
        baseline_groups: Leading untouched groups for the reference.
        touch_threshold_deg: Phase departure that counts as a touch.
    """

    def __init__(self, model: SensorModel, extractor: HarmonicExtractor,
                 baseline_groups: int = 4,
                 touch_threshold_deg: float = 8.0):
        if baseline_groups < 2:
            raise ReaderError(
                f"need >= 2 baseline groups, got {baseline_groups}"
            )
        if len(extractor.tones) < 2:
            raise ReaderError("the tracker needs both readout tones")
        self.model = model
        self.extractor = extractor
        self.baseline_groups = int(baseline_groups)
        self.touch_threshold = np.radians(touch_threshold_deg)
        self.estimator = ForceLocationEstimator(
            model, touch_threshold_deg=touch_threshold_deg)

    def process(self, stream: ChannelEstimateStream) -> List[TrackedSample]:
        """Track the whole stream; returns one sample per phase group."""
        with maybe_span("tracker.process") as span:
            samples = self._process(stream)
            span.set("groups", len(samples))
        obs = active()
        if obs is not None:
            obs.counter("tracker.streams").increment()
            obs.counter("tracker.groups").increment(len(samples))
            obs.counter("tracker.touched_groups").increment(
                sum(1 for sample in samples if sample.touched))
            gaps = sum(1 for sample in samples if sample.quality == "gap")
            if gaps:
                obs.counter("tracker.gap_groups").increment(gaps)
        return samples

    def _process(self, stream: ChannelEstimateStream
                 ) -> List[TrackedSample]:
        matrices = self.extractor.extract(stream)
        tone1, tone2 = self.extractor.tones[0], self.extractor.tones[1]
        groups = matrices[tone1].groups
        if groups <= self.baseline_groups:
            raise ReaderError(
                f"stream has {groups} groups; need more than the "
                f"{self.baseline_groups} baseline groups"
            )
        times = matrices[tone1].group_times

        references = {}
        drifts = {}
        for tone, matrix in matrices.items():
            head = matrix.values[:self.baseline_groups]
            head_times = times[:self.baseline_groups]
            phases = np.zeros(self.baseline_groups)
            for g in range(1, self.baseline_groups):
                phases[g] = phases[g - 1] + differential_phase(
                    head[g - 1], head[g])
            drift = float(np.polyfit(head_times, phases, 1)[0])
            rotation = np.exp(-1j * drift * (head_times - head_times[0]))
            references[tone] = (head * rotation[:, None]).mean(axis=0)
            drifts[tone] = drift

        # Per-tone phases for every group at once: de-rotate the drift,
        # conjugate against the reference and take the coherent
        # subcarrier average — Eqns. 4-5 vectorized over groups.
        tone_phases = []
        gap = np.zeros(groups, dtype=bool)
        for tone in (tone1, tone2):
            matrix = matrices[tone]
            rotation = np.exp(-1j * drifts[tone] * (times - times[0]))
            vectors = matrix.values * rotation[:, None]
            products = vectors * np.conj(references[tone])[None, :]
            totals = products.sum(axis=1)
            zero = totals == 0
            if np.all(zero):
                raise EstimationError(
                    "zero harmonic energy: no sensor signal found"
                )
            # Isolated dead groups (signal dropout) are survivable:
            # flag them as gaps and coast through instead of aborting
            # the whole stream.
            gap |= zero
            tone_phases.append(np.angle(totals))
        phi1, phi2 = tone_phases
        touched = ((np.abs(phi1) > self.touch_threshold)
                   | (np.abs(phi2) > self.touch_threshold))
        touched &= ~gap
        force = np.zeros(groups)
        location = np.zeros(groups)
        active = np.flatnonzero(touched)
        if active.size:
            estimates = self.estimator.invert_batch(phi1[active],
                                                    phi2[active])
            force[active] = estimates.force
            location[active] = estimates.location
            touched[active] = estimates.touched
        return [
            TrackedSample(
                time=float(times[g]), phi1=float(phi1[g]),
                phi2=float(phi2[g]), touched=bool(touched[g]),
                force=float(force[g]), location=float(location[g]),
                quality="gap" if gap[g] else "ok")
            for g in range(groups)
        ]

    @staticmethod
    def touch_events(samples: List[TrackedSample],
                     min_groups: int = 1) -> List[TouchEvent]:
        """Segment a tracked stream into touch events.

        An empty stream, or one where no sample crosses the touch
        threshold, has no contact segments and yields ``[]`` rather
        than assuming at least one touch happened.

        Args:
            samples: Output of :meth:`process`.
            min_groups: Minimum touched groups for a valid event
                (debounce).
        """
        samples = list(samples)
        if not samples or not any(s.touched for s in samples):
            return []
        events: List[TouchEvent] = []
        current: Optional[List[TrackedSample]] = None
        for sample in samples:
            if sample.touched:
                if current is None:
                    current = []
                current.append(sample)
            elif current is not None:
                if len(current) >= min_groups:
                    events.append(StreamingTracker._event_from(current))
                current = None
        if current is not None and len(current) >= min_groups:
            events.append(StreamingTracker._event_from(current))
        return events

    @staticmethod
    def _event_from(samples: List[TrackedSample]) -> TouchEvent:
        if not samples:
            raise EstimationError("cannot build a touch event from an "
                                  "empty contact segment")
        forces = np.array([s.force for s in samples])
        locations = np.array([s.location for s in samples])
        weights = forces / forces.sum() if forces.sum() > 0 else None
        mean_location = float(np.average(locations, weights=weights))
        return TouchEvent(
            onset=samples[0].time,
            release=samples[-1].time,
            peak_force=float(forces.max()),
            mean_location=mean_location,
        )
