"""WiForce's core contribution: the wireless force-reading algorithm.

Paper section 3.3 end to end: group periodic wideband channel
estimates into *phase groups*, take the snapshot-axis DFT to isolate
the tag's "artificial Doppler" tones from static multipath, conjugate-
multiply consecutive groups to cancel air/hardware phase, average over
subcarriers for robustness, and invert a calibrated cubic phase-force
model to recover contact force magnitude and location.
"""

from repro.core.harmonics import (
    HarmonicExtractor,
    HarmonicMatrix,
    integer_period_group_length,
)
from repro.core.phase import (
    differential_phase,
    per_subcarrier_phases,
    phase_trajectory,
    phase_stability_deg,
)
from repro.core.adaptive import (
    GroupLengthChoice,
    optimal_group_length,
    predicted_phase_std_deg,
)
from repro.core.calibration import (
    CalibrationCurve,
    SensorModel,
    calibrate_port_observable,
    calibrate_harmonic_observable,
    calibrate_with_rig,
)
from repro.core.estimator import ForceLocationEstimate, ForceLocationEstimator
from repro.core.pipeline import WiForceReader, PressReading
from repro.core.diagnostics import (
    DiscoveredTag,
    DiscoveredTone,
    LinkReport,
    discover_tags,
    link_report,
    scan_tones,
)
from repro.core.smoothing import SmoothedSample, TrackSmoother
from repro.core.tracking import StreamingTracker, TouchEvent, TrackedSample
from repro.core.twodim import TwoDimensionalArray, ArraySensorPlacement
from repro.core.uncertainty import (
    ReadingUncertainty,
    model_jacobian,
    phase_std_from_snr,
    reading_uncertainty,
)

__all__ = [
    "HarmonicExtractor",
    "HarmonicMatrix",
    "integer_period_group_length",
    "differential_phase",
    "per_subcarrier_phases",
    "phase_trajectory",
    "phase_stability_deg",
    "GroupLengthChoice",
    "optimal_group_length",
    "predicted_phase_std_deg",
    "CalibrationCurve",
    "SensorModel",
    "calibrate_port_observable",
    "calibrate_harmonic_observable",
    "calibrate_with_rig",
    "ForceLocationEstimate",
    "ForceLocationEstimator",
    "WiForceReader",
    "PressReading",
    "DiscoveredTag",
    "DiscoveredTone",
    "LinkReport",
    "discover_tags",
    "link_report",
    "scan_tones",
    "SmoothedSample",
    "TrackSmoother",
    "StreamingTracker",
    "TouchEvent",
    "TrackedSample",
    "TwoDimensionalArray",
    "ArraySensorPlacement",
    "ReadingUncertainty",
    "model_jacobian",
    "phase_std_from_snr",
    "reading_uncertainty",
]
