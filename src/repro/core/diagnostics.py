"""Link diagnostics and blind tag discovery.

A deployed reader does not always know the tag's clock plan up front
(several strips may share a room, each on its own base frequency —
the 2-D extension of section 7).  This module scans the snapshot-axis
Doppler spectrum for switching-tone signatures, matches the WiForce
comb pattern (energy at fs and 4 fs, collision energy at 2 fs), and
reports per-tone link quality so a deployment can be validated before
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.harmonics import HarmonicExtractor
from repro.core.phase import harmonic_snr_db
from repro.errors import ReaderError
from repro.reader.sounder import ChannelEstimateStream


@dataclass(frozen=True)
class DiscoveredTone:
    """One spectral line found in the Doppler scan.

    Attributes:
        frequency: Tone frequency [Hz].
        magnitude_db: Tone magnitude relative to the spectrum floor.
    """

    frequency: float
    magnitude_db: float


@dataclass(frozen=True)
class DiscoveredTag:
    """A tag identified from its comb signature.

    Attributes:
        base_frequency: The tag's fs [Hz].
        readout_tones: (fs, 4 fs) [Hz].
        confidence_db: Weakest supporting line above the floor [dB].
    """

    base_frequency: float
    readout_tones: Tuple[float, float]
    confidence_db: float


def scan_tones(stream: ChannelEstimateStream, group_length: int,
               floor_percentile: float = 75.0,
               min_prominence_db: float = 12.0) -> List[DiscoveredTone]:
    """Find spectral lines in the snapshot-axis FFT of a stream.

    Args:
        stream: Channel estimates (untouched sensor is fine; the
            switching tones are always present).
        group_length: Snapshots per analysis group.
        floor_percentile: Percentile of the magnitude spectrum used as
            the noise floor.
        min_prominence_db: Required line height above the floor.

    Returns:
        Tones at positive frequencies, strongest first.
    """
    extractor = HarmonicExtractor(tones=(1.0,), group_length=group_length)
    frequencies, magnitude = extractor.doppler_spectrum(stream)
    positive = frequencies > 0.0
    frequencies = frequencies[positive]
    magnitude = magnitude[positive]
    floor = np.percentile(magnitude, floor_percentile)
    if floor <= 0.0:
        raise ReaderError("degenerate spectrum: zero noise floor")
    prominence_db = 20.0 * np.log10(np.maximum(magnitude, 1e-300) / floor)
    peaks = []
    for index in range(1, frequencies.size - 1):
        if (prominence_db[index] >= min_prominence_db
                and magnitude[index] >= magnitude[index - 1]
                and magnitude[index] >= magnitude[index + 1]):
            peaks.append(DiscoveredTone(
                frequency=float(frequencies[index]),
                magnitude_db=float(prominence_db[index])))
    peaks.sort(key=lambda tone: -tone.magnitude_db)
    return peaks


def discover_tags(stream: ChannelEstimateStream, group_length: int,
                  tolerance: float = 0.1,
                  min_prominence_db: float = 12.0) -> List[DiscoveredTag]:
    """Match WiForce comb signatures among the discovered tones.

    A WiForce tag shows lines at fs and 4 fs (its readout tones) and
    usually at 2 fs (the collision tone).  Any tone that has a partner
    at 4x its frequency is reported as a candidate tag.

    Args:
        stream: Channel estimates.
        group_length: Snapshots per analysis group.
        tolerance: Relative frequency matching tolerance.
        min_prominence_db: Line threshold for the underlying scan.
    """
    tones = scan_tones(stream, group_length,
                       min_prominence_db=min_prominence_db)
    frequencies = np.array([tone.frequency for tone in tones])
    tags: List[DiscoveredTag] = []
    claimed: set = set()
    for tone in tones:
        if tone.frequency in claimed:
            continue
        target = 4.0 * tone.frequency
        matches = np.flatnonzero(
            np.abs(frequencies - target) <= tolerance * target)
        if matches.size == 0:
            continue
        partner = tones[int(matches[0])]
        tags.append(DiscoveredTag(
            base_frequency=tone.frequency,
            readout_tones=(tone.frequency, partner.frequency),
            confidence_db=min(tone.magnitude_db, partner.magnitude_db)))
        claimed.add(tone.frequency)
        claimed.add(partner.frequency)
    tags.sort(key=lambda tag: -tag.confidence_db)
    return tags


@dataclass(frozen=True)
class LinkReport:
    """Per-tone link quality of one capture.

    Attributes:
        tone_snrs_db: (tone [Hz], SNR [dB]) pairs.
        usable: Whether every tone clears the threshold.
    """

    tone_snrs_db: Tuple[Tuple[float, float], ...]
    usable: bool


def link_report(stream: ChannelEstimateStream, tones: Sequence[float],
                group_length: int,
                min_snr_db: float = 10.0) -> LinkReport:
    """Measure per-tone SNR and judge deployment health.

    Run on an untouched capture before calibration: if a readout tone
    is buried, the deployment (range, TX power, direct-path isolation)
    needs fixing before any force reading can work.
    """
    extractor = HarmonicExtractor(tones=tuple(tones),
                                  group_length=group_length)
    matrices = extractor.extract(stream)
    snrs = []
    for tone in tones:
        snrs.append((float(tone), harmonic_snr_db(matrices[tone])))
    usable = all(snr >= min_snr_db for _, snr in snrs)
    return LinkReport(tone_snrs_db=tuple(snrs), usable=usable)
