"""Built-in service telemetry: counters, histograms, trace spans.

The scheduler's hot path increments counters and observes histograms
on every request, so the instruments here are deliberately tiny —
plain attribute updates, no locks (the service is single-event-loop)
and no external dependencies.  A :class:`Telemetry` registry owns the
instruments, snapshots them as a JSON-ready dict, and forwards span
events to a pluggable sink (:class:`MemorySink` for tests and the
bench report, :class:`NullSink` by default).

Latency histograms use fixed log-spaced bucket bounds; exact
percentiles for benchmark reports should be computed from the raw
samples (the load generator does), while :meth:`Histogram.quantile`
gives the usual bucket-interpolated estimate for monitoring.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError

#: Default latency buckets [s]: 100 us .. ~5 s, log-spaced.
LATENCY_BUCKETS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
                   1.0, 5.0)

#: Default batch-size buckets [requests].
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class TelemetrySink:
    """Receives span/event dicts; subclass to export elsewhere."""

    def emit(self, event: dict) -> None:
        """Handle one event dict (override)."""
        raise NotImplementedError


class NullSink(TelemetrySink):
    """Discards every event (the default)."""

    def emit(self, event: dict) -> None:
        pass


class MemorySink(TelemetrySink):
    """Keeps every event in a list (tests, bench reports)."""

    def __init__(self) -> None:
        self.events: List[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ServeError(f"counter {self.name} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        return {"name": self.name, "value": int(self.value)}


@dataclass
class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``bounds`` are upper bucket edges; observations above the last
    bound land in the implicit overflow bucket.
    """

    name: str
    bounds: Tuple[float, ...] = LATENCY_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def __post_init__(self) -> None:
        bounds = tuple(float(b) for b in self.bounds)
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise ServeError(
                f"histogram {self.name} needs strictly ascending "
                f"bucket bounds, got {bounds}"
            )
        self.bounds = bounds
        if not self.counts:
            self.counts = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = 0
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            index = len(self.bounds)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ServeError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target and count:
                low = 0.0 if index == 0 else self.bounds[index - 1]
                high = (self.maximum if index == len(self.bounds)
                        else self.bounds[index])
                fraction = (target - (cumulative - count)) / count
                return low + fraction * max(high - low, 0.0)
        return self.maximum

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": int(self.count),
            "sum": float(self.total),
            "mean": float(self.mean),
            "min": float(self.minimum) if self.count else None,
            "max": float(self.maximum) if self.count else None,
        }


class Span:
    """A lightweight trace span (context manager).

    Measures wall-clock duration with ``perf_counter`` and emits one
    event dict to the telemetry sink on exit; nothing is retained on
    the span itself, keeping the hot path allocation-light.
    """

    def __init__(self, telemetry: "Telemetry", name: str,
                 attributes: Optional[dict] = None):
        self._telemetry = telemetry
        self.name = name
        self.attributes = dict(attributes or {})
        self.duration_s: Optional[float] = None
        self._start = 0.0

    def set(self, key: str, value) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = time.perf_counter() - self._start
        event = {
            "span": self.name,
            "duration_s": self.duration_s,
            "error": exc_type.__name__ if exc_type else None,
        }
        event.update(self.attributes)
        self._telemetry.sink.emit(event)


class Telemetry:
    """Instrument registry with a JSON snapshot and pluggable sink.

    Args:
        sink: Where span events go; default discards them.
    """

    def __init__(self, sink: Optional[TelemetrySink] = None):
        self.sink = sink if sink is not None else NullSink()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str,
                  bounds: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        """Get or create the named histogram."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, tuple(bounds))
        return histogram

    def span(self, name: str,
             attributes: Optional[dict] = None) -> Span:
        """Open a trace span (use as a context manager)."""
        return Span(self, name, attributes)

    def snapshot(self) -> dict:
        """All instrument states as a JSON-ready dict."""
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "histograms": {name: histogram.to_dict()
                           for name, histogram
                           in sorted(self._histograms.items())},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
