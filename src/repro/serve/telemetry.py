"""Service telemetry — thin re-export of the shared ``repro.obs`` layer.

The instruments that used to live here (counters, histograms, trace
spans, pluggable sinks) were promoted to :mod:`repro.obs` so the whole
stack — reader, estimator, tracker, campaign executor — shares one
registry with the inference service.  This module keeps the historical
import surface: ``Telemetry`` is an alias of
:class:`repro.obs.Registry`, and the instrument classes and bucket
presets are the shared ones.  New code should import from
``repro.obs`` directly.
"""

from __future__ import annotations

from repro.obs.instruments import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MemorySink,
    NullSink,
    Span,
    TelemetrySink,
)
from repro.obs.registry import Registry

#: Historical name for the shared instrument registry.
Telemetry = Registry

__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MemorySink",
    "NullSink",
    "Registry",
    "Span",
    "Telemetry",
    "TelemetrySink",
]
