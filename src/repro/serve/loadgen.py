"""Synthetic multi-sensor load generation for the serve subsystem.

Drives :class:`InferenceService` with a reproducible fleet of sensor
streams whose phases come from the calibrated model's own forward
prediction (plus measurement noise), and reports what the north-star
cares about: tail latency, throughput, mean micro-batch size, and the
speedup over the serial one-request-at-a-time scalar baseline —
together with an element-wise parity check against that baseline,
since batching must never change the numbers.

The same entry point backs ``python -m repro serve-bench`` and the CI
benchmark smoke (``benchmarks/test_perf_serve.py``); both write the
machine-readable report to ``benchmarks/results/BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.core.calibration import SensorModel
from repro.core.estimator import ESTIMATOR_BACKENDS
from repro.errors import ServeError
from repro.obs.manifest import stamp_report
from repro.obs.profiler import Profiler
from repro.obs.registry import observed
from repro.serve.protocol import EstimateRequest, EstimateResponse, SensorConfig
from repro.serve.scheduler import BatchPolicy
from repro.serve.service import InferenceService
from repro.serve.session import ModelFactory


@dataclass(frozen=True)
class LoadProfile:
    """One synthetic load shape.

    Attributes:
        sensors: Concurrent sensor streams.
        requests_per_sensor: Samples per stream.
        max_batch / max_delay_s: Scheduler policy under test.
        batching: ``False`` benches the degraded scalar-direct path.
        touch_fraction: Fraction of samples that carry a press (the
            rest are untouched, below-threshold phases).
        phase_noise_deg: Measurement noise on the synthetic phases.
        sample_period_s: Stream timestamp spacing [s].
        carrier_frequency / fast / touch_threshold_deg / backend:
            Sensor config shared by the whole fleet (``backend``
            selects the inversion strategy, ``"grid"`` |
            ``"surrogate"``).
        seed: Reproducibility seed for the synthetic presses.
        arrival: Arrival-pattern shape for request submission:
            ``"uniform"`` spaces requests evenly at
            ``arrival_rate_rps``; ``"pareto"`` draws heavy-tailed
            (bursty) inter-arrival gaps with the same mean rate — the
            fleet-scale pattern real sensor swarms produce, where long
            quiet stretches alternate with packed bursts.
        arrival_rate_rps: Mean aggregate arrival rate [req/s]; 0 (the
            default) submits every request at once, the pre-existing
            closed-loop behavior.
        pareto_alpha: Tail exponent for ``"pareto"`` arrivals (must
            be > 1 so the mean gap is finite; smaller = burstier).
    """

    sensors: int = 8
    requests_per_sensor: int = 64
    max_batch: int = 32
    max_delay_s: float = 0.002
    batching: bool = True
    touch_fraction: float = 0.9
    phase_noise_deg: float = 1.0
    sample_period_s: float = 0.01
    carrier_frequency: float = 900e6
    fast: bool = True
    touch_threshold_deg: float = 5.0
    backend: str = "grid"
    seed: int = 7
    arrival: str = "uniform"
    arrival_rate_rps: float = 0.0
    pareto_alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.sensors < 1 or self.requests_per_sensor < 1:
            raise ServeError("load profile needs >= 1 sensor and "
                             ">= 1 request per sensor")
        if not 0.0 <= self.touch_fraction <= 1.0:
            raise ServeError(
                f"touch_fraction must be in [0, 1], got "
                f"{self.touch_fraction}")
        if self.backend not in ESTIMATOR_BACKENDS:
            raise ServeError(
                f"unknown estimator backend {self.backend!r}; "
                f"expected one of {ESTIMATOR_BACKENDS}")
        if self.arrival not in ("uniform", "pareto"):
            raise ServeError(
                f"arrival must be 'uniform' or 'pareto', got "
                f"{self.arrival!r}")
        if self.arrival_rate_rps < 0.0:
            raise ServeError(
                f"arrival_rate_rps must be >= 0, got "
                f"{self.arrival_rate_rps}")
        if self.pareto_alpha <= 1.0:
            raise ServeError(
                f"pareto_alpha must be > 1 (finite mean gap), got "
                f"{self.pareto_alpha}")

    @property
    def total_requests(self) -> int:
        """Requests across the whole fleet."""
        return self.sensors * self.requests_per_sensor

    @property
    def config(self) -> SensorConfig:
        """The fleet's shared sensor config."""
        return SensorConfig(
            carrier_frequency=self.carrier_frequency, fast=self.fast,
            touch_threshold_deg=self.touch_threshold_deg,
            backend=self.backend)


def generate_requests(model: SensorModel,
                      profile: LoadProfile) -> List[EstimateRequest]:
    """Build the fleet's request list (interleaved across sensors).

    Presses are drawn uniformly over the calibrated (force, location)
    envelope; phases are the model's forward prediction plus Gaussian
    measurement noise.  Untouched samples carry zero phases.  The
    returned list interleaves the streams sample-by-sample — the
    arrival order a multiplexing server would actually see.
    """
    rng = np.random.default_rng(profile.seed)
    total = profile.total_requests
    forces = rng.uniform(0.5, 8.0, total)
    low = float(model.locations[0])
    high = float(model.locations[-1])
    locations = rng.uniform(low, high, total)
    phi1, phi2 = model.predict_batch(forces, locations)
    noise = rng.normal(0.0, np.radians(profile.phase_noise_deg),
                       (2, total))
    phi1 = phi1 + noise[0]
    phi2 = phi2 + noise[1]
    untouched = rng.random(total) >= profile.touch_fraction
    phi1[untouched] = 0.0
    phi2[untouched] = 0.0
    config = profile.config
    requests = []
    index = 0
    for sequence in range(profile.requests_per_sensor):
        for sensor in range(profile.sensors):
            requests.append(EstimateRequest(
                sensor_id=f"sensor-{sensor:03d}",
                sequence=sequence,
                time=sequence * profile.sample_period_s,
                phi1=float(phi1[index]),
                phi2=float(phi2[index]),
                config=config,
            ))
            index += 1
    return requests


def generate_arrival_offsets(
        profile: LoadProfile) -> Optional[np.ndarray]:
    """Per-request submission offsets [s] for the arrival pattern.

    Returns None when ``arrival_rate_rps`` is 0 (submit everything at
    once).  Offsets start at 0 and are seeded independently of the
    press draws, so changing the arrival shape never changes *what*
    is requested, only *when*.

    ``"uniform"`` arrivals are evenly spaced at the mean gap;
    ``"pareto"`` gaps follow a Pareto distribution with minimum gap
    ``mean_gap * (alpha - 1) / alpha`` and tail exponent ``alpha``,
    scaled so the mean gap (and therefore the aggregate offered rate)
    matches the uniform pattern — only the burstiness differs.
    """
    if profile.arrival_rate_rps <= 0.0:
        return None
    total = profile.total_requests
    mean_gap = 1.0 / profile.arrival_rate_rps
    if profile.arrival == "uniform":
        gaps = np.full(total, mean_gap)
    else:
        rng = np.random.default_rng(profile.seed + 0x9E3779B9)
        alpha = profile.pareto_alpha
        # rng.pareto draws the Lomax form; +1 shifts to a classic
        # Pareto with minimum 1 and mean alpha / (alpha - 1).
        draws = rng.pareto(alpha, total) + 1.0
        gaps = draws * (mean_gap * (alpha - 1.0) / alpha)
    offsets = np.cumsum(gaps)
    return offsets - offsets[0]


async def run_service_load(
    service: InferenceService, requests: List[EstimateRequest],
    offsets: Optional[np.ndarray] = None,
) -> Tuple[List[EstimateResponse], float]:
    """Fire every request; returns (responses, wall s).

    Without ``offsets`` every request is submitted concurrently (the
    closed-loop saturation pattern); with them, request *i* is held
    back ``offsets[i]`` seconds first (open-loop arrival shaping —
    see :func:`generate_arrival_offsets`).
    """
    start = time.perf_counter()
    if offsets is None:
        responses = await service.estimate_many(requests)
    else:
        async def paced(request: EstimateRequest,
                        delay: float) -> EstimateResponse:
            if delay > 0.0:
                await asyncio.sleep(delay)
            return await service.estimate(request)

        responses = list(await asyncio.gather(
            *(paced(request, float(delay))
              for request, delay in zip(requests, offsets))))
    return responses, time.perf_counter() - start


def run_benchmark(profile: Optional[LoadProfile] = None,
                  model_factory: Optional[ModelFactory] = None,
                  profiler: Optional[Profiler] = None) -> dict:
    """Run the load against the service and the serial baseline.

    Returns the JSON-ready report: latency percentiles, throughput,
    mean batch size, serial-baseline comparison, parity deltas, the
    service telemetry snapshot, and a run manifest (git SHA, config
    hash, and the full shared-registry snapshot — the whole run
    executes inside :func:`repro.obs.observed`, so estimator and
    service instruments land in one registry).

    Args:
        profile: Load shape; paper-default when omitted.
        model_factory: Config -> model override for the session cache.
        profiler: Optional hotspot profiler; the bench stages
            (calibrate / generate / serial baseline / service) are
            recorded into it when given.
    """
    if profile is None:
        profile = LoadProfile()
    if profiler is None:
        profiler = Profiler(enabled=False)
    policy = BatchPolicy(
        max_batch=profile.max_batch,
        max_delay_s=profile.max_delay_s,
        max_queue=max(1024, profile.total_requests),
        enabled=profile.batching,
    )
    with observed() as registry:
        service = InferenceService(policy=policy,
                                   model_factory=model_factory,
                                   registry=registry)
        with profiler.section("calibrate"):
            estimator = service.sessions.estimator(profile.config)
        with profiler.section("generate_requests"):
            requests = generate_requests(estimator.model, profile)
            offsets = generate_arrival_offsets(profile)

        # Serial baseline: one scalar inversion at a time, the
        # pre-serve consumption pattern.
        with profiler.section("serial_baseline"):
            start = time.perf_counter()
            serial = [estimator.invert(request.phi1, request.phi2)
                      for request in requests]
            serial_seconds = time.perf_counter() - start

        with profiler.section("service_load"):
            responses, service_seconds = asyncio.run(
                run_service_load(service, requests, offsets))

    force_delta = max(abs(response.estimate.force - expected.force)
                      for response, expected in zip(responses, serial))
    location_delta = max(abs(response.estimate.location - expected.location)
                         for response, expected in zip(responses, serial))
    touched_match = all(response.estimate.touched == expected.touched
                        for response, expected in zip(responses, serial))

    latencies = np.array([response.latency_s for response in responses])
    batch_sizes = np.array([response.batch_size for response in responses])
    total = len(requests)
    profile_block = {
        "sensors": profile.sensors,
        "requests_per_sensor": profile.requests_per_sensor,
        "total_requests": total,
        "max_batch": profile.max_batch,
        "max_delay_s": profile.max_delay_s,
        "batching": profile.batching,
        "seed": profile.seed,
        "carrier_frequency": profile.carrier_frequency,
        "backend": profile.backend,
        "arrival": profile.arrival,
        "arrival_rate_rps": profile.arrival_rate_rps,
        "pareto_alpha": profile.pareto_alpha,
    }
    report = {
        "profile": profile_block,
        "service": {
            "wall_seconds": service_seconds,
            "throughput_rps": total / service_seconds,
            "latency_p50_s": float(np.percentile(latencies, 50)),
            "latency_p99_s": float(np.percentile(latencies, 99)),
            "latency_mean_s": float(latencies.mean()),
            "mean_batch_size": float(batch_sizes.mean()),
            "max_batch_size": int(batch_sizes.max()),
        },
        "serial_baseline": {
            "wall_seconds": serial_seconds,
            "throughput_rps": total / serial_seconds,
        },
        "speedup_vs_serial": serial_seconds / service_seconds,
        "parity": {
            "max_force_delta_n": float(force_delta),
            "max_location_delta_m": float(location_delta),
            "touched_match": bool(touched_match),
        },
        "telemetry": service.telemetry_snapshot(),
    }
    return stamp_report(report, config=profile_block, registry=registry)


def write_report(report: dict, path) -> Path:
    """Persist a benchmark report as pretty JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def summarize(report: dict) -> str:
    """Human-readable one-screen summary of a benchmark report."""
    service = report["service"]
    serial = report["serial_baseline"]
    parity = report["parity"]
    lines = [
        f"requests          : {report['profile']['total_requests']} "
        f"({report['profile']['sensors']} sensors x "
        f"{report['profile']['requests_per_sensor']} samples)",
        f"service throughput: {service['throughput_rps']:10.0f} req/s",
        f"serial baseline   : {serial['throughput_rps']:10.0f} req/s",
        f"speedup           : {report['speedup_vs_serial']:10.2f}x",
        f"latency p50 / p99 : {service['latency_p50_s'] * 1e3:7.2f} / "
        f"{service['latency_p99_s'] * 1e3:.2f} ms",
        f"mean batch size   : {service['mean_batch_size']:10.1f}",
        f"parity            : force <= {parity['max_force_delta_n']:.2e} N,"
        f" location <= {parity['max_location_delta_m']:.2e} m, "
        f"touched {'match' if parity['touched_match'] else 'MISMATCH'}",
    ]
    return "\n".join(lines)
