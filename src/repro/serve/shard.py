"""Consistent-hash sharding of the serve layer across workers.

One :class:`InferenceService` owns one event loop, one micro-batch
scheduler, and one session table — past a point, one of each is the
bottleneck.  :class:`ShardedInferenceService` splits the fleet across
N independent shards, each a full service with its own scheduler and
its own telemetry registry, and routes every request by **consistent
hashing on the sensor id** over a :class:`HashRing`.

Routing is a pure function of ``(sensor_id, shards, vnodes, salt)``:
SHA-256 points, no process-seeded hashing, so the same sensor lands on
the same shard in every process on every machine.  Because sessions
are per-sensor and the estimator is element-wise, partitioning sensors
across shards never changes a single bit of any response — only which
scheduler coalesces it.  All of one sensor's requests stay on one
shard, preserving the per-session ordering the drift corrector needs.

The ring uses virtual nodes so shard loads stay balanced (the classic
consistent-hashing construction): each shard owns ``vnodes`` points on
a 64-bit circle, a sensor maps to the first point clockwise of its own
hash.  ``repro fleet-bench`` (see :mod:`repro.serve.fleet`) drives the
sharded service with a threaded worker per shard and checks the
bit-identical-to-single-shard contract under load.
"""

from __future__ import annotations

import asyncio
import hashlib
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence

from repro.core.tracking import TouchEvent
from repro.errors import ServeError
from repro.faults.retry import RetryPolicy
from repro.obs.registry import Registry
from repro.serve.protocol import EstimateRequest, EstimateResponse
from repro.serve.scheduler import BatchPolicy
from repro.serve.service import InferenceService
from repro.serve.session import ModelFactory


def _point(key: str) -> int:
    """A key's position on the 64-bit hash circle (stable everywhere)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping sensor ids to shard indices.

    Args:
        shards: Number of shards (>= 1).
        vnodes: Virtual nodes per shard; more points = tighter load
            balance at a small lookup-table cost.
        salt: Namespace prefix for the shard points, so two rings of
            the same size can be given disjoint layouts.
    """

    def __init__(self, shards: int, vnodes: int = 64,
                 salt: str = "wiforce"):
        if shards < 1:
            raise ServeError(f"hash ring needs >= 1 shard, got {shards}")
        if vnodes < 1:
            raise ServeError(f"hash ring needs >= 1 vnode, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        self.salt = salt
        points = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append((_point(f"{salt}/{shard}/{vnode}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_for(self, sensor_id: str) -> int:
        """The shard owning ``sensor_id`` (first point clockwise)."""
        index = bisect_right(self._points, _point(sensor_id))
        return self._owners[index % len(self._owners)]

    def distribution(self, sensor_ids: Sequence[str]) -> List[int]:
        """Sensor count per shard for a concrete fleet."""
        counts = [0] * self.shards
        for sensor_id in sensor_ids:
            counts[self.shard_for(sensor_id)] += 1
        return counts

    def balance(self, sensor_ids: Sequence[str]) -> float:
        """min/max shard load over a fleet (1.0 = perfectly even).

        Deterministic for a fixed fleet and ring layout, so it gates
        ring-construction regressions machine-independently.
        """
        counts = self.distribution(sensor_ids)
        largest = max(counts)
        return min(counts) / largest if largest else 1.0

    def __len__(self) -> int:
        return self.shards


class ShardedInferenceService:
    """N independent :class:`InferenceService` shards behind one ring.

    Every shard owns its own micro-batch scheduler, session table, and
    telemetry :class:`Registry` — nothing is shared across shards, so
    they can be driven from separate threads or event loops without
    coordination (what :class:`repro.serve.fleet.FleetHarness` does).

    Constructor arguments mirror :class:`InferenceService` and are
    applied to every shard.
    """

    def __init__(self, shards: int = 4, vnodes: int = 64,
                 policy: Optional[BatchPolicy] = None,
                 model_factory: Optional[ModelFactory] = None,
                 baseline_samples: int = 0,
                 history: bool = True,
                 retry_policy: Optional[RetryPolicy] = None,
                 max_sessions: Optional[int] = None,
                 idle_ttl_s: Optional[float] = None):
        self.ring = HashRing(shards, vnodes=vnodes)
        self.services = [
            InferenceService(policy=policy, model_factory=model_factory,
                             baseline_samples=baseline_samples,
                             history=history, registry=Registry(),
                             retry_policy=retry_policy,
                             max_sessions=max_sessions,
                             idle_ttl_s=idle_ttl_s)
            for _ in range(shards)
        ]

    @property
    def shards(self) -> int:
        """Number of shards."""
        return len(self.services)

    def shard_for(self, sensor_id: str) -> int:
        """Deterministic shard index for a sensor."""
        return self.ring.shard_for(sensor_id)

    def service_for(self, sensor_id: str) -> InferenceService:
        """The shard service owning a sensor."""
        return self.services[self.ring.shard_for(sensor_id)]

    async def estimate(self, request: EstimateRequest) -> EstimateResponse:
        """Route one request to its shard (single-loop convenience)."""
        return await self.service_for(request.sensor_id).estimate(request)

    async def estimate_dict(self, payload: dict) -> dict:
        """JSON-boundary variant of :meth:`estimate` (dict in/out)."""
        request = EstimateRequest.from_dict(payload)
        response = await self.estimate(request)
        return response.to_dict()

    async def estimate_many(
        self, requests: Sequence[EstimateRequest],
    ) -> List[EstimateResponse]:
        """Serve a burst across all shards, in request order."""
        return list(await asyncio.gather(
            *(self.estimate(request) for request in requests)))

    def touch_events(self, sensor_id: str,
                     min_groups: int = 1) -> List[TouchEvent]:
        """Touch events from the owning shard's session history."""
        return self.service_for(sensor_id).touch_events(
            sensor_id, min_groups=min_groups)

    def drain(self) -> None:
        """Flush parked micro-batches on every shard."""
        for service in self.services:
            service.drain()

    def telemetry_snapshot(self) -> Dict:
        """Fleet-wide snapshot: merged instruments + per-shard stats.

        Counters sum and histograms merge across shards through
        :meth:`repro.obs.Registry.merge_snapshot`, so aggregate
        latency percentiles are computable from the merged histograms;
        the ``shards`` list keeps the per-shard session-cache stats
        for spotting imbalance.
        """
        aggregate = Registry()
        per_shard = []
        session_totals = {"count": 0, "model_builds": 0,
                          "model_hits": 0, "evictions": 0}
        for index, service in enumerate(self.services):
            snapshot = service.telemetry_snapshot()
            sessions = snapshot.pop("sessions")
            aggregate.merge_snapshot(snapshot)
            for key in session_totals:
                session_totals[key] += sessions[key]
            per_shard.append({
                "shard": index,
                "sessions": sessions,
                "responses": snapshot.get("counters", {}).get(
                    "serve.responses", 0),
            })
        merged = aggregate.snapshot()
        merged["sessions"] = session_totals
        merged["shards"] = per_shard
        return merged
