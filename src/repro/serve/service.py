"""The asyncio inference service: streams in, estimates out.

:class:`InferenceService` is the façade that ties the serve subsystem
together.  Per request it

1. routes the sample to its :class:`SensorSession` (building or
   reusing the calibrated model via the config-keyed cache),
2. applies the session's baseline/drift correction,
3. awaits the micro-batch scheduler (requests from every sensor that
   shares a config coalesce into one ``invert_batch`` call),
4. records the tracked sample into the session history and returns an
   :class:`EstimateResponse` carrying the estimate plus batching
   telemetry.

The service is transport-agnostic: ``estimate`` takes and returns the
protocol dataclasses, ``estimate_dict`` speaks their JSON dict forms
(what a websocket/HTTP adapter would call).  Telemetry covers the full
request path — admission counters, end-to-end latency histograms, and
the scheduler's batch/queue instruments share one registry, exported
by :meth:`telemetry_snapshot`.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence

from repro.core.tracking import TouchEvent, TrackedSample
from repro.errors import QueueFullError, ServeError
from repro.faults.retry import RetryPolicy, retry_async
from repro.obs.instruments import TelemetrySink
from repro.obs.registry import Registry
from repro.serve.protocol import EstimateRequest, EstimateResponse
from repro.serve.scheduler import BatchPolicy, MicroBatchScheduler
from repro.serve.session import ModelFactory, SessionManager


class InferenceService:
    """Multiplexes many sensor streams into batched model inversions.

    Args:
        policy: Micro-batching knobs (see :class:`BatchPolicy`).
        model_factory: Config -> model builder for the session cache.
        baseline_samples: Per-session untouched warmup window (0 when
            streams are already baseline-referenced).
        sink: Telemetry sink for trace spans (ignored when
            ``registry`` is given — the registry owns its sink).
        history: Keep per-session tracked histories (needed for
            touch-event queries; disable for unbounded streams).
        registry: Share an existing :class:`repro.obs.Registry` (e.g.
            ``repro.obs.get_registry()``) so the service's instruments
            land next to the reader/estimator/campaign ones; default
            is a private registry, keeping services isolated.
        retry_policy: Bounded retry budget applied when the scheduler
            answers :class:`QueueFullError` — transient backpressure
            (a momentarily full queue, an injected rejection) is
            retried with seeded exponential backoff before the error
            reaches the caller.  ``attempts=1`` disables retrying.
        max_sessions / idle_ttl_s: Session-eviction bounds forwarded
            to the :class:`SessionManager` (both off by default; the
            network gateway turns them on so connect/disconnect churn
            cannot grow memory without bound).
    """

    def __init__(self, policy: Optional[BatchPolicy] = None,
                 model_factory: Optional[ModelFactory] = None,
                 baseline_samples: int = 0,
                 sink: Optional[TelemetrySink] = None,
                 history: bool = True,
                 registry: Optional[Registry] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 max_sessions: Optional[int] = None,
                 idle_ttl_s: Optional[float] = None):
        self.telemetry = registry if registry is not None \
            else Registry(sink)
        self.sessions = SessionManager(model_factory,
                                       baseline_samples=baseline_samples,
                                       history=history,
                                       max_sessions=max_sessions,
                                       idle_ttl_s=idle_ttl_s)
        self.scheduler = MicroBatchScheduler(policy,
                                             telemetry=self.telemetry)
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())

    async def estimate(self, request: EstimateRequest) -> EstimateResponse:
        """Serve one request (may park awaiting its micro-batch).

        Raises:
            QueueFullError: Backpressure — the scheduler queue stayed
                full through the whole retry budget.
            ServeError: Session/config routing failure.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        with self.telemetry.span(
                "serve.estimate",
                {"sensor_id": request.sensor_id,
                 "sequence": request.sequence}):
            with self.telemetry.span(
                    "serve.session", {"sensor_id": request.sensor_id}):
                session = self.sessions.session(request.sensor_id,
                                                request.config)
                phi1, phi2 = session.correct(request.time, request.phi1,
                                             request.phi2)
            retried = False

            def _saw_retry(attempt: int, exc: BaseException) -> None:
                nonlocal retried
                retried = True

            scheduled = await retry_async(
                lambda: self.scheduler.submit(
                    session.estimator, phi1, phi2,
                    location_hint=request.location_hint,
                    key=session.config),
                policy=self.retry_policy,
                retry_on=(QueueFullError,),
                name="serve.submit",
                on_retry=_saw_retry)
            quality = scheduled.quality
            if retried and quality == "ok":
                quality = "recovered"
            session.note_quality(quality)
            if session.quarantined:
                quality = "quarantined"
            estimate = scheduled.estimate
            session.record(TrackedSample(
                time=request.time, phi1=phi1, phi2=phi2,
                touched=estimate.touched, force=estimate.force,
                location=estimate.location, quality=quality))
        latency = loop.time() - start
        self.telemetry.histogram("serve.latency_seconds").observe(latency)
        self.telemetry.counter("serve.responses").increment()
        return EstimateResponse(
            sensor_id=request.sensor_id, sequence=request.sequence,
            time=request.time, estimate=estimate,
            batch_size=scheduled.batch_size, latency_s=latency,
            quality=quality)

    async def estimate_dict(self, payload: dict) -> dict:
        """JSON-boundary variant of :meth:`estimate` (dict in/out)."""
        request = EstimateRequest.from_dict(payload)
        response = await self.estimate(request)
        return response.to_dict()

    async def estimate_many(
        self, requests: Sequence[EstimateRequest],
    ) -> List[EstimateResponse]:
        """Serve a burst of requests concurrently, in request order."""
        return list(await asyncio.gather(
            *(self.estimate(request) for request in requests)))

    def touch_events(self, sensor_id: str,
                     min_groups: int = 1) -> List[TouchEvent]:
        """Touch events segmented from one sensor's served history.

        Raises:
            ServeError: No session exists for ``sensor_id`` (queries
                never open sessions — only requests do).
        """
        session = self.sessions.get(sensor_id)
        if session is None:
            raise ServeError(f"no session for sensor {sensor_id!r}")
        return session.touch_events(min_groups=min_groups)

    def drain(self) -> None:
        """Flush any parked micro-batches immediately."""
        self.scheduler.flush_all()

    def telemetry_snapshot(self) -> Dict:
        """Counters/histograms plus session-cache stats (JSON-ready)."""
        snapshot = self.telemetry.snapshot()
        snapshot["sessions"] = {
            "count": len(self.sessions),
            "model_builds": self.sessions.model_builds,
            "model_hits": self.sessions.model_hits,
            "evictions": self.sessions.evictions,
        }
        return snapshot
