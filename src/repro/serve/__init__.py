"""``repro.serve`` — async streaming inference service.

Multiplexes many per-sensor streams of phase samples into adaptive
micro-batched :meth:`ForceLocationEstimator.invert_batch` calls, with
bounded-queue backpressure, graceful scalar degradation, and built-in
telemetry.  See DESIGN.md ("Serving architecture") for the data flow
and README.md ("Serving") for the quickstart.
"""

from repro.serve.fleet import (
    FleetHarness,
    FleetProfile,
    run_fleet_benchmark,
    summarize_fleet,
)
from repro.serve.loadgen import (
    LoadProfile,
    generate_requests,
    run_benchmark,
    run_service_load,
    summarize,
    write_report,
)
from repro.serve.protocol import (
    EstimateRequest,
    EstimateResponse,
    SensorConfig,
)
from repro.serve.scheduler import (
    BatchPolicy,
    MicroBatchScheduler,
    ScheduledEstimate,
)
from repro.serve.service import InferenceService
from repro.serve.session import SensorSession, SessionManager
from repro.serve.shard import HashRing, ShardedInferenceService
from repro.serve.telemetry import (
    Counter,
    Histogram,
    MemorySink,
    NullSink,
    Span,
    Telemetry,
    TelemetrySink,
)

__all__ = [
    "BatchPolicy",
    "Counter",
    "EstimateRequest",
    "EstimateResponse",
    "FleetHarness",
    "FleetProfile",
    "HashRing",
    "Histogram",
    "InferenceService",
    "LoadProfile",
    "MemorySink",
    "MicroBatchScheduler",
    "NullSink",
    "ScheduledEstimate",
    "SensorConfig",
    "SensorSession",
    "SessionManager",
    "ShardedInferenceService",
    "Span",
    "Telemetry",
    "TelemetrySink",
    "generate_requests",
    "run_benchmark",
    "run_fleet_benchmark",
    "run_service_load",
    "summarize",
    "summarize_fleet",
    "write_report",
]
