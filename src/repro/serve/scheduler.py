"""Adaptive micro-batch scheduling over ``invert_batch``.

Many concurrent sessions await estimates; one estimator inversion over
N stacked samples costs far less than N scalar inversions (see
``benchmarks/results/BENCH_estimator.json``).  The scheduler exploits
that: requests for the same estimator are parked in a per-estimator
group and flushed as one :meth:`ForceLocationEstimator.invert_batch`
call when either

* the group reaches ``max_batch`` requests (size flush), or
* the oldest request has waited ``max_delay_s`` (deadline flush),

whichever comes first — small batches under light load keep latency
bounded, large batches under heavy load keep throughput high.

Robustness:

* **Backpressure** — admission is bounded by ``max_queue`` pending
  requests; beyond it :class:`repro.errors.QueueFullError` is raised
  instead of growing the queue without bound.
* **Graceful degradation** — with batching disabled
  (``enabled=False``) every request runs the scalar
  :meth:`ForceLocationEstimator.invert` path directly; if a batched
  flush raises, the scheduler falls back to per-request scalar
  inversion so one poisoned sample only fails its own future.

Parity: ``invert_batch`` is element-wise identical to ``invert``
(property-tested in ``tests/test_serve_service.py``), so batching is
purely a throughput optimisation — results never depend on which
requests happened to share a micro-batch.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.core.estimator import ForceLocationEstimate, ForceLocationEstimator
from repro.errors import QueueFullError, ServeError
from repro.faults.inject import FaultEvent, armed as fault_armed
from repro.faults.retry import CircuitBreaker
from repro.obs import trace
from repro.obs.instruments import BATCH_BUCKETS
from repro.obs.registry import Registry as Telemetry

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class BatchPolicy:
    """Micro-batching knobs.

    Attributes:
        max_batch: Flush a group at this many pending requests.
        max_delay_s: Flush a group when its oldest request has waited
            this long [s] (the latency budget spent on coalescing).
        max_queue: Total pending requests admitted before
            :class:`QueueFullError` backpressure kicks in.
        enabled: ``False`` short-circuits every request to the scalar
            ``invert`` path (no queueing, batch size 1).
    """

    max_batch: int = 32
    max_delay_s: float = 0.002
    max_queue: int = 1024
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_s < 0.0:
            raise ServeError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}")
        if self.max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {self.max_queue}")


@dataclass(frozen=True)
class ScheduledEstimate:
    """One scheduler result: the estimate plus batching telemetry.

    Attributes:
        estimate: The inverted reading.
        batch_size: How many requests shared the flushed micro-batch
            (1 on the scalar path).
        queue_seconds: Time spent parked waiting for the flush [s].
        quality: ``"ok"`` on the nominal path; ``"degraded"`` when the
            result rode a degraded path (injected stall, batch-flush
            fallback, or an open circuit forcing scalar inversion) —
            the estimate is still real, but its latency/coalescing
            guarantees were not met.
    """

    estimate: ForceLocationEstimate
    batch_size: int
    queue_seconds: float
    quality: str = "ok"


@dataclass
class _Pending:
    """One parked request."""

    phi1: float
    phi2: float
    location_hint: Optional[float]
    future: "asyncio.Future[ScheduledEstimate]"
    enqueued: float
    quality: str = "ok"
    #: The submitter's trace context: the flush span parents on the
    #: first member's and links every member's, so a batch shared by
    #: many requests is reachable from each request's trace.
    trace_ctx: Optional[trace.TraceContext] = None


@dataclass
class _Group:
    """Per-estimator batch group."""

    estimator: ForceLocationEstimator
    entries: List[_Pending] = field(default_factory=list)
    timer: Optional[asyncio.TimerHandle] = None


class MicroBatchScheduler:
    """Coalesces concurrent estimate requests into micro-batches.

    Requests are grouped by ``key`` (one calibrated estimator per key —
    samples from different sensor models can never share an
    ``invert_batch`` call).  Single event-loop use only; the service
    owns exactly one scheduler.

    Args:
        policy: Batching knobs (see :class:`BatchPolicy`).
        telemetry: Instrument registry; a private one is created when
            not given.
        breaker: Circuit breaker over the batched-flush path.  After
            ``failure_threshold`` consecutive flush failures the
            scheduler stops batching and serves every request on the
            scalar path (flagged ``quality="degraded"``) until the
            breaker's half-open probe sees a flush succeed.  A default
            breaker is created when not given.
    """

    def __init__(self, policy: Optional[BatchPolicy] = None,
                 telemetry: Optional[Telemetry] = None,
                 breaker: Optional[CircuitBreaker] = None):
        self.policy = policy if policy is not None else BatchPolicy()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=5, recovery_timeout_s=1.0,
            name="serve.batch")
        self._groups: Dict[Hashable, _Group] = {}
        self._pending_total = 0

    @property
    def pending(self) -> int:
        """Requests currently parked awaiting a flush."""
        return self._pending_total

    async def submit(self, estimator: ForceLocationEstimator,
                     phi1: float, phi2: float,
                     location_hint: Optional[float] = None,
                     key: Optional[Hashable] = None) -> ScheduledEstimate:
        """Schedule one inversion; resolves when its batch flushes.

        Args:
            estimator: The calibrated estimator to invert with.
            phi1 / phi2: Measured differential phases [rad].
            location_hint: Optional prior location [m].
            key: Batch-group key; requests sharing a key must share the
                estimator.  Defaults to the estimator's identity.

        Raises:
            QueueFullError: The bounded queue is full (backpressure).
        """
        loop = asyncio.get_running_loop()
        self.telemetry.counter("serve.requests").increment()
        quality = "ok"
        inj = fault_armed()
        if inj is not None:
            fault = inj.draw("serve.scheduler")
            if fault is not None:
                quality = await self._apply_fault(fault)
        if not self.policy.enabled:
            return self._scalar(estimator, phi1, phi2, location_hint,
                                loop.time(), quality=quality)
        if not self.breaker.allow():
            # Open circuit: the batched path has been failing, so stop
            # feeding it and serve degraded-but-correct scalar results.
            self.telemetry.counter("serve.breaker_scalar").increment()
            return self._scalar(estimator, phi1, phi2, location_hint,
                                loop.time(), quality="degraded")
        if self._pending_total >= self.policy.max_queue:
            self.telemetry.counter("serve.rejected").increment()
            raise QueueFullError(
                f"micro-batch queue is full ({self.policy.max_queue} "
                f"pending); retry later or shed load"
            )
        if key is None:
            key = id(estimator)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group(estimator)
        elif group.estimator is not estimator:
            raise ServeError(
                f"batch group {key!r} is bound to a different estimator"
            )
        entry = _Pending(phi1=float(phi1), phi2=float(phi2),
                         location_hint=location_hint,
                         future=loop.create_future(),
                         enqueued=loop.time(),
                         quality=quality,
                         trace_ctx=trace.current_context())
        group.entries.append(entry)
        self._pending_total += 1
        if len(group.entries) >= self.policy.max_batch:
            self._flush(key)
        elif group.timer is None:
            group.timer = loop.call_later(self.policy.max_delay_s,
                                          self._flush, key)
        return await entry.future

    async def _apply_fault(self, fault: FaultEvent) -> str:
        """Apply one injected scheduler fault; returns the quality tag.

        ``reject`` raises synthetic backpressure (exercising the
        retry path); ``stall`` / ``slow_consumer`` sleep for the
        fault's magnitude [s] and tag the eventual result
        ``"degraded"`` so consumers know the latency budget was blown.
        """
        if fault.kind == "reject":
            self.telemetry.counter("serve.rejected").increment()
            raise QueueFullError(
                "injected backpressure fault (serve.scheduler/reject); "
                "retry later or shed load")
        await asyncio.sleep(fault.magnitude)
        return "degraded"

    def _scalar(self, estimator: ForceLocationEstimator, phi1: float,
                phi2: float, location_hint: Optional[float],
                start: float, quality: str = "ok") -> ScheduledEstimate:
        """The degraded (batching-off) path: immediate scalar invert."""
        self.telemetry.counter("serve.scalar_direct").increment()
        estimate = estimator.invert(float(phi1), float(phi2),
                                    location_hint=location_hint)
        loop = asyncio.get_running_loop()
        self.telemetry.histogram("serve.batch_size",
                                 BATCH_BUCKETS).observe(1)
        return ScheduledEstimate(estimate=estimate, batch_size=1,
                                 queue_seconds=loop.time() - start,
                                 quality=quality)

    def flush_all(self) -> None:
        """Flush every group now (shutdown / end-of-load drain)."""
        for key in list(self._groups):
            self._flush(key)

    def _flush(self, key: Hashable) -> None:
        """Flush one group: invert the coalesced batch, fan out."""
        group = self._groups.pop(key, None)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        entries = group.entries
        self._pending_total -= len(entries)
        if not entries:
            return
        loop = asyncio.get_running_loop()
        size = len(entries)
        self.telemetry.counter("serve.batches").increment()
        self.telemetry.histogram("serve.batch_size",
                                 BATCH_BUCKETS).observe(size)
        member_contexts = [entry.trace_ctx for entry in entries
                           if entry.trace_ctx is not None]
        with self.telemetry.span(
                "serve.flush", {"batch_size": size},
                parent=member_contexts[0] if member_contexts else None,
                links=member_contexts) as span:
            try:
                with self.telemetry.span("estimator.invert_batch",
                                         {"batch_size": size}):
                    estimates = self._invert_batched(group.estimator,
                                                     entries)
            except Exception as exc:
                # Batcher failure: degrade to per-request scalar
                # inversion so one poisoned sample fails alone.
                span.set("fallback", type(exc).__name__)
                logger.warning(
                    "micro-batch flush of %d requests failed (%s: %s); "
                    "degrading to per-request scalar inversion",
                    size, type(exc).__name__, exc)
                self.telemetry.counter("serve.batch_fallbacks").increment()
                self.breaker.record_failure()
                self._resolve_scalar(group.estimator, entries, loop)
                return
        self.breaker.record_success()
        now = loop.time()
        queue_hist = self.telemetry.histogram("serve.queue_seconds")
        for entry, estimate in zip(entries, estimates):
            waited = now - entry.enqueued
            queue_hist.observe(waited)
            if not entry.future.done():
                entry.future.set_result(ScheduledEstimate(
                    estimate=estimate, batch_size=size,
                    queue_seconds=waited, quality=entry.quality))

    @staticmethod
    def _invert_batched(estimator: ForceLocationEstimator,
                        entries: List[_Pending],
                        ) -> List[ForceLocationEstimate]:
        """One coalesced inversion, aligned back to ``entries``.

        ``invert_batch`` takes either no hints or a full hint array,
        so hinted and hint-free requests batch separately; both halves
        still amortise the grid search across their members.
        """
        results: Dict[int, ForceLocationEstimate] = {}
        plain = [e for e in entries if e.location_hint is None]
        hinted = [e for e in entries if e.location_hint is not None]
        for subset, with_hints in ((plain, False), (hinted, True)):
            if not subset:
                continue
            phi1 = np.array([e.phi1 for e in subset])
            phi2 = np.array([e.phi2 for e in subset])
            hints = (np.array([e.location_hint for e in subset])
                     if with_hints else None)
            batch = estimator.invert_batch(phi1, phi2,
                                           location_hint=hints)
            for entry, estimate in zip(subset, batch):
                results[id(entry)] = estimate
        return [results[id(entry)] for entry in entries]

    def _resolve_scalar(self, estimator: ForceLocationEstimator,
                        entries: List[_Pending], loop) -> None:
        """Per-request scalar fallback after a failed batch flush."""
        for entry in entries:
            if entry.future.done():
                continue
            try:
                estimate = estimator.invert(
                    entry.phi1, entry.phi2,
                    location_hint=entry.location_hint)
            except Exception as exc:
                entry.future.set_exception(exc)
                continue
            entry.future.set_result(ScheduledEstimate(
                estimate=estimate, batch_size=1,
                queue_seconds=loop.time() - entry.enqueued,
                quality="degraded"))
