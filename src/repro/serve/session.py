"""Per-sensor session state for the inference service.

A *session* is everything the service remembers about one sensor
stream between requests:

* which calibrated :class:`SensorModel` / estimator it uses — models
  are expensive to calibrate, so the :class:`SessionManager` caches
  them keyed by :class:`SensorConfig` and shares one estimator across
  every sensor with an equal config (which is also what lets their
  requests coalesce into one micro-batch group);
* baseline / drift state — an optional warmup window of untouched
  samples fits a per-tone phase reference and linear drift rate
  (the tag clock's frequency offset, as in
  :meth:`repro.core.pipeline.WiForceReader.capture_baseline`), which
  is then subtracted from every later sample;
* the tracked history, from which touch events are segmented by
  :meth:`repro.core.tracking.StreamingTracker.touch_events`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.calibration import SensorModel
from repro.core.estimator import ForceLocationEstimator, build_estimator
from repro.core.tracking import StreamingTracker, TouchEvent, TrackedSample
from repro.errors import ServeError
from repro.obs.registry import active
from repro.serve.protocol import SensorConfig

#: Builds (or loads) a calibrated model for a config.
ModelFactory = Callable[[SensorConfig], SensorModel]


def default_model_factory(config: SensorConfig) -> SensorModel:
    """Calibrate the paper's default sensor for ``config``.

    Uses the process-cached scenario builders, so repeated configs at
    the same carrier cost one calibration per process — and the
    calibration itself delegates to the shared :mod:`repro.cache`
    artifact tier, so a replica whose spec any process has built
    before starts warm from disk.  Imported lazily: the serve package
    stays importable without pulling the whole experiments stack.
    """
    from repro.experiments.scenarios import calibrated_model

    return calibrated_model(config.carrier_frequency, fast=config.fast)


class SensorSession:
    """State for one sensor stream.

    Args:
        sensor_id: Stream identity.
        config: Calibration config (must match the manager's cache
            entry the estimator came from).
        estimator: Shared estimator for this config.
        baseline_samples: Untouched warmup samples used to fit the
            phase reference and drift; 0 disables correction (the
            stream's phases are already baseline-referenced).
        history: Keep every tracked sample for touch-event queries.
        quarantine_after: Consecutive non-``"ok"`` results that
            quarantine the session: its baseline/drift state is
            discarded and re-warmed from scratch, on the theory that a
            stream which keeps degrading may have drifted past its
            fitted reference.  Responses served while quarantined are
            flagged ``quality="quarantined"``.
    """

    def __init__(self, sensor_id: str, config: SensorConfig,
                 estimator: ForceLocationEstimator,
                 baseline_samples: int = 0, history: bool = True,
                 quarantine_after: int = 5):
        if baseline_samples < 0:
            raise ServeError(
                f"baseline_samples must be >= 0, got {baseline_samples}")
        if quarantine_after < 1:
            raise ServeError(
                f"quarantine_after must be >= 1, got {quarantine_after}")
        self.sensor_id = sensor_id
        self.config = config
        self.estimator = estimator
        self.baseline_samples = int(baseline_samples)
        self.keep_history = bool(history)
        self.quarantine_after = int(quarantine_after)
        self.samples: List[TrackedSample] = []
        self.last_seen = 0.0
        self.request_count = 0
        self.consecutive_faults = 0
        self.quarantines = 0
        self.quarantined = False
        self._warmup: List[Tuple[float, float, float]] = []
        self._reference: Optional[Tuple[float, float]] = None
        self._drift: Optional[Tuple[float, float]] = None
        self._reference_time = 0.0

    @property
    def model(self) -> SensorModel:
        """The calibrated model behind this session's estimator."""
        return self.estimator.model

    @property
    def baseline_ready(self) -> bool:
        """Whether the warmup reference has been fitted (or disabled)."""
        return self.baseline_samples == 0 or self._reference is not None

    @property
    def drift_rates(self) -> Optional[Tuple[float, float]]:
        """Fitted per-tone drift rates [rad/s] (None before warmup)."""
        return self._drift

    def correct(self, time: float, phi1: float,
                phi2: float) -> Tuple[float, float]:
        """Baseline/drift-correct one phase pair.

        During warmup the raw phases are accumulated and passed
        through unchanged; once ``baseline_samples`` samples have
        arrived, a linear phase ramp per tone is fitted (reference +
        drift) and subtracted from every subsequent sample.
        """
        self.request_count += 1
        if self.baseline_samples == 0:
            return float(phi1), float(phi2)
        if self._reference is None:
            self._warmup.append((float(time), float(phi1), float(phi2)))
            if len(self._warmup) >= self.baseline_samples:
                self._fit_baseline()
            return float(phi1), float(phi2)
        drift1, drift2 = self._drift
        ref1, ref2 = self._reference
        elapsed = float(time) - self._reference_time
        return (float(phi1) - ref1 - drift1 * elapsed,
                float(phi2) - ref2 - drift2 * elapsed)

    def _fit_baseline(self) -> None:
        """Fit per-tone reference + drift from the warmup window."""
        times = np.array([w[0] for w in self._warmup])
        self._reference_time = float(times[0])
        elapsed = times - self._reference_time
        references = []
        drifts = []
        for column in (1, 2):
            phases = np.array([w[column] for w in self._warmup])
            if len(self._warmup) >= 2 and np.ptp(elapsed) > 0.0:
                slope, intercept = np.polyfit(elapsed, phases, 1)
            else:
                slope, intercept = 0.0, float(phases.mean())
            references.append(float(intercept))
            drifts.append(float(slope))
        self._reference = (references[0], references[1])
        self._drift = (drifts[0], drifts[1])
        self._warmup.clear()
        self.quarantined = False

    def note_quality(self, quality: str) -> None:
        """Track result quality; quarantine on a streak of failures.

        ``"ok"`` results clear the failure streak (and, once the
        baseline is re-fitted, lift an active quarantine);
        ``quarantine_after`` consecutive non-ok results trigger
        :meth:`quarantine`.
        """
        if quality == "ok":
            self.consecutive_faults = 0
            if self.quarantined and self.baseline_ready:
                self.quarantined = False
            return
        self.consecutive_faults += 1
        if (not self.quarantined
                and self.consecutive_faults >= self.quarantine_after):
            self.quarantine()

    def quarantine(self) -> None:
        """Discard the fitted baseline and re-warm from scratch."""
        self.quarantines += 1
        self.consecutive_faults = 0
        self.quarantined = True
        self._warmup.clear()
        self._reference = None
        self._drift = None
        obs = active()
        if obs is not None:
            obs.counter("fault.quarantines").increment()

    def record(self, sample: TrackedSample) -> None:
        """Append one tracked sample to the session history."""
        if self.keep_history:
            self.samples.append(sample)

    def touch_events(self, min_groups: int = 1) -> List[TouchEvent]:
        """Segment the session history into touch events."""
        return StreamingTracker.touch_events(self.samples,
                                             min_groups=min_groups)


class SessionManager:
    """Routes sensor ids to sessions; caches models per config.

    Sessions are kept in least-recently-used order and evicted on two
    bounds, so fleet-scale connect/disconnect churn cannot grow memory
    without limit: ``max_sessions`` caps the live-session count (the
    LRU session is dropped to admit a new one) and ``idle_ttl_s``
    drops any session that has not served a request for that long.
    Both default to *off*, preserving the unbounded in-process
    behavior; the network gateway turns them on.  Evicting a session
    discards its baseline/history state only — the calibrated model
    stays cached per config, so a returning sensor re-opens cheaply.

    Args:
        model_factory: ``SensorConfig -> SensorModel``; defaults to
            calibrating the paper's default sensor.
        baseline_samples: Warmup window for new sessions.
        history: Whether sessions keep their tracked history.
        max_sessions: Live-session cap (None = unbounded).
        idle_ttl_s: Idle eviction age [s] (None = never).
        clock: Monotonic time source (injected by tests).
    """

    def __init__(self, model_factory: Optional[ModelFactory] = None,
                 baseline_samples: int = 0, history: bool = True,
                 max_sessions: Optional[int] = None,
                 idle_ttl_s: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None):
        if max_sessions is not None and max_sessions < 1:
            raise ServeError(
                f"max_sessions must be >= 1, got {max_sessions}")
        if idle_ttl_s is not None and idle_ttl_s <= 0.0:
            raise ServeError(
                f"idle_ttl_s must be > 0, got {idle_ttl_s}")
        self._factory = (model_factory if model_factory is not None
                         else default_model_factory)
        self.baseline_samples = int(baseline_samples)
        self.history = bool(history)
        self.max_sessions = max_sessions
        self.idle_ttl_s = idle_ttl_s
        self._clock = clock if clock is not None else time.monotonic
        self._models: Dict[Tuple[float, bool, str], SensorModel] = {}
        self._estimators: Dict[SensorConfig, ForceLocationEstimator] = {}
        self._sessions: Dict[str, SensorSession] = {}
        self.model_builds = 0
        self.model_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def sessions(self) -> Dict[str, SensorSession]:
        """Live sessions keyed by sensor id (copy)."""
        return dict(self._sessions)

    def estimator(self, config: SensorConfig) -> ForceLocationEstimator:
        """The shared estimator for ``config`` (builds on first use).

        Models are cached on the calibration identity plus the
        inversion backend (carrier, fast, backend) — configs differing
        only in the touch threshold share one calibrated model and
        differ only in their estimator, while a surrogate-backed
        config never aliases a grid one (the surrogate's training is
        memoized through :mod:`repro.cache`, so the extra calibration
        entry costs a disk-tier hit, not a refit).
        """
        obs = active()
        estimator = self._estimators.get(config)
        if estimator is not None:
            self.model_hits += 1
            if obs is not None:
                obs.counter("serve.session.model_hits").increment()
            return estimator
        model_key = (config.carrier_frequency, config.fast,
                     config.backend)
        model = self._models.get(model_key)
        if model is None:
            model = self._factory(config)
            self._models[model_key] = model
            self.model_builds += 1
            if obs is not None:
                obs.counter("serve.session.model_builds").increment()
        options = {} if config.backend == "grid" else {
            "carrier_frequency": config.carrier_frequency,
            "fast": config.fast,
        }
        estimator = build_estimator(
            model, backend=config.backend,
            touch_threshold_deg=config.touch_threshold_deg, **options)
        self._estimators[config] = estimator
        return estimator

    def _evict_one(self) -> None:
        """Drop the least-recently-used session."""
        sensor_id = next(iter(self._sessions))
        self._sessions.pop(sensor_id)
        self.evictions += 1
        obs = active()
        if obs is not None:
            obs.counter("serve.session.evictions").increment()

    def _evict_idle(self, now: float) -> None:
        """Drop sessions idle beyond the TTL (LRU-first scan)."""
        if self.idle_ttl_s is None:
            return
        while self._sessions:
            oldest = next(iter(self._sessions.values()))
            if now - oldest.last_seen <= self.idle_ttl_s:
                break
            self._evict_one()

    def session(self, sensor_id: str,
                config: Optional[SensorConfig] = None) -> SensorSession:
        """Get or create the session for ``sensor_id``.

        Accessing a session marks it most-recently-used; the access
        also sweeps idle sessions and, when creating a new session
        against a full manager, evicts the LRU one.

        Raises:
            ServeError: An existing session was opened with a
                different config (a sensor cannot switch calibrations
                mid-stream).
        """
        now = self._clock()
        session = self._sessions.get(sensor_id)
        if session is not None:
            if config is not None and config != session.config:
                raise ServeError(
                    f"sensor {sensor_id!r} is bound to config "
                    f"{session.config}, got {config}"
                )
            # Move to the most-recently-used end of the LRU order.
            self._sessions[sensor_id] = self._sessions.pop(sensor_id)
            session.last_seen = now
            self._evict_idle(now)
            return session
        if config is None:
            config = SensorConfig()
        self._evict_idle(now)
        if self.max_sessions is not None:
            while len(self._sessions) >= self.max_sessions:
                self._evict_one()
        session = SensorSession(
            sensor_id, config, self.estimator(config),
            baseline_samples=self.baseline_samples,
            history=self.history)
        session.last_seen = now
        self._sessions[sensor_id] = session
        return session

    def get(self, sensor_id: str) -> Optional[SensorSession]:
        """The existing session for ``sensor_id``, or None."""
        return self._sessions.get(sensor_id)

    def close(self, sensor_id: str) -> Optional[SensorSession]:
        """Drop a session (its model stays cached); returns it."""
        return self._sessions.pop(sensor_id, None)
