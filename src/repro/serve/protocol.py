"""Wire types for the inference service.

Everything that crosses the service boundary is a frozen dataclass
with a ``to_dict`` / ``from_dict`` JSON codec, mirroring the codecs on
the core dataclasses (:class:`repro.core.estimator.ForceLocationEstimate`,
``PressReading.to_dict``, ``TrackedSample.to_dict``).  The dict forms
contain only plain python scalars, so ``json.dumps`` round-trips them
losslessly; ``to_json`` / ``from_json`` are provided for convenience.

Decoders are hardened against hostile wire input: any malformed,
truncated, or type-confused payload raises
:class:`repro.errors.ProtocolError` (a :class:`ServeError`) — never a
bare ``KeyError``/``TypeError``/``AttributeError`` — so a transport
adapter can map *every* decode failure to one error response
(fuzz-tested in ``tests/test_serve_protocol_fuzz.py``).

:class:`SensorConfig` doubles as the *model cache key*: two sensors
with equal configs share one calibrated :class:`SensorModel` and one
estimator, which is also what lets the scheduler coalesce their
requests into a single ``invert_batch`` call.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.core.estimator import ESTIMATOR_BACKENDS, ForceLocationEstimate
from repro.errors import ProtocolError

#: Exception types a decoder converts into :class:`ProtocolError`.
_DECODE_ERRORS = (KeyError, TypeError, ValueError, AttributeError,
                  IndexError)


def _require_dict(payload, what: str) -> dict:
    """Gate every decoder on an actual dict payload."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"{what} payload must be a dict, got {type(payload).__name__}")
    return payload


def _decode_json(text, what: str) -> dict:
    """Parse JSON text for a decoder (typed failure on bad input)."""
    if not isinstance(text, (str, bytes, bytearray)):
        raise ProtocolError(
            f"{what} JSON must be text, got {type(text).__name__}")
    try:
        return json.loads(text)
    except ValueError as exc:
        raise ProtocolError(f"{what} is not valid JSON: {exc}") from exc


@dataclass(frozen=True)
class SensorConfig:
    """Calibration configuration shared by one or more sensors.

    Hashable on purpose: it keys the session manager's model cache and
    the scheduler's batch groups.

    Attributes:
        carrier_frequency: Calibration carrier [Hz].
        fast: Reduced-resolution contact map (tests / demos).
        touch_threshold_deg: No-contact classification threshold.
        backend: Inversion strategy (``"grid"`` | ``"surrogate"``; see
            :func:`repro.core.estimator.build_estimator`).  Part of
            the cache key, so sensors on different backends never
            share an estimator or a micro-batch.
    """

    carrier_frequency: float = 900e6
    fast: bool = True
    touch_threshold_deg: float = 5.0
    backend: str = "grid"

    def to_dict(self) -> dict:
        """JSON-ready dict (plain python scalars only)."""
        return {
            "carrier_frequency": float(self.carrier_frequency),
            "fast": bool(self.fast),
            "touch_threshold_deg": float(self.touch_threshold_deg),
            "backend": str(self.backend),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SensorConfig":
        """Inverse of :meth:`to_dict`; missing keys take defaults.

        Raises:
            ProtocolError: The payload is not a dict, a field does
                not coerce to its wire type, or ``backend`` names an
                unknown inversion strategy.
        """
        payload = _require_dict(payload, "sensor config")
        defaults = cls()
        try:
            config = cls(
                carrier_frequency=float(payload.get(
                    "carrier_frequency", defaults.carrier_frequency)),
                fast=bool(payload.get("fast", defaults.fast)),
                touch_threshold_deg=float(payload.get(
                    "touch_threshold_deg", defaults.touch_threshold_deg)),
                backend=str(payload.get("backend", defaults.backend)),
            )
        except _DECODE_ERRORS as exc:
            raise ProtocolError(
                f"malformed sensor config: {exc}") from exc
        if config.backend not in ESTIMATOR_BACKENDS:
            raise ProtocolError(
                f"unknown estimator backend {config.backend!r}; "
                f"expected one of {ESTIMATOR_BACKENDS}")
        return config


@dataclass(frozen=True)
class EstimateRequest:
    """One phase sample from one sensor stream.

    Attributes:
        sensor_id: Stream identity (sessions are keyed on it).
        sequence: Monotone per-sensor sample counter.
        time: Sample timestamp [s] (the stream's clock).
        phi1 / phi2: Measured differential phases [rad].
        config: Sensor calibration config (model cache key).
        location_hint: Optional prior location [m].
    """

    sensor_id: str
    sequence: int
    time: float
    phi1: float
    phi2: float
    config: SensorConfig = SensorConfig()
    location_hint: Optional[float] = None

    def to_dict(self) -> dict:
        """JSON-ready dict (plain python scalars only)."""
        return {
            "sensor_id": str(self.sensor_id),
            "sequence": int(self.sequence),
            "time": float(self.time),
            "phi1": float(self.phi1),
            "phi2": float(self.phi2),
            "config": self.config.to_dict(),
            "location_hint": (None if self.location_hint is None
                              else float(self.location_hint)),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EstimateRequest":
        """Inverse of :meth:`to_dict`.

        Raises:
            ProtocolError: The payload is not a dict, a required field
                is missing, or a field does not coerce to its wire
                type.
        """
        payload = _require_dict(payload, "estimate request")
        try:
            hint = payload.get("location_hint")
            return cls(
                sensor_id=str(payload["sensor_id"]),
                sequence=int(payload["sequence"]),
                time=float(payload["time"]),
                phi1=float(payload["phi1"]),
                phi2=float(payload["phi2"]),
                config=SensorConfig.from_dict(payload.get("config", {})),
                location_hint=None if hint is None else float(hint),
            )
        except ProtocolError:
            raise
        except _DECODE_ERRORS as exc:
            raise ProtocolError(
                f"malformed estimate request: {exc}") from exc

    def to_json(self) -> str:
        """Compact JSON encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EstimateRequest":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(_decode_json(text, "estimate request"))


@dataclass(frozen=True)
class EstimateResponse:
    """The service's answer to one :class:`EstimateRequest`.

    Attributes:
        sensor_id / sequence / time: Echoed request identity.
        estimate: The inverted (force, location) reading.
        batch_size: Size of the micro-batch this request rode in
            (1 on the scalar path).
        latency_s: Service-side latency from admission to result [s].
        quality: ``"ok"`` on the nominal path; ``"recovered"`` when
            the request only succeeded after backpressure retries,
            ``"degraded"`` when it rode a degraded path (scalar
            fallback, injected stall, open circuit), ``"quarantined"``
            while its session is re-warming its baseline.  The
            estimate itself is always real.
    """

    sensor_id: str
    sequence: int
    time: float
    estimate: ForceLocationEstimate
    batch_size: int = 1
    latency_s: float = 0.0
    quality: str = "ok"

    @property
    def force(self) -> float:
        """Estimated force [N]."""
        return self.estimate.force

    @property
    def location(self) -> float:
        """Estimated location [m]."""
        return self.estimate.location

    @property
    def touched(self) -> bool:
        """Contact classification."""
        return self.estimate.touched

    def to_dict(self) -> dict:
        """JSON-ready dict; the nested estimate uses its own codec."""
        return {
            "sensor_id": str(self.sensor_id),
            "sequence": int(self.sequence),
            "time": float(self.time),
            "estimate": self.estimate.to_dict(),
            "batch_size": int(self.batch_size),
            "latency_s": float(self.latency_s),
            "quality": str(self.quality),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EstimateResponse":
        """Inverse of :meth:`to_dict` (``quality`` defaults ``"ok"``).

        Raises:
            ProtocolError: The payload is not a dict, a required field
                is missing, or a field does not coerce to its wire
                type.
        """
        payload = _require_dict(payload, "estimate response")
        try:
            return cls(
                sensor_id=str(payload["sensor_id"]),
                sequence=int(payload["sequence"]),
                time=float(payload["time"]),
                estimate=ForceLocationEstimate.from_dict(
                    _require_dict(payload["estimate"], "estimate")),
                batch_size=int(payload.get("batch_size", 1)),
                latency_s=float(payload.get("latency_s", 0.0)),
                quality=str(payload.get("quality", "ok")),
            )
        except ProtocolError:
            raise
        except _DECODE_ERRORS as exc:
            raise ProtocolError(
                f"malformed estimate response: {exc}") from exc

    def to_json(self) -> str:
        """Compact JSON encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EstimateResponse":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(_decode_json(text, "estimate response"))
