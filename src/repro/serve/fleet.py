"""Fleet-scale serving: threaded shard workers + the fleet loadgen.

The scale-out story past one event loop: a
:class:`ShardedInferenceService` partitions the fleet by consistent
hashing (:mod:`repro.serve.shard`); this module gives every shard its
own **worker thread running its own asyncio loop** and a dispatcher
that routes each request to its shard's loop.  NumPy releases the GIL
inside ``invert_batch``, so shard threads overlap real work on
multi-core hosts while staying a faithful (if serialized) model of a
multi-process fleet on one core.

:func:`run_fleet_benchmark` is the measurement harness behind
``repro fleet-bench`` and ``benchmarks/test_perf_serve.py``: it drives
the same request tape — up to 10^5 simulated sensors with Pareto
heavy-tail arrivals from :func:`repro.serve.loadgen
.generate_arrival_offsets` — through an N-shard fleet and a
single-shard reference, and reports per-shard p99, aggregate
throughput, deterministic shard balance, and the element-wise parity
deltas between the two runs.  The contract is exact: sharding must be
**bit-identical to single-shard** (0.0 deltas in
``BENCH_fleet.json``), because routing only decides *where* a sensor's
session lives, never *what* it computes.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ServeError
from repro.obs.manifest import stamp_report
from repro.serve.loadgen import (
    LoadProfile,
    generate_arrival_offsets,
    generate_requests,
)
from repro.serve.protocol import EstimateRequest, EstimateResponse
from repro.serve.scheduler import BatchPolicy
from repro.serve.session import ModelFactory
from repro.serve.shard import ShardedInferenceService


@dataclass(frozen=True)
class FleetProfile:
    """A fleet-bench shape: a load profile plus the shard layout.

    Attributes:
        load: The per-request load shape (sensors, arrivals, policy);
            fleet defaults lean large and history-free so 10^5-sensor
            runs stay memory-bounded.
        shards: Service shards (worker threads) under test.
        vnodes: Virtual nodes per shard on the hash ring.
    """

    load: LoadProfile = LoadProfile(sensors=1024, requests_per_sensor=4)
    shards: int = 4
    vnodes: int = 64

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ServeError(f"fleet needs >= 1 shard, got {self.shards}")


class _ShardWorker:
    """One shard's thread: a private asyncio loop fed cross-thread."""

    def __init__(self, index: int):
        self.index = index
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self._run, name=f"fleet-shard-{index}", daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def start(self) -> None:
        self.thread.start()

    def submit(self, coroutine) -> Future:
        """Schedule a coroutine on this shard's loop; returns a
        concurrent future (submission order = execution order)."""
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop)

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.loop.close()


class FleetHarness:
    """Drives a sharded service with one worker thread per shard.

    The dispatcher routes each request to its sensor's shard (via the
    service's hash ring) and submits it to that shard's event loop;
    per-sensor request order is preserved because a sensor's requests
    all land on one loop in submission order — the ordering the
    session drift corrector relies on.

    Use as a context manager so worker loops always shut down::

        with FleetHarness(sharded) as harness:
            responses, wall = harness.run(requests, offsets)
    """

    def __init__(self, service: ShardedInferenceService):
        self.service = service
        self.workers = [_ShardWorker(index)
                        for index in range(service.shards)]

    def __enter__(self) -> "FleetHarness":
        for worker in self.workers:
            worker.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def stop(self) -> None:
        """Stop every shard loop (idempotent)."""
        for worker in self.workers:
            if worker.thread.is_alive():
                worker.stop()

    def run(self, requests: List[EstimateRequest],
            offsets: Optional[np.ndarray] = None
            ) -> Tuple[List[EstimateResponse], float, List[int]]:
        """Fire the request tape; returns (responses, wall s, shards).

        Without ``offsets`` the whole tape is submitted at once
        (closed-loop saturation); with them, request *i* is held back
        ``offsets[i]`` seconds before submission (open-loop arrival
        shaping — the dispatcher sleeps out the gaps, exactly like a
        network frontend receiving the arrival process).  Responses
        come back in request order; the third element records each
        request's shard for per-shard latency accounting.
        """
        ring = self.service.ring
        services = self.service.services
        shard_of = [ring.shard_for(request.sensor_id)
                    for request in requests]
        futures: List[Future] = []
        start = time.perf_counter()
        if offsets is None:
            for request, shard in zip(requests, shard_of):
                futures.append(self.workers[shard].submit(
                    services[shard].estimate(request)))
        else:
            for request, shard, offset in zip(requests, shard_of,
                                              offsets):
                delay = start + float(offset) - time.perf_counter()
                if delay > 0.0:
                    time.sleep(delay)
                futures.append(self.workers[shard].submit(
                    services[shard].estimate(request)))
        responses = [future.result() for future in futures]
        return responses, time.perf_counter() - start, shard_of


def _latency_block(responses: List[EstimateResponse],
                   wall_seconds: float) -> Dict:
    latencies = np.array([response.latency_s for response in responses])
    return {
        "wall_seconds": wall_seconds,
        "throughput_rps": len(responses) / wall_seconds,
        "latency_p50_s": float(np.percentile(latencies, 50)),
        "latency_p99_s": float(np.percentile(latencies, 99)),
        "latency_mean_s": float(latencies.mean()),
    }


def run_fleet_benchmark(profile: Optional[FleetProfile] = None,
                        model_factory: Optional[ModelFactory] = None
                        ) -> dict:
    """Bench an N-shard fleet against the single-shard reference.

    Both runs consume the *identical* request tape and arrival
    offsets through the same threaded harness (the reference is a
    one-shard fleet, so the comparison isolates sharding itself), then
    the responses are compared element-wise.  Returns the JSON-ready
    ``BENCH_fleet.json`` report: per-shard p99 + request counts,
    aggregate throughput, the sharded-vs-single throughput ratio, the
    deterministic ring balance for this fleet, parity deltas (must be
    0.0), and the merged telemetry snapshot, manifest-stamped.
    """
    if profile is None:
        profile = FleetProfile()
    load = profile.load
    policy = BatchPolicy(
        max_batch=load.max_batch,
        max_delay_s=load.max_delay_s,
        max_queue=max(1024, load.total_requests),
        enabled=load.batching,
    )

    def _service(shards: int) -> ShardedInferenceService:
        # history=False keeps 10^5-sensor fleets memory-bounded: the
        # bench never queries touch events, and per-session history
        # grows with the tape.
        return ShardedInferenceService(
            shards=shards, vnodes=profile.vnodes, policy=policy,
            model_factory=model_factory, history=False)

    fleet = _service(profile.shards)
    estimator = fleet.services[0].sessions.estimator(load.config)
    requests = generate_requests(estimator.model, load)
    offsets = generate_arrival_offsets(load)

    with FleetHarness(fleet) as harness:
        responses, fleet_seconds, shard_of = harness.run(requests,
                                                         offsets)

    reference = _service(1)
    with FleetHarness(reference) as harness:
        single, single_seconds, _ = harness.run(requests, offsets)

    force_delta = max(abs(a.estimate.force - b.estimate.force)
                      for a, b in zip(responses, single))
    location_delta = max(abs(a.estimate.location - b.estimate.location)
                         for a, b in zip(responses, single))
    touched_match = all(a.estimate.touched == b.estimate.touched
                        for a, b in zip(responses, single))

    sensor_ids = sorted({request.sensor_id for request in requests})
    per_shard = []
    for shard in range(profile.shards):
        latencies = [response.latency_s
                     for response, owner in zip(responses, shard_of)
                     if owner == shard]
        per_shard.append({
            "shard": shard,
            "requests": len(latencies),
            "latency_p99_s": (float(np.percentile(latencies, 99))
                              if latencies else 0.0),
        })

    profile_block = {
        "sensors": load.sensors,
        "requests_per_sensor": load.requests_per_sensor,
        "total_requests": load.total_requests,
        "shards": profile.shards,
        "vnodes": profile.vnodes,
        "max_batch": load.max_batch,
        "max_delay_s": load.max_delay_s,
        "arrival": load.arrival,
        "arrival_rate_rps": load.arrival_rate_rps,
        "pareto_alpha": load.pareto_alpha,
        "backend": load.backend,
        "seed": load.seed,
    }
    report = {
        "profile": profile_block,
        "fleet": {**_latency_block(responses, fleet_seconds),
                  "per_shard": per_shard},
        "single_shard": _latency_block(single, single_seconds),
        "sharded_vs_single": single_seconds / fleet_seconds,
        "shard_balance": fleet.ring.balance(sensor_ids),
        "parity": {
            "max_force_delta_n": float(force_delta),
            "max_location_delta_m": float(location_delta),
            "touched_match": bool(touched_match),
        },
        "telemetry": fleet.telemetry_snapshot(),
    }
    return stamp_report(report, config=profile_block)


def summarize_fleet(report: dict) -> str:
    """Human-readable one-screen summary of a fleet-bench report."""
    fleet = report["fleet"]
    single = report["single_shard"]
    parity = report["parity"]
    shard_p99s = " ".join(
        f"{entry['latency_p99_s'] * 1e3:.1f}"
        for entry in fleet["per_shard"])
    lines = [
        f"requests          : {report['profile']['total_requests']} "
        f"({report['profile']['sensors']} sensors x "
        f"{report['profile']['requests_per_sensor']} samples, "
        f"{report['profile']['shards']} shards)",
        f"fleet throughput  : {fleet['throughput_rps']:10.0f} req/s",
        f"single shard      : {single['throughput_rps']:10.0f} req/s",
        f"sharded vs single : {report['sharded_vs_single']:10.2f}x",
        f"latency p50 / p99 : {fleet['latency_p50_s'] * 1e3:7.2f} / "
        f"{fleet['latency_p99_s'] * 1e3:.2f} ms",
        f"per-shard p99 [ms]: {shard_p99s}",
        f"shard balance     : {report['shard_balance']:10.2f}",
        f"parity            : force <= {parity['max_force_delta_n']:.2e} N,"
        f" location <= {parity['max_location_delta_m']:.2e} m, "
        f"touched {'match' if parity['touched_match'] else 'MISMATCH'}",
    ]
    return "\n".join(lines)


__all__ = [
    "FleetHarness",
    "FleetProfile",
    "run_fleet_benchmark",
    "summarize_fleet",
]
