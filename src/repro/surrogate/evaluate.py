"""Parity and speedup evaluation: surrogate vs. the grid oracle.

Scores the learned inverse on a held-out wireless-style workload (the
loadgen recipe: uniform presses, model-predicted phases, Gaussian phase
noise — *not* the training grid): force/location error CDFs for both
backends against ground truth, the amortized batch-predict speedup over
``invert_batch``, and the fallback rate.  The parity gate collapses the
p95 error deltas into one normalized scalar,
``surrogate_p95_error_delta`` — the worst of the force and location
deltas as a fraction of their caps — which
``benchmarks/compare_bench.py`` hard-caps at 1.0 alongside the
ratio-gated ``surrogate_speedup``.

The report is manifest-stamped (:func:`repro.obs.manifest.stamp_report`)
and written as ``BENCH_surrogate.json`` by the CLI
(``repro surrogate eval``) and the perf suite
(``benchmarks/test_perf_surrogate.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.estimator import ForceLocationEstimator
from repro.obs.manifest import stamp_report
from repro.obs.registry import maybe_span
from repro.surrogate.data import DatasetSpec
from repro.surrogate.model import (
    SurrogateEstimator,
    forward_residual,
    train_surrogate,
)

#: p95 |error| regression caps vs. the grid oracle; the normalized
#: gate metric is the worst delta as a fraction of its cap.
FORCE_DELTA_CAP_N = 0.25
LOCATION_DELTA_CAP_M = 1.5e-3

_QUANTILES = (0.50, 0.90, 0.95, 0.99)


def _best_of(runs: int, fn, *args) -> float:
    """Min-of-N wall time [s] (same discipline as the perf suites)."""
    return min(_timed(fn, *args) for _ in range(runs))


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def _percentiles(errors: np.ndarray) -> dict:
    return {f"p{int(q * 100)}": float(np.quantile(errors, q))
            for q in _QUANTILES}


def evaluate_surrogate(samples: int = 1000,
                       carrier_frequency: float = 900e6,
                       fast: bool = True, seed: int = 42,
                       noise_deg: float = 1.0, best_of: int = 3,
                       spec: Optional[DatasetSpec] = None,
                       executor=None) -> dict:
    """Run the full parity + speedup evaluation; returns the report.

    Args:
        samples: Held-out batch size (the speedup is measured at this
            N — the acceptance number uses N=1000).
        carrier_frequency / fast: Calibration identity (must match the
            training spec's).
        seed: Held-out workload seed.
        noise_deg: Gaussian phase noise on the held-out phases [deg].
        best_of: Timing repetitions (min is reported).
        spec: Training-dataset spec; derived from the calibration
            identity when omitted.
        executor: Optional campaign executor for a cold training sweep.
    """
    from repro.experiments.scenarios import calibrated_model

    model = calibrated_model(carrier_frequency, fast=fast)
    spec = spec or DatasetSpec(carrier_frequency=carrier_frequency,
                               fast=fast)
    with maybe_span("surrogate.evaluate", {"samples": samples}):
        surrogate = train_surrogate(model, spec, executor=executor)
        grid = ForceLocationEstimator(model)
        amortized = SurrogateEstimator(model, surrogate)

        rng = np.random.default_rng(seed)
        force_low, force_high = model.force_range
        locations = model.locations
        truth_force = rng.uniform(force_low, force_high, samples)
        truth_location = rng.uniform(float(locations[0]),
                                     float(locations[-1]), samples)
        phi1, phi2 = model.predict_batch(truth_force, truth_location)
        noise = np.radians(noise_deg)
        phi1 = phi1 + rng.normal(0.0, noise, samples)
        phi2 = phi2 + rng.normal(0.0, noise, samples)

        grid_batch = grid.invert_batch(phi1, phi2)
        surrogate_batch = amortized.invert_batch(phi1, phi2)
        grid_seconds = _best_of(best_of, grid.invert_batch, phi1, phi2)
        surrogate_seconds = _best_of(best_of, amortized.invert_batch,
                                     phi1, phi2)

        predicted_force, predicted_location = surrogate.predict_batch(
            phi1, phi2)
        residuals = forward_residual(model, predicted_force,
                                     predicted_location, phi1, phi2)
        confident = (surrogate.in_domain(phi1, phi2)
                     & (residuals <= surrogate.residual_bound))
        fallback_rate = float(1.0 - confident.mean())

    grid_force_error = np.abs(grid_batch.force - truth_force)
    grid_location_error = np.abs(grid_batch.location - truth_location)
    surrogate_force_error = np.abs(surrogate_batch.force - truth_force)
    surrogate_location_error = np.abs(surrogate_batch.location
                                      - truth_location)
    force_delta_p95 = float(np.quantile(surrogate_force_error, 0.95)
                            - np.quantile(grid_force_error, 0.95))
    location_delta_p95 = float(np.quantile(surrogate_location_error, 0.95)
                               - np.quantile(grid_location_error, 0.95))
    normalized_delta = max(force_delta_p95 / FORCE_DELTA_CAP_N,
                           location_delta_p95 / LOCATION_DELTA_CAP_M)

    report = {
        "samples": int(samples),
        "surrogate_speedup": float(grid_seconds / surrogate_seconds),
        "grid_batch_seconds": float(grid_seconds),
        "surrogate_batch_seconds": float(surrogate_seconds),
        "surrogate_fallback_rate": fallback_rate,
        "force_error_n": {
            "grid": _percentiles(grid_force_error),
            "surrogate": _percentiles(surrogate_force_error),
        },
        "location_error_m": {
            "grid": _percentiles(grid_location_error),
            "surrogate": _percentiles(surrogate_location_error),
        },
        "oracle_delta": {
            "force_n": _percentiles(np.abs(surrogate_batch.force
                                           - grid_batch.force)),
            "location_m": _percentiles(np.abs(surrogate_batch.location
                                              - grid_batch.location)),
        },
        "surrogate_p95_force_error_delta_n": force_delta_p95,
        "surrogate_p95_location_error_delta_m": location_delta_p95,
        "surrogate_p95_error_delta": float(normalized_delta),
        "caps": {"force_n": FORCE_DELTA_CAP_N,
                 "location_m": LOCATION_DELTA_CAP_M},
        "train": {
            "samples": int(surrogate.train_samples),
            "residual_bound_rad": float(surrogate.residual_bound),
            "residual_p50_rad": float(surrogate.train_residual_p50),
            "residual_p95_rad": float(surrogate.train_residual_p95),
        },
    }
    profile = {
        "carrier_frequency": float(carrier_frequency),
        "fast": bool(fast),
        "seed": int(seed),
        "noise_deg": float(noise_deg),
        "best_of": int(best_of),
        "dataset": spec.cache_key(),
    }
    report["profile"] = profile
    return stamp_report(report, config=profile)


def write_report(report: dict, path) -> None:
    """Write one evaluation report as pretty JSON."""
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True)
                          + "\n")


def summarize(report: dict) -> str:
    """One-paragraph human summary of an evaluation report."""
    return (
        f"surrogate speedup {report['surrogate_speedup']:.1f}x over grid "
        f"invert_batch at N={report['samples']} "
        f"(grid {report['grid_batch_seconds'] * 1e3:.2f} ms, "
        f"surrogate {report['surrogate_batch_seconds'] * 1e3:.2f} ms); "
        f"p95 error delta force "
        f"{report['surrogate_p95_force_error_delta_n'] * 1e3:+.1f} mN / "
        f"location "
        f"{report['surrogate_p95_location_error_delta_m'] * 1e3:+.3f} mm "
        f"(normalized {report['surrogate_p95_error_delta']:+.3f}, "
        f"cap 1.0); fallback rate "
        f"{report['surrogate_fallback_rate']:.3f}"
    )
