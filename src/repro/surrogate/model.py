"""Learned amortized inversion of the phase-force model.

The grid estimator inverts each (phi1, phi2) pair by searching the
calibrated :class:`~repro.core.calibration.SensorModel` — three grid
stages per sample, ~1.3k model evaluations each.  This module amortizes
that search: a ridge regression on polynomial + Fourier phase features
is fitted closed-form against simulator-generated sweeps
(:mod:`repro.surrogate.data`), turning inversion into one feature
matmul per batch (the sim-to-real recipe of Sferrazza et al. and
TaCauchy in PAPERS.md).

The grid stays the accuracy oracle.  Every surrogate prediction is
scored by its *forward residual* — re-predict the phases at the
predicted (force, location) through the calibrated model and wrap the
difference against the measurement, the same residual the grid search
minimizes.  Samples whose phases fall outside the training envelope, or
whose forward residual exceeds the envelope bound fitted at training
time, fall back to the grid search bit-exactly (the fallback calls the
unmodified grid code path on the out-of-domain subset).  Requests that
carry a ``location_hint`` also take the grid path: the hint contract
(restrict the search to +/- 10 mm) has no surrogate equivalent.

Trained models are versioned and memoized through :mod:`repro.cache`
(:data:`SURROGATE_MODEL_VERSION`), so every process that asks for the
same (dataset spec, feature map, ridge) tuple shares one fit from the
disk tier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.cache import get_cache
from repro.core.calibration import SensorModel
from repro.core.estimator import (
    BatchForceLocationEstimate,
    ForceLocationEstimate,
    ForceLocationEstimator,
    _wrapped_error,
)
from repro.errors import EstimationError, SurrogateError
from repro.obs.registry import active, maybe_span
from repro.surrogate.data import DatasetSpec, TrainingDataset, build_dataset

#: Bump whenever the feature map, fit, or serialized layout changes.
SURROGATE_MODEL_VERSION = 1


@dataclass(frozen=True)
class PhaseFeatureMap:
    """Deterministic (phi1, phi2) -> feature-vector expansion.

    Features: the full bivariate polynomial basis of total degree
    ``degree`` (bias excluded — the fit centers its targets), plus
    ``harmonics`` Fourier pairs ``sin(k phi) / cos(k phi)`` per phase.
    The trig terms let a small basis track the wrapped, saturating
    phase response without a high-degree polynomial.

    Attributes:
        degree: Total polynomial degree (>= 1).
        harmonics: Fourier harmonics per phase (>= 0).
    """

    degree: int = 3
    harmonics: int = 3

    def __post_init__(self):
        if self.degree < 1:
            raise SurrogateError(
                f"feature degree must be >= 1, got {self.degree}")
        if self.harmonics < 0:
            raise SurrogateError(
                f"harmonics must be >= 0, got {self.harmonics}")

    @property
    def width(self) -> int:
        """Number of features produced per sample."""
        polynomial = (self.degree + 1) * (self.degree + 2) // 2 - 1
        return polynomial + 4 * self.harmonics

    def transform(self, phi1: np.ndarray, phi2: np.ndarray) -> np.ndarray:
        """Feature matrix of shape (N, :attr:`width`)."""
        phi1 = np.asarray(phi1, dtype=float).ravel()
        phi2 = np.asarray(phi2, dtype=float).ravel()
        columns = []
        for total in range(1, self.degree + 1):
            for i in range(total + 1):
                columns.append(phi1 ** (total - i) * phi2 ** i)
        for k in range(1, self.harmonics + 1):
            columns.append(np.sin(k * phi1))
            columns.append(np.cos(k * phi1))
            columns.append(np.sin(k * phi2))
            columns.append(np.cos(k * phi2))
        return np.stack(columns, axis=1)

    def to_dict(self) -> dict:
        """JSON-ready dict (plain python scalars only)."""
        return {"degree": int(self.degree),
                "harmonics": int(self.harmonics)}

    @classmethod
    def from_dict(cls, payload: dict) -> "PhaseFeatureMap":
        """Inverse of :meth:`to_dict`."""
        return cls(degree=int(payload["degree"]),
                   harmonics=int(payload["harmonics"]))


def forward_residual(model: SensorModel, force: np.ndarray,
                     location: np.ndarray, phi1: np.ndarray,
                     phi2: np.ndarray) -> np.ndarray:
    """RMS wrapped residual of a (force, location) candidate [rad].

    Re-predicts the phases at the candidate through the calibrated
    model and wraps against the measurement with the estimator's own
    :func:`~repro.core.estimator._wrapped_error`, so the number is
    directly comparable to the residual the grid search reports at its
    optimum.
    """
    predicted1, predicted2 = model.predict_batch(force, location)
    error1 = _wrapped_error(np.asarray(phi1, dtype=float) + np.pi,
                            predicted1)
    error2 = _wrapped_error(np.asarray(phi2, dtype=float) + np.pi,
                            predicted2)
    return np.sqrt(0.5 * (error1 * error1 + error2 * error2))


@dataclass(frozen=True)
class SurrogateInverse:
    """Closed-form ridge inverse (phi1, phi2) -> (force, location).

    Produced by :meth:`fit`; everything needed to predict and to judge
    in-domain membership is carried in plain arrays, so instances
    serialize losslessly through :meth:`to_dict` (the
    :mod:`repro.cache` codec).

    Attributes:
        feature_map: The feature expansion the weights were fitted on.
        feature_mean / feature_scale: Per-feature standardization.
        weights: (width, 2) ridge solution in standardized space.
        intercept: (2,) target means.
        force_range / location_range: Clip bounds for predictions (the
            calibrated spans).
        phi1_range / phi2_range: Training phase envelope (with margin);
            measurements outside it are out-of-domain.
        residual_bound: Forward-residual acceptance bound [rad] fitted
            from the training residual distribution.
        ridge_lambda: Regularization strength used by the fit.
        train_samples: Training-set size (diagnostics).
        train_residual_p50 / train_residual_p95: Training forward
            residual quantiles [rad] (diagnostics).
    """

    feature_map: PhaseFeatureMap
    feature_mean: np.ndarray
    feature_scale: np.ndarray
    weights: np.ndarray
    intercept: np.ndarray
    force_range: Tuple[float, float]
    location_range: Tuple[float, float]
    phi1_range: Tuple[float, float]
    phi2_range: Tuple[float, float]
    residual_bound: float
    ridge_lambda: float = 1e-8
    train_samples: int = 0
    train_residual_p50: float = 0.0
    train_residual_p95: float = 0.0

    @classmethod
    def fit(cls, model: SensorModel, dataset: TrainingDataset,
            feature_map: Optional[PhaseFeatureMap] = None,
            ridge_lambda: float = 1e-8,
            envelope_quantile: float = 0.995,
            envelope_slack: float = 2.0,
            box_margin: float = 0.02) -> "SurrogateInverse":
        """Closed-form ridge fit against one training dataset.

        Args:
            model: The grid oracle's calibrated model — used to clip
                predictions to the calibrated spans and to fit the
                forward-residual acceptance envelope.
            dataset: Simulator-generated sweep (phases + ground truth).
            feature_map: Feature expansion (default
                :class:`PhaseFeatureMap`).
            ridge_lambda: Per-sample L2 strength on the standardized
                features.
            envelope_quantile / envelope_slack: The residual acceptance
                bound is ``slack * quantile(train residuals)`` — wide
                enough that nominal noise stays in-domain, tight enough
                that model mismatch falls back to the grid.
            box_margin: Phase-envelope margin as a fraction of the
                training span per axis.
        """
        if len(dataset) < 8:
            raise SurrogateError(
                f"surrogate fit needs >= 8 samples, got {len(dataset)}")
        feature_map = feature_map or PhaseFeatureMap()
        features = feature_map.transform(dataset.phi1, dataset.phi2)
        mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale = np.where(scale < 1e-12, 1.0, scale)
        standardized = (features - mean) / scale
        targets = np.stack([dataset.force, dataset.location], axis=1)
        intercept = targets.mean(axis=0)
        centered = targets - intercept
        width = features.shape[1]
        gram = standardized.T @ standardized
        gram += ridge_lambda * len(dataset) * np.eye(width)
        weights = np.linalg.solve(gram, standardized.T @ centered)

        force_range = (float(model.force_range[0]),
                       float(model.force_range[1]))
        locations = model.locations
        location_range = (float(locations[0]), float(locations[-1]))

        def _box(values: np.ndarray) -> Tuple[float, float]:
            low, high = float(values.min()), float(values.max())
            margin = box_margin * (high - low)
            return (low - margin, high + margin)

        fitted = cls(
            feature_map=feature_map, feature_mean=mean,
            feature_scale=scale, weights=weights, intercept=intercept,
            force_range=force_range, location_range=location_range,
            phi1_range=_box(dataset.phi1), phi2_range=_box(dataset.phi2),
            residual_bound=np.inf, ridge_lambda=float(ridge_lambda),
            train_samples=len(dataset))
        force, location = fitted.predict_batch(dataset.phi1, dataset.phi2)
        residuals = forward_residual(model, force, location,
                                     dataset.phi1, dataset.phi2)
        bound = float(envelope_slack
                      * np.quantile(residuals, envelope_quantile))
        return replace(fitted, residual_bound=max(bound, 1e-6),
                       train_residual_p50=float(np.median(residuals)),
                       train_residual_p95=float(np.quantile(residuals,
                                                            0.95)))

    def predict_batch(self, phi1: np.ndarray, phi2: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Amortized (force, location) prediction, shape (N,) each.

        One feature expansion and two row-wise weighted sums;
        predictions are clipped to the calibrated spans (the grid
        search can never leave them either).

        Deliberately *not* a matmul: BLAS accumulation order varies
        with batch shape, so ``X @ W`` gives the same sample different
        last-bit results in different batches.  ``sum(axis=1)``'s
        pairwise reduction depends only on the feature axis, keeping
        each sample's prediction bit-identical no matter what
        micro-batch it rides in — the invariance the serve, fleet, and
        gateway parity contracts assume.
        """
        features = self.feature_map.transform(phi1, phi2)
        standardized = (features - self.feature_mean) / self.feature_scale
        force = ((standardized * self.weights[:, 0]).sum(axis=1)
                 + self.intercept[0])
        location = ((standardized * self.weights[:, 1]).sum(axis=1)
                    + self.intercept[1])
        return (np.clip(force, self.force_range[0], self.force_range[1]),
                np.clip(location, self.location_range[0],
                        self.location_range[1]))

    def in_domain(self, phi1: np.ndarray, phi2: np.ndarray) -> np.ndarray:
        """Boolean mask: inside the training phase envelope."""
        phi1 = np.asarray(phi1, dtype=float)
        phi2 = np.asarray(phi2, dtype=float)
        return ((phi1 >= self.phi1_range[0]) & (phi1 <= self.phi1_range[1])
                & (phi2 >= self.phi2_range[0])
                & (phi2 <= self.phi2_range[1]))

    def to_dict(self) -> dict:
        """JSON-ready dict (plain python scalars and lists only)."""
        return {
            "version": SURROGATE_MODEL_VERSION,
            "feature_map": self.feature_map.to_dict(),
            "feature_mean": [float(v) for v in self.feature_mean],
            "feature_scale": [float(v) for v in self.feature_scale],
            "weights": [[float(v) for v in row] for row in self.weights],
            "intercept": [float(v) for v in self.intercept],
            "force_range": [float(v) for v in self.force_range],
            "location_range": [float(v) for v in self.location_range],
            "phi1_range": [float(v) for v in self.phi1_range],
            "phi2_range": [float(v) for v in self.phi2_range],
            "residual_bound": float(self.residual_bound),
            "ridge_lambda": float(self.ridge_lambda),
            "train_samples": int(self.train_samples),
            "train_residual_p50": float(self.train_residual_p50),
            "train_residual_p95": float(self.train_residual_p95),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SurrogateInverse":
        """Inverse of :meth:`to_dict`.

        Raises:
            SurrogateError: Unknown serialized version.
        """
        version = int(payload.get("version", -1))
        if version != SURROGATE_MODEL_VERSION:
            raise SurrogateError(
                f"surrogate model version {version} is not supported "
                f"(expected {SURROGATE_MODEL_VERSION})")
        return cls(
            feature_map=PhaseFeatureMap.from_dict(payload["feature_map"]),
            feature_mean=np.array(payload["feature_mean"], dtype=float),
            feature_scale=np.array(payload["feature_scale"], dtype=float),
            weights=np.array(payload["weights"], dtype=float),
            intercept=np.array(payload["intercept"], dtype=float),
            force_range=tuple(float(v) for v in payload["force_range"]),
            location_range=tuple(float(v)
                                 for v in payload["location_range"]),
            phi1_range=tuple(float(v) for v in payload["phi1_range"]),
            phi2_range=tuple(float(v) for v in payload["phi2_range"]),
            residual_bound=float(payload["residual_bound"]),
            ridge_lambda=float(payload["ridge_lambda"]),
            train_samples=int(payload["train_samples"]),
            train_residual_p50=float(payload["train_residual_p50"]),
            train_residual_p95=float(payload["train_residual_p95"]),
        )


def train_surrogate(model: SensorModel,
                    spec: Optional[DatasetSpec] = None,
                    feature_map: Optional[PhaseFeatureMap] = None,
                    ridge_lambda: float = 1e-8,
                    executor=None) -> SurrogateInverse:
    """Train (or load) the surrogate inverse for ``model``.

    The dataset flows through :func:`repro.surrogate.data.build_dataset`
    (itself cached) and the fitted model is memoized under the
    ``surrogate.model`` namespace, keyed on the dataset spec, feature
    map, ridge strength, *and* the calibrated model itself — retraining
    is automatic whenever any ingredient changes.  ``executor`` only
    matters on a cold dataset sweep, where it shards SNR levels across
    warm campaign pools.
    """
    spec = spec or DatasetSpec()
    feature_map = feature_map or PhaseFeatureMap()
    key = {
        "dataset": spec.cache_key(),
        "features": feature_map.to_dict(),
        "ridge_lambda": float(ridge_lambda),
        "model": model.to_dict(),
    }

    def _fit() -> SurrogateInverse:
        with maybe_span("surrogate.fit", {"samples": spec.samples}):
            dataset = build_dataset(spec, executor=executor)
            return SurrogateInverse.fit(model, dataset,
                                        feature_map=feature_map,
                                        ridge_lambda=ridge_lambda)

    return get_cache().get_or_compute(
        "surrogate.model", SURROGATE_MODEL_VERSION, key, _fit,
        encode=SurrogateInverse.to_dict, decode=SurrogateInverse.from_dict)


class SurrogateEstimator(ForceLocationEstimator):
    """Drop-in estimator that amortizes the grid search.

    Public API, thresholds, and the no-touch short-circuit are
    inherited unchanged from :class:`ForceLocationEstimator`; only the
    inversion strategy differs.  The fallback contract:

    * phases outside the training envelope, or whose forward residual
      exceeds ``surrogate.residual_bound`` -> grid search, bit-exact;
    * any request carrying a ``location_hint`` -> grid search (the
      +/- 10 mm prior has no surrogate equivalent);
    * everything else -> one ridge predict + one forward-residual
      check for the whole batch.

    The scalar path delegates to the batch path, so ``invert`` and
    ``invert_batch`` agree element-wise exactly like the grid pair.
    """

    backend = "surrogate"

    def __init__(self, model: SensorModel, surrogate: SurrogateInverse,
                 touch_threshold_deg: float = 5.0,
                 force_resolution: float = 0.01,
                 location_resolution: float = 0.05e-3):
        super().__init__(model, touch_threshold_deg=touch_threshold_deg,
                         force_resolution=force_resolution,
                         location_resolution=location_resolution)
        self.surrogate = surrogate

    def _invert(self, phi1: float, phi2: float,
                location_hint: Optional[float] = None
                ) -> ForceLocationEstimate:
        hint = None if location_hint is None else np.array([location_hint])
        return self._invert_batch(np.array([phi1]), np.array([phi2]),
                                  hint)[0]

    def _invert_batch(self, phi1: np.ndarray, phi2: np.ndarray,
                      location_hint: Optional[np.ndarray] = None
                      ) -> BatchForceLocationEstimate:
        if location_hint is not None:
            return super()._invert_batch(phi1, phi2, location_hint)
        phi1 = np.atleast_1d(np.asarray(phi1, dtype=float))
        phi2 = np.atleast_1d(np.asarray(phi2, dtype=float))
        phi1, phi2 = np.broadcast_arrays(phi1, phi2)
        if phi1.ndim != 1:
            raise EstimationError(
                f"phase batches must be 1-D, got shape {phi1.shape}")
        count = phi1.shape[0]
        touched = ~((np.abs(phi1) < self.touch_threshold)
                    & (np.abs(phi2) < self.touch_threshold))
        force = np.zeros(count)
        location = np.zeros(count)
        residual = np.zeros(count)
        pressed = np.flatnonzero(touched)
        accepted = 0
        if pressed.size:
            sample1 = phi1[pressed]
            sample2 = phi2[pressed]
            predicted_force, predicted_location = \
                self.surrogate.predict_batch(sample1, sample2)
            residuals = forward_residual(self.model, predicted_force,
                                         predicted_location, sample1,
                                         sample2)
            confident = (self.surrogate.in_domain(sample1, sample2)
                         & (residuals <= self.surrogate.residual_bound))
            keep = pressed[confident]
            force[keep] = predicted_force[confident]
            location[keep] = predicted_location[confident]
            residual[keep] = residuals[confident]
            accepted = int(keep.size)
            fallback = pressed[~confident]
            if fallback.size:
                exact = super()._invert_batch(phi1[fallback],
                                              phi2[fallback])
                force[fallback] = exact.force
                location[fallback] = exact.location
                residual[fallback] = exact.residual
        obs = active()
        if obs is not None and pressed.size:
            obs.counter("surrogate.predictions").increment(accepted)
            obs.counter("surrogate.fallbacks").increment(
                int(pressed.size) - accepted)
        return BatchForceLocationEstimate(force=force, location=location,
                                          residual=residual,
                                          touched=touched)


def build_surrogate_estimator(model: SensorModel,
                              touch_threshold_deg: float = 5.0,
                              carrier_frequency: Optional[float] = None,
                              fast: bool = True,
                              spec: Optional[DatasetSpec] = None,
                              **estimator_options) -> SurrogateEstimator:
    """Train-or-load a surrogate and wrap it as an estimator.

    The estimator-backend registry's factory for
    ``backend="surrogate"``.  When no explicit dataset ``spec`` is
    given, one is derived from the model's carrier (overridable via
    ``carrier_frequency``) and the ``fast`` transducer flag — the same
    identity the serve stack keys its model cache on.
    """
    if spec is None:
        carrier = (float(model.frequency) if carrier_frequency is None
                   else float(carrier_frequency))
        spec = DatasetSpec(carrier_frequency=carrier, fast=bool(fast))
    surrogate = train_surrogate(model, spec)
    return SurrogateEstimator(model, surrogate,
                              touch_threshold_deg=touch_threshold_deg,
                              **estimator_options)
