"""Learned amortized inversion (the ``surrogate`` estimator backend).

The sim-to-real loop from PAPERS.md, closed over this repo's own
simulator: :mod:`repro.surrogate.data` sweeps (force, location, SNR)
through the wireless stack as a content-addressed training-data
factory, :mod:`repro.surrogate.model` fits a pure-numpy ridge inverse
on polynomial + Fourier phase features with a bit-exact grid fallback
for out-of-domain measurements, and :mod:`repro.surrogate.evaluate`
scores it against the grid oracle (error CDFs + amortized speedup,
``BENCH_surrogate.json``).

Select it anywhere an estimator is built: ``backend="surrogate"`` on
:func:`repro.core.estimator.build_estimator`,
:class:`repro.core.pipeline.WiForceReader`,
:class:`repro.serve.protocol.SensorConfig` (per request / per tenant),
or ``--backend surrogate`` on the bench CLIs.
"""

from repro.surrogate.data import (
    DATASET_VERSION,
    DatasetSpec,
    TrainingDataset,
    build_dataset,
)
from repro.surrogate.evaluate import (
    evaluate_surrogate,
    summarize,
    write_report,
)
from repro.surrogate.model import (
    SURROGATE_MODEL_VERSION,
    PhaseFeatureMap,
    SurrogateEstimator,
    SurrogateInverse,
    build_surrogate_estimator,
    forward_residual,
    train_surrogate,
)

__all__ = [
    "DATASET_VERSION",
    "SURROGATE_MODEL_VERSION",
    "DatasetSpec",
    "PhaseFeatureMap",
    "SurrogateEstimator",
    "SurrogateInverse",
    "TrainingDataset",
    "build_dataset",
    "build_surrogate_estimator",
    "evaluate_surrogate",
    "forward_residual",
    "summarize",
    "train_surrogate",
    "write_report",
]
