"""Deterministic training-data factory for the surrogate inverse.

Sweeps (force, location, SNR) through the *existing* wireless
simulator: one :func:`~repro.experiments.scenarios.build_wireless_scenario`
deployment per transmit-power level, a baseline capture for the drift
reference, then every press in the sweep captured through
:meth:`repro.reader.batch.FastSounder.capture_batch` in one fused array
pass (:meth:`repro.core.pipeline.WiForceReader.measure_phases_batch`).
The SNR axis is the reader's transmit power — lower power means noisier
phase estimates, which is exactly the distribution shift the surrogate
must absorb at serve time.

Everything is seeded by the spec, so the dataset is a pure function of
:meth:`DatasetSpec.cache_key` and flows content-addressed through
:mod:`repro.cache` (:data:`DATASET_VERSION`): campaign workers, serve
replicas, and CI all share one artifact from the disk tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.cache import get_cache
from repro.errors import SurrogateError
from repro.obs.registry import active, maybe_span

#: Bump whenever the sweep protocol or serialized layout changes.
DATASET_VERSION = 1


@dataclass(frozen=True)
class DatasetSpec:
    """Everything a training sweep depends on (the cache key).

    Attributes:
        carrier_frequency: Calibration carrier [Hz].
        fast: Reduced-resolution transducer (matches the serve stack's
            ``SensorConfig.fast``).
        force_points / location_points: Sweep grid resolution over the
            calibrated spans.
        tx_power_sweep: Reader transmit powers [dBm] — the SNR axis;
            one simulated deployment (fresh clutter draw) per level.
        repeats: Independent noise draws per (force, location, power).
        seed: Master seed; each power level derives its own.
        force_range: Swept force span [N].
        location_range: Swept location span [m].
        chunk_captures: Presses captured per drift baseline.  A single
            baseline's linear clock-drift fit extrapolates ~1.5 rad of
            phase error across a thousand contiguous captures, so the
            sweep re-references every chunk (the paper's before/after
            protocol at batch granularity).
        baseline_groups: Phase groups per baseline capture — the drift
            fit's observation window (longer = tighter slope).
    """

    carrier_frequency: float = 900e6
    fast: bool = True
    force_points: int = 24
    location_points: int = 25
    tx_power_sweep: Tuple[float, ...] = (4.0, 10.0, 16.0)
    repeats: int = 2
    seed: int = 17
    force_range: Tuple[float, float] = (0.5, 8.0)
    location_range: Tuple[float, float] = (0.020, 0.060)
    chunk_captures: int = 64
    baseline_groups: int = 32

    def __post_init__(self):
        if self.force_points < 2 or self.location_points < 2:
            raise SurrogateError("sweep needs >= 2 points per axis")
        if not self.tx_power_sweep:
            raise SurrogateError("tx_power_sweep must not be empty")
        if self.repeats < 1:
            raise SurrogateError(
                f"repeats must be >= 1, got {self.repeats}")
        if self.chunk_captures < 1:
            raise SurrogateError(
                f"chunk_captures must be >= 1, got {self.chunk_captures}")
        if self.baseline_groups < 2:
            raise SurrogateError(
                f"baseline_groups must be >= 2, got {self.baseline_groups}")

    @property
    def samples(self) -> int:
        """Total rows the sweep produces."""
        return (self.force_points * self.location_points * self.repeats
                * len(self.tx_power_sweep))

    def forces(self) -> np.ndarray:
        """The swept force grid [N]."""
        return np.linspace(self.force_range[0], self.force_range[1],
                           self.force_points)

    def locations(self) -> np.ndarray:
        """The swept location grid [m]."""
        return np.linspace(self.location_range[0], self.location_range[1],
                           self.location_points)

    def cache_key(self) -> dict:
        """Canonical cache key (plain scalars and lists)."""
        return {
            "carrier_frequency": float(self.carrier_frequency),
            "fast": bool(self.fast),
            "force_points": int(self.force_points),
            "location_points": int(self.location_points),
            "tx_power_sweep": [float(p) for p in self.tx_power_sweep],
            "repeats": int(self.repeats),
            "seed": int(self.seed),
            "force_range": [float(v) for v in self.force_range],
            "location_range": [float(v) for v in self.location_range],
            "chunk_captures": int(self.chunk_captures),
            "baseline_groups": int(self.baseline_groups),
        }


@dataclass(frozen=True)
class TrainingDataset:
    """One materialized sweep: wireless phases with ground truth.

    Attributes:
        phi1 / phi2: Measured differential phases [rad], shape (N,).
        force / location: Applied ground truth [N] / [m], shape (N,).
        tx_power_dbm: Transmit power each row was captured at [dBm].
    """

    phi1: np.ndarray
    phi2: np.ndarray
    force: np.ndarray
    location: np.ndarray
    tx_power_dbm: np.ndarray

    def __len__(self) -> int:
        return int(self.phi1.shape[0])

    def to_dict(self) -> dict:
        """JSON-ready dict (plain lists; the cache codec)."""
        return {
            "version": DATASET_VERSION,
            "phi1": [float(v) for v in self.phi1],
            "phi2": [float(v) for v in self.phi2],
            "force": [float(v) for v in self.force],
            "location": [float(v) for v in self.location],
            "tx_power_dbm": [float(v) for v in self.tx_power_dbm],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingDataset":
        """Inverse of :meth:`to_dict`.

        Raises:
            SurrogateError: Unknown serialized version.
        """
        version = int(payload.get("version", -1))
        if version != DATASET_VERSION:
            raise SurrogateError(
                f"dataset version {version} is not supported "
                f"(expected {DATASET_VERSION})")
        return cls(
            phi1=np.array(payload["phi1"], dtype=float),
            phi2=np.array(payload["phi2"], dtype=float),
            force=np.array(payload["force"], dtype=float),
            location=np.array(payload["location"], dtype=float),
            tx_power_dbm=np.array(payload["tx_power_dbm"], dtype=float),
        )


def _sweep(spec: DatasetSpec, executor=None) -> TrainingDataset:
    """The cold path behind :func:`build_dataset`.

    Imported lazily so :mod:`repro.surrogate` stays importable without
    the experiments stack (mirroring the serve package's model
    factory).  With an executor, power levels shard across its warm
    worker pools; without one they run serially in-process — the
    results are bit-identical either way because every trial is seeded
    entirely by its arguments.
    """
    from repro.experiments.montecarlo import (
        _training_sweep_trial,
        training_sweep_campaign,
    )

    if executor is not None:
        columns = training_sweep_campaign(
            carrier=spec.carrier_frequency, fast=spec.fast,
            tx_power_sweep=spec.tx_power_sweep,
            forces=tuple(float(f) for f in spec.forces()),
            locations=tuple(float(l) for l in spec.locations()),
            repeats=spec.repeats, seed=spec.seed,
            chunk_captures=spec.chunk_captures,
            baseline_groups=spec.baseline_groups, executor=executor)
    else:
        rows = [
            _training_sweep_trial(
                level, spec.carrier_frequency, spec.fast, float(power),
                tuple(float(f) for f in spec.forces()),
                tuple(float(l) for l in spec.locations()),
                spec.repeats, spec.seed, spec.chunk_captures,
                spec.baseline_groups)
            for level, power in enumerate(spec.tx_power_sweep)
        ]
        columns = tuple(np.concatenate(column)
                        for column in zip(*rows))
    return TrainingDataset(phi1=columns[0], phi2=columns[1],
                           force=columns[2], location=columns[3],
                           tx_power_dbm=columns[4])


def build_dataset(spec: Optional[DatasetSpec] = None,
                  executor=None) -> TrainingDataset:
    """Materialize (or load) the training dataset for ``spec``.

    Content-addressed through :mod:`repro.cache`: the first caller
    anywhere pays for the simulator sweep, everyone after loads the
    artifact from the disk tier.  ``executor`` (a
    :class:`repro.experiments.parallel.CampaignExecutor`) only matters
    on the cold path, where it shards power levels across warm pools.
    """
    spec = spec or DatasetSpec()
    obs = active()
    with maybe_span("surrogate.dataset", {"samples": spec.samples}):
        dataset = get_cache().get_or_compute(
            "surrogate.dataset", DATASET_VERSION, spec.cache_key(),
            lambda: _sweep(spec, executor),
            encode=TrainingDataset.to_dict,
            decode=TrainingDataset.from_dict)
    if obs is not None:
        obs.counter("surrogate.dataset_loads").increment()
    return dataset
