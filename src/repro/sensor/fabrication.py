"""Manufacturing tolerances and calibration transfer.

Two production questions the paper's prototype-scale evaluation leaves
open, answered here by simulation:

* **Tolerance analysis** — how much do fabrication deviations (gap
  height, trace width, soft-beam thickness, elastomer batch modulus)
  move the RF design point and the phase-force curves?
* **Calibration transfer** — can a model calibrated on a *nominal*
  sensor read a *toleranced* unit, or does every unit need its own
  calibration?  (The answer drives per-unit manufacturing cost.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.mechanics.materials import Material
from repro.rf.microstrip import MicrostripLine
from repro.sensor.geometry import SensorDesign, default_sensor_design


@dataclass(frozen=True)
class FabricationTolerances:
    """Relative 1-sigma deviations of the fabrication process.

    Attributes:
        gap_height: Air-gap height tolerance (spacer thickness).
        trace_width: Signal-trace width tolerance (etch/cut).
        soft_thickness: Elastomer cast-thickness tolerance.
        elastomer_modulus: Batch-to-batch modulus tolerance
            (cure ratio/temperature; elastomers vary a lot).
    """

    gap_height: float = 0.05
    trace_width: float = 0.02
    soft_thickness: float = 0.05
    elastomer_modulus: float = 0.15

    def __post_init__(self) -> None:
        for name, value in (("gap_height", self.gap_height),
                            ("trace_width", self.trace_width),
                            ("soft_thickness", self.soft_thickness),
                            ("elastomer_modulus", self.elastomer_modulus)):
            if not 0.0 <= value < 0.5:
                raise ConfigurationError(
                    f"{name} tolerance must be in [0, 0.5), got {value}"
                )


def perturbed_design(base: Optional[SensorDesign] = None,
                     tolerances: FabricationTolerances = FabricationTolerances(),
                     rng: Optional[np.random.Generator] = None
                     ) -> SensorDesign:
    """One fabricated unit: the nominal design with random deviations."""
    rng = rng or np.random.default_rng()
    base = base or default_sensor_design()

    def draw(nominal: float, sigma: float) -> float:
        # Truncate at 3 sigma so no sample is non-physical.
        factor = float(np.clip(rng.normal(1.0, sigma), 1.0 - 3 * sigma,
                               1.0 + 3 * sigma))
        return nominal * factor

    line = MicrostripLine(
        width=draw(base.line.width, tolerances.trace_width),
        ground_width=base.line.ground_width,
        height=draw(base.line.height, tolerances.gap_height),
        length=base.line.length,
        trace_thickness=base.line.trace_thickness,
    )
    soft = base.soft_material
    material = Material(
        name=f"{soft.name}-batch",
        youngs_modulus=draw(soft.youngs_modulus,
                            tolerances.elastomer_modulus),
        poisson_ratio=soft.poisson_ratio,
        density=soft.density,
    )
    return replace(
        base,
        line=line,
        soft_material=material,
        soft_thickness=draw(base.soft_thickness,
                            tolerances.soft_thickness),
    )


@dataclass(frozen=True)
class ToleranceReport:
    """Impedance statistics of a fabricated batch.

    Attributes:
        impedances: Z0 of each sampled unit [ohm].
        worst_mismatch_db: Worst unit's S11 against 50 ohm [dB].
    """

    impedances: np.ndarray

    @property
    def worst_mismatch_db(self) -> float:
        """Worst return loss in the batch [dB] (less negative = worse)."""
        gammas = np.abs((self.impedances - 50.0)
                        / (self.impedances + 50.0))
        return float(20.0 * np.log10(max(gammas.max(), 1e-12)))

    @property
    def impedance_spread(self) -> Tuple[float, float]:
        """(mean, std) of the batch impedance [ohm]."""
        return float(self.impedances.mean()), float(self.impedances.std())


def tolerance_report(units: int = 50,
                     tolerances: FabricationTolerances = FabricationTolerances(),
                     seed: int = 0) -> ToleranceReport:
    """RF design-point statistics of a fabricated batch.

    The RF side is tolerance-friendly: even generous mechanical
    tolerances keep every unit's S11 far below -10 dB, because the
    impedance depends only logarithmically on the h/w ratio.
    """
    if units < 2:
        raise ConfigurationError(f"need at least 2 units, got {units}")
    rng = np.random.default_rng(seed)
    impedances = np.array([
        perturbed_design(tolerances=tolerances,
                         rng=rng).line.characteristic_impedance
        for _ in range(units)
    ])
    return ToleranceReport(impedances=impedances)


def scaled_design(scale: float,
                  base: Optional[SensorDesign] = None) -> SensorDesign:
    """A geometrically scaled sensor (paper section 7, form factor).

    All in-plane and stack dimensions shrink by ``scale``; reading at a
    proportionally higher carrier keeps the *electrical* phase
    sensitivity per (scaled) millimetre, which is exactly the paper's
    argument for miniaturisation via higher frequencies.
    """
    if scale <= 0.0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    base = base or default_sensor_design()
    line = MicrostripLine(
        width=base.line.width * scale,
        ground_width=base.line.ground_width * scale,
        height=base.line.height * scale,
        length=base.line.length * scale,
        trace_thickness=base.line.trace_thickness,
    )
    return replace(
        base,
        line=line,
        soft_thickness=base.soft_thickness * scale,
        soft_width=base.soft_width * scale,
    )
