"""The WiForce sensor: transduction, clocking, tag and power budget.

Combines the mechanics substrate (where do the shorting points go) with
the RF substrate (what reflection does that produce) into the complete
backscatter tag of paper section 4: microstrip sensor, two duty-cycled
reflective switches, splitter and antenna.
"""

from repro.sensor.geometry import SensorDesign, default_sensor_design
from repro.sensor.clock import (
    DutyCycleClock,
    ClockingScheme,
    wiforce_clocking,
    naive_clocking,
)
from repro.sensor.transduction import ForceTransducer, PortPhases
from repro.sensor.tag import WiForceTag, TagState
from repro.sensor.fabrication import (
    FabricationTolerances,
    perturbed_design,
    scaled_design,
    tolerance_report,
)
from repro.sensor.harvester import (
    EnergyHarvester,
    HarvestingReport,
    Rectifier,
)
from repro.sensor.power import PowerBudget, wiforce_power_budget
from repro.sensor.multitouch import (
    AmbiguityReport,
    TwoPressState,
    ambiguity_report,
    two_press_phases,
)
from repro.sensor.viscoelastic import CreepingTransducer

__all__ = [
    "SensorDesign",
    "default_sensor_design",
    "DutyCycleClock",
    "ClockingScheme",
    "wiforce_clocking",
    "naive_clocking",
    "ForceTransducer",
    "PortPhases",
    "WiForceTag",
    "TagState",
    "FabricationTolerances",
    "perturbed_design",
    "scaled_design",
    "tolerance_report",
    "EnergyHarvester",
    "HarvestingReport",
    "Rectifier",
    "PowerBudget",
    "wiforce_power_budget",
    "AmbiguityReport",
    "TwoPressState",
    "ambiguity_report",
    "two_press_phases",
    "CreepingTransducer",
]
