"""Duty-cycled switch clocking (paper section 3.2).

Each sensor end gets an identity by toggling its switch at a distinct
frequency.  Naive 50%-duty clocks fail: whenever both switches are on,
the two ends are electrically connected through the line and the
reflection is cross-modulated (intermodulation, Fig. 7).  WiForce's
scheme exploits square-wave duty-cycle zeros: a 25%-duty window train
at fs and a complementary 25%-on window train at 2fs (the paper's
"75% duty" clock driving an active-low switch) are on-disjoint, and
their harmonic combs collide only at 2 fs, leaving fs and 4 fs as
clean per-end readout tones (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.errors import ClockingError, ConfigurationError

FloatOrArray = Union[float, np.ndarray]


@dataclass(frozen=True)
class DutyCycleClock:
    """Periodic on-window indicator.

    Describes when a switch routes the antenna to its sensor end: on
    for a fraction ``duty`` of each period, starting at phase fraction
    ``phase`` of the period.

    Attributes:
        frequency: Repetition rate [Hz].
        duty: On fraction in (0, 1).
        phase: Window start as a fraction of the period, in [0, 1).
    """

    frequency: float
    duty: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise ConfigurationError(
                f"clock frequency must be positive, got {self.frequency}"
            )
        if not 0.0 < self.duty < 1.0:
            raise ConfigurationError(
                f"duty cycle must be in (0, 1), got {self.duty}"
            )
        if not 0.0 <= self.phase < 1.0:
            raise ConfigurationError(
                f"phase fraction must be in [0, 1), got {self.phase}"
            )

    @property
    def period(self) -> float:
        """Clock period [s]."""
        return 1.0 / self.frequency

    def is_on(self, time: FloatOrArray) -> np.ndarray:
        """Boolean on-state at the given time(s) [s]."""
        cycle_position = np.mod(
            np.asarray(time, dtype=float) * self.frequency - self.phase, 1.0)
        return cycle_position < self.duty

    def fourier_coefficient(self, harmonic: int) -> complex:
        """Complex Fourier coefficient c_k of the 0/1 indicator.

        ``m(t) = sum_k c_k exp(j 2 pi k f t)`` with
        ``c_k = duty sinc(k duty) exp(-j pi k (2 phase + duty))`` and
        ``c_0 = duty``.  Zeros fall at harmonics k with ``k duty``
        integer — the duty-cycle nulls the scheme is built on.
        """
        if harmonic == 0:
            return complex(self.duty)
        k = float(harmonic)
        magnitude = self.duty * np.sinc(k * self.duty)
        return magnitude * np.exp(-1j * np.pi * k * (2.0 * self.phase + self.duty))

    def harmonic_frequencies(self, count: int) -> np.ndarray:
        """The first ``count`` positive harmonic frequencies [Hz]."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        return self.frequency * np.arange(1, count + 1)


@dataclass(frozen=True)
class ClockingScheme:
    """A pair of switch on-window clocks plus their readout tones.

    Attributes:
        clock_port1: On-window train of the port-1 switch.
        clock_port2: On-window train of the port-2 switch.
        readout_port1: Tone [Hz] carrying port 1's phase.
        readout_port2: Tone [Hz] carrying port 2's phase.
    """

    clock_port1: DutyCycleClock
    clock_port2: DutyCycleClock
    readout_port1: float
    readout_port2: float

    def states(self, time: FloatOrArray) -> Tuple[np.ndarray, np.ndarray]:
        """(port1_on, port2_on) boolean arrays at the given time(s)."""
        return self.clock_port1.is_on(time), self.clock_port2.is_on(time)

    def overlap_fraction(self, samples: int = 4096) -> float:
        """Fraction of time both switches are on (0 for WiForce).

        Evaluated over many slow-clock periods on a uniform grid offset
        by half a sample so window edges are unambiguous.
        """
        span = 16.0 * max(self.clock_port1.period, self.clock_port2.period)
        time = (np.arange(samples) + 0.5) * (span / samples)
        on1, on2 = self.states(time)
        return float(np.mean(on1 & on2))

    def validate(self) -> None:
        """Check the scheme's two core requirements.

        Raises:
            ClockingError: The on-windows overlap (intermodulation) or
                a readout tone is nulled by its clock's duty cycle.
        """
        if self.overlap_fraction() > 0.0:
            raise ClockingError(
                "switch on-windows overlap: both ends would be connected "
                "through the line and intermodulate (paper Fig. 7)"
            )
        for clock, tone, port in (
            (self.clock_port1, self.readout_port1, 1),
            (self.clock_port2, self.readout_port2, 2),
        ):
            ratio = tone / clock.frequency
            harmonic = int(round(ratio))
            if abs(ratio - harmonic) > 1e-9 or harmonic < 1:
                raise ClockingError(
                    f"readout tone {tone} Hz is not a harmonic of port "
                    f"{port}'s clock ({clock.frequency} Hz)"
                )
            if abs(clock.fourier_coefficient(harmonic)) < 1e-12:
                raise ClockingError(
                    f"port {port} readout harmonic {harmonic} is nulled "
                    f"by the clock's duty cycle {clock.duty}"
                )

    def collision_tones(self, max_harmonic: int = 12) -> List[float]:
        """Frequencies [Hz] where both clocks emit energy (e.g. 2 fs)."""
        tones1 = {
            round(float(f), 6)
            for k, f in enumerate(
                self.clock_port1.harmonic_frequencies(max_harmonic), start=1)
            if abs(self.clock_port1.fourier_coefficient(k)) > 1e-12
        }
        tones2 = {
            round(float(f), 6)
            for k, f in enumerate(
                self.clock_port2.harmonic_frequencies(max_harmonic), start=1)
            if abs(self.clock_port2.fourier_coefficient(k)) > 1e-12
        }
        return sorted(tones1 & tones2)


def wiforce_clocking(base_frequency: float = 1e3) -> ClockingScheme:
    """The paper's interference-free scheme (section 3.2 / Fig. 8).

    Port 1: 25%-duty windows at ``fs`` starting at phase 0.
    Port 2: 25%-on windows at ``2 fs`` phased to fill the quarter-period
    right after port 1's window (the "75% duty clock" of section 4.3,
    seen from the switch's active-low input).  On-windows are disjoint
    and the readout tones are ``fs`` and ``4 fs``.
    """
    scheme = ClockingScheme(
        clock_port1=DutyCycleClock(base_frequency, duty=0.25, phase=0.0),
        clock_port2=DutyCycleClock(2.0 * base_frequency, duty=0.25, phase=0.5),
        readout_port1=base_frequency,
        readout_port2=4.0 * base_frequency,
    )
    scheme.validate()
    return scheme


def naive_clocking(base_frequency: float = 1e3) -> ClockingScheme:
    """The strawman scheme of Fig. 7: two 50%-duty clocks.

    Both switches are on simultaneously half the time, connecting the
    sensor ends through the line and producing intermodulation.  Kept
    as a baseline; calling :meth:`ClockingScheme.validate` on it raises.
    """
    return ClockingScheme(
        clock_port1=DutyCycleClock(base_frequency, duty=0.5, phase=0.0),
        clock_port2=DutyCycleClock(2.0 * base_frequency, duty=0.5, phase=0.0),
        readout_port1=base_frequency,
        readout_port2=2.0 * base_frequency,
    )
