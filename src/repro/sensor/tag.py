"""The complete backscatter tag: sensor + switches + splitter + antenna.

Computes the tag's composite reflection coefficient as a function of
time and press state.  Both switch branches merge onto one antenna
through an ideal splitter (paper section 3.2, Fig. 15's five
components), so the antenna sees::

    Gamma(t) = 0.5 * (Gamma_branch1(t) + Gamma_branch2(t))

with each branch's reflection determined by its switch state.  When
both switches are on (only possible with a naive clocking scheme) the
ends couple through the line and the cross-transmission terms appear —
the intermodulation of Fig. 7 falls out of this model naturally.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SensorError
from repro.rf.elements import ideal_splitter_reflection
from repro.sensor.clock import ClockingScheme, wiforce_clocking
from repro.sensor.transduction import ForceTransducer


@dataclass(frozen=True)
class TagState:
    """A press state applied to the tag.

    Attributes:
        force: Contact force [N] (0 = untouched).
        location: Contact location [m] from port 1.
    """

    force: float = 0.0
    location: float = 0.0


class WiForceTag:
    """Backscatter tag model producing time-varying reflection.

    Args:
        transducer: The sensor's force-to-RF transducer.
        clocking: Switch clocking scheme; defaults to the paper's
            duty-cycled 1 kHz / 2 kHz scheme.
        antenna_gain_dbi: Tag antenna gain [dBi] (used by link budgets).
        clock_offset_ppm: Frequency error of the tag's clock crystal in
            parts per million.  The tag is a separate, unsynchronized
            device (paper section 4.4), so its real toggle rates are
            ``nominal * (1 + ppm * 1e-6)`` while the reader extracts at
            the nominal tones — producing the slow phase drift the
            reader's baseline tracking must absorb.
    """

    #: Bound on the per-tag state-reflection LRU.  64 states cover a
    #: full calibration schedule plus the untouched baseline.
    STATE_CACHE_LIMIT = 64

    def __init__(self, transducer: ForceTransducer,
                 clocking: Optional[ClockingScheme] = None,
                 antenna_gain_dbi: float = 2.0,
                 clock_offset_ppm: float = 0.0):
        self._transducer = transducer
        self._clocking = clocking or wiforce_clocking()
        self.antenna_gain_dbi = float(antenna_gain_dbi)
        self.clock_offset_ppm = float(clock_offset_ppm)
        self._state_cache: OrderedDict[
            Tuple[float, float, bytes],
            Dict[Tuple[bool, bool], np.ndarray]] = OrderedDict()
        self._table_cache: OrderedDict[
            Tuple[float, float, bytes], np.ndarray] = OrderedDict()

    @property
    def transducer(self) -> ForceTransducer:
        """The underlying force transducer."""
        return self._transducer

    @property
    def clocking(self) -> ClockingScheme:
        """The switch clocking scheme."""
        return self._clocking

    def _branch_reflections(self, frequency: np.ndarray,
                            state: TagState) -> Dict[Tuple[bool, bool], np.ndarray]:
        """Composite antenna reflection for each (on1, on2) state."""
        switch = self._transducer.design.switch
        off_gamma = switch.off_reflection
        branch_off = switch.branch_off_reflection
        through = switch.through_gain

        if state.force > 0.0:
            network = self._transducer.touched_twoport(
                frequency, state.force, state.location)
        else:
            network = self._transducer.untouched_twoport(frequency)
        flipped = network.flipped()

        ones = np.ones(frequency.shape, dtype=complex)
        off_wave = branch_off * ones

        # Exactly one switch on: that port sees the line terminated by
        # the other (off, reflective) switch; the off branch reflects at
        # its own switch input.
        gamma_port1 = through ** 2 * network.terminated_reflection(off_gamma)
        gamma_port2 = through ** 2 * flipped.terminated_reflection(off_gamma)

        # Both on: each port is terminated by the matched path through
        # the other on-switch into the splitter's isolated port, and the
        # through path couples the branches (intermodulation source).
        matched1 = through ** 2 * network.terminated_reflection(0.0)
        matched2 = through ** 2 * flipped.terminated_reflection(0.0)
        cross = through ** 2 * 0.5 * (network.s21 + network.s12)

        return {
            (False, False): ideal_splitter_reflection(off_wave, off_wave),
            (True, False): ideal_splitter_reflection(gamma_port1, off_wave),
            (False, True): ideal_splitter_reflection(off_wave, gamma_port2),
            (True, True): (ideal_splitter_reflection(matched1, matched2)
                           + cross),
        }

    def state_reflections(self, frequency: np.ndarray,
                          state: TagState) -> Dict[Tuple[bool, bool], np.ndarray]:
        """Public access to the four switch-state reflections.

        Memoized per (force, location, frequency grid) in a bounded
        LRU: a hit refreshes the entry and eviction drops only the
        least-recently-used state, so the hot untouched-baseline entry
        survives a long sweep of distinct presses.
        """
        frequency = np.asarray(frequency, dtype=float)
        key = (state.force, state.location, frequency.tobytes())
        cached = self._state_cache.get(key)
        if cached is not None:
            self._state_cache.move_to_end(key)
            return cached
        reflections = self._branch_reflections(frequency, state)
        self._state_cache[key] = reflections
        while len(self._state_cache) > self.STATE_CACHE_LIMIT:
            self._state_cache.popitem(last=False)
        return reflections

    def state_table(self, frequency: np.ndarray,
                    state: TagState) -> np.ndarray:
        """The four switch-state reflections as one stacked array.

        Returns shape ``(4, len(frequency))`` in switch-index order
        ``on1 * 2 + on2`` — row 0 is the resting (off, off) state.
        This is the gather table the batched sounders index per frame;
        the stack is memoized alongside :meth:`state_reflections` in
        its own bounded LRU so the hot loop never re-stacks.  The
        returned array is shared — treat it as read-only.
        """
        frequency = np.asarray(frequency, dtype=float)
        if state.force < 0.0:
            raise SensorError(f"force must be non-negative, got {state.force}")
        key = (state.force, state.location, frequency.tobytes())
        cached = self._table_cache.get(key)
        if cached is not None:
            self._table_cache.move_to_end(key)
            return cached
        reflections = self.state_reflections(frequency, state)
        table = np.stack([
            reflections[(False, False)],
            reflections[(False, True)],
            reflections[(True, False)],
            reflections[(True, True)],
        ])
        self._table_cache[key] = table
        while len(self._table_cache) > self.STATE_CACHE_LIMIT:
            self._table_cache.popitem(last=False)
        return table

    def reflection_table(self, frequency: np.ndarray,
                         states: Sequence[TagState]) -> np.ndarray:
        """Batched state evaluation: stacked tables for many states.

        Returns shape ``(len(states), 4, len(frequency))`` — the
        per-capture gather tables of a batched capture, assembled from
        the same per-state LRU as the scalar path so repeated states
        (every baseline capture of a campaign) hit the cache.
        """
        frequency = np.asarray(frequency, dtype=float)
        if not states:
            raise SensorError("need at least one state")
        return np.stack([self.state_table(frequency, state)
                         for state in states])

    def state_indices(self, times: np.ndarray) -> np.ndarray:
        """Switch-state index ``on1 * 2 + on2`` at each time sample.

        The tag's own crystal sets the pace of the switch windows, so
        the nominal reader timestamps are rescaled by the clock offset
        before the clocking scheme is consulted.
        """
        times = np.asarray(times, dtype=float)
        tag_times = times * (1.0 + self.clock_offset_ppm * 1e-6)
        on1, on2 = self._clocking.states(tag_times)
        return on1.astype(int) * 2 + on2.astype(int)

    def reflection_series(self, frequency: np.ndarray, times: np.ndarray,
                          state: TagState) -> np.ndarray:
        """Gamma(t, f): composite reflection, shape (len(times), len(f)).

        Piecewise constant over the switch states at each time sample;
        the clocking scheme decides which state each sample is in.
        """
        frequency = np.asarray(frequency, dtype=float)
        lookup = self.state_table(frequency, state)
        return lookup[self.state_indices(times)]

    def modulation_spectrum(self, frequency: float, state: TagState,
                            duration: Optional[float] = None,
                            samples: int = 8192) -> Tuple[np.ndarray, np.ndarray]:
        """Baseband spectrum of Gamma(t) at one carrier frequency.

        Returns (offsets [Hz], complex amplitudes) of the FFT of the
        reflection time series over ``duration`` (default: 8 periods of
        the slower clock).  Used to reproduce Figs. 7-8: the WiForce
        scheme puts clean energy at fs and 4 fs, the naive scheme smears
        energy into intermodulation tones.
        """
        if duration is None:
            duration = 8.0 * max(self._clocking.clock_port1.period,
                                 self._clocking.clock_port2.period)
        times = np.arange(samples) * (duration / samples)
        grid = np.array([float(frequency)])
        series = self.reflection_series(grid, times, state)[:, 0]
        spectrum = np.fft.fft(series) / samples
        offsets = np.fft.fftfreq(samples, d=duration / samples)
        order = np.argsort(offsets)
        return offsets[order], spectrum[order]
