"""Complete sensor design: mechanical stack + RF line in one object.

The paper's prototype (sections 4.1-4.3): 80 mm air-substrate
microstrip (2.5 mm trace, 6 mm ground, 0.63 mm height) with a soft
ecoflex beam on top, read out through two HMC544AE reflective switches
clocked at 1 kHz / 2 kHz with 25% / 75% duty cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.mechanics.beam import BeamSection, CompositeBeam
from repro.mechanics.contact import GapContactSolver, PressureKernel
from repro.mechanics.materials import COPPER, ECOFLEX_0030, Material
from repro.rf.microstrip import MicrostripLine
from repro.rf.switch import HMC544AE, RFSwitch

#: Effective Winkler foundation constant, as a fraction of the soft
#: layer's E * width / thickness.  Tuned so the shorting-point dynamic
#: range over the paper's 0-8 N span reproduces the phase-force curves
#: of Fig. 5 / Table 1 (see DESIGN.md, known deviations).
FOUNDATION_FRACTION = 0.024


@dataclass
class SensorDesign:
    """Full mechanical + RF description of one WiForce sensor.

    Attributes:
        line: The microstrip geometry.
        soft_material: Elastomer of the force-spreading beam.
        soft_thickness: Elastomer beam thickness [m].
        soft_width: Elastomer beam width [m].
        trace_thickness: Copper trace thickness [m].
        switch: RF switch used at both ends.
        contact_resistance: Residual shorting-contact resistance [ohm].
        grid_nodes: Contact-solver grid resolution.
    """

    line: MicrostripLine = field(default_factory=MicrostripLine)
    soft_material: Material = ECOFLEX_0030
    soft_thickness: float = 10e-3
    soft_width: float = 10e-3
    trace_thickness: float = 35e-6
    switch: RFSwitch = HMC544AE
    contact_resistance: float = 0.2
    grid_nodes: int = 321

    def __post_init__(self) -> None:
        if self.soft_thickness <= 0.0 or self.soft_width <= 0.0:
            raise ConfigurationError(
                "soft beam dimensions must be positive, got thickness="
                f"{self.soft_thickness}, width={self.soft_width}"
            )
        if self.trace_thickness <= 0.0:
            raise ConfigurationError(
                f"trace thickness must be positive, got {self.trace_thickness}"
            )
        if self.contact_resistance <= 0.0:
            raise ConfigurationError(
                f"contact resistance must be positive, got "
                f"{self.contact_resistance}"
            )

    @property
    def length(self) -> float:
        """Sensor length [m]."""
        return self.line.length

    def composite_beam(self) -> CompositeBeam:
        """The laminated top structure (trace under soft beam)."""
        return CompositeBeam(
            [
                BeamSection(COPPER, width=self.line.width,
                            thickness=self.trace_thickness),
                BeamSection(self.soft_material, width=self.soft_width,
                            thickness=self.soft_thickness),
            ],
            length=self.line.length,
        )

    def foundation_stiffness(self) -> float:
        """Effective Winkler constant [N/m^2] of the soft layer."""
        return (FOUNDATION_FRACTION * self.soft_material.youngs_modulus
                * self.soft_width / self.soft_thickness)

    def pressure_kernel(self) -> PressureKernel:
        """Load-spreading kernel of the soft layer."""
        return PressureKernel.for_soft_layer(self.soft_thickness)

    def contact_solver(self, nodes: Optional[int] = None) -> GapContactSolver:
        """Build the gap-contact solver for this design."""
        return GapContactSolver(
            beam=self.composite_beam(),
            gap=self.line.height,
            kernel=self.pressure_kernel(),
            nodes=nodes or self.grid_nodes,
            foundation_stiffness=self.foundation_stiffness(),
        )


def default_sensor_design() -> SensorDesign:
    """The paper's prototype sensor (sections 4.1-4.3)."""
    return SensorDesign()


def thin_trace_design() -> SensorDesign:
    """Bare thin-trace sensor for the Fig. 4 ablation.

    No soft beam: the pressure patch is point-like and the contact
    point barely moves with force, so the phase-force response is flat
    (the paper's motivation for the soft beam).
    """
    design = SensorDesign(soft_thickness=0.2e-3, soft_width=2.5e-3)
    return design
