"""Tag power budget (paper sections 1, 4.3: < 1 uW in 65 nm).

WiForce's tag spends energy only on two CMOS clock generators and the
capacitive gate drive of two RF switches — there is no ADC, no
microcontroller and no radio.  This module computes that budget from
first principles (CV^2 f switching energy + leakage) and provides the
comparison point for the digital-backscatter baseline
(:mod:`repro.baselines.digital_backscatter`), which must digitize,
buffer and modulate the same information.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerBudget:
    """Itemised power budget [W].

    Attributes:
        clock_generation: Oscillator + divider power [W].
        switch_drive: Gate-drive power of the RF switches [W].
        leakage: Standby leakage [W].
    """

    clock_generation: float
    switch_drive: float
    leakage: float

    @property
    def total(self) -> float:
        """Total power [W]."""
        return self.clock_generation + self.switch_drive + self.leakage

    @property
    def total_uw(self) -> float:
        """Total power [uW]."""
        return self.total * 1e6


def cmos_switching_power(capacitance: float, voltage: float,
                         frequency: float) -> float:
    """Dynamic CMOS switching power ``C V^2 f`` [W]."""
    if capacitance < 0.0 or frequency < 0.0:
        raise ConfigurationError("capacitance and frequency must be >= 0")
    return capacitance * voltage * voltage * frequency


def wiforce_power_budget(clock_frequency: float = 2e3,
                         supply_voltage: float = 0.6,
                         switch_gate_capacitance: float = 10e-12,
                         oscillator_nodes: int = 40,
                         node_capacitance: float = 2e-15,
                         leakage: float = 50e-9) -> PowerBudget:
    """Budget for the paper's tag in a 65 nm node.

    Defaults model a relaxation oscillator plus ripple divider
    (~``oscillator_nodes`` toggling nodes at the 2 kHz clock rate) and
    two reflective RF switches with ~10 pF control inputs, at a 0.6 V
    near-threshold supply.  The result lands well under 1 uW, matching
    the paper's TSMC 65 nm flip-chip estimate.

    Args:
        clock_frequency: Fastest switch clock [Hz] (the 2 kHz clock).
        supply_voltage: Core supply [V].
        switch_gate_capacitance: Control capacitance per switch [F].
        oscillator_nodes: Equivalent toggling nodes in the clock chain.
        node_capacitance: Capacitance per logic node [F].
        leakage: Standby leakage [W].
    """
    if supply_voltage <= 0.0:
        raise ConfigurationError(
            f"supply voltage must be positive, got {supply_voltage}"
        )
    if leakage < 0.0:
        raise ConfigurationError(f"leakage must be >= 0, got {leakage}")
    clock = cmos_switching_power(
        oscillator_nodes * node_capacitance, supply_voltage, clock_frequency)
    # Two switches: one toggles at f, the other at f/2; each toggle
    # charges and discharges the gate (factor 2 transitions per cycle).
    drive = cmos_switching_power(
        switch_gate_capacitance, supply_voltage,
        clock_frequency) + cmos_switching_power(
        switch_gate_capacitance, supply_voltage, clock_frequency / 2.0)
    return PowerBudget(clock_generation=clock, switch_drive=drive,
                       leakage=leakage)
