"""RF energy harvesting budget: can the tag run battery-free?

Paper section 6: "the power requirements are so frugal that it can
achieve the elusive goal of battery-free haptic feedback, by meeting
the power requirements via energy harvesting".  This module computes
that feasibility: incident RF power at the tag from the reader's own
excitation (Friis), a realistic rectifier efficiency curve versus input
power, and the break-even range where harvested power covers the tag's
budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.propagation import free_space_path_gain
from repro.errors import ConfigurationError
from repro.sensor.power import PowerBudget
from repro.units import dbm_to_watts, watts_to_dbm


@dataclass(frozen=True)
class Rectifier:
    """RF-to-DC rectifier with a power-dependent efficiency curve.

    Efficiency rises from near zero below the diode turn-on region to a
    peak at moderate input power — the standard RF-harvester shape.

    Attributes:
        peak_efficiency: Best-case conversion efficiency (0-1).
        half_efficiency_dbm: Input power [dBm] at half the peak.
        slope_db: Width of the turn-on transition [dB].
    """

    peak_efficiency: float = 0.45
    half_efficiency_dbm: float = -12.0
    slope_db: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 < self.peak_efficiency <= 1.0:
            raise ConfigurationError(
                f"peak efficiency must be in (0, 1], got "
                f"{self.peak_efficiency}"
            )
        if self.slope_db <= 0.0:
            raise ConfigurationError(
                f"slope must be positive dB, got {self.slope_db}"
            )

    def efficiency(self, input_power: float) -> float:
        """Conversion efficiency at ``input_power`` [W]."""
        if input_power < 0.0:
            raise ConfigurationError(
                f"input power must be >= 0, got {input_power}"
            )
        if input_power == 0.0:
            return 0.0
        input_dbm = watts_to_dbm(input_power)
        logistic = 1.0 / (1.0 + np.exp(
            -(input_dbm - self.half_efficiency_dbm) / (self.slope_db / 2.0)))
        return float(self.peak_efficiency * logistic)

    def harvested_power(self, input_power: float) -> float:
        """DC output power [W] for an RF input power [W]."""
        return input_power * self.efficiency(input_power)


@dataclass(frozen=True)
class HarvestingReport:
    """Harvesting feasibility at one deployment geometry.

    Attributes:
        incident_power: RF power captured by the tag antenna [W].
        harvested_power: DC power after rectification [W].
        tag_power: The tag's consumption [W].
    """

    incident_power: float
    harvested_power: float
    tag_power: float

    @property
    def margin(self) -> float:
        """Harvested-over-consumed ratio (>1 = battery-free feasible)."""
        if self.tag_power <= 0.0:
            return float("inf")
        return self.harvested_power / self.tag_power

    @property
    def feasible(self) -> bool:
        """Whether harvesting covers the tag's budget."""
        return self.margin >= 1.0


class EnergyHarvester:
    """Friis-fed rectifier powering the tag.

    Args:
        rectifier: The RF-to-DC converter.
        tag_antenna_gain_dbi: Tag antenna gain [dBi].
    """

    def __init__(self, rectifier: Rectifier = Rectifier(),
                 tag_antenna_gain_dbi: float = 2.0):
        self.rectifier = rectifier
        self.tag_antenna_gain_dbi = float(tag_antenna_gain_dbi)

    def incident_power(self, tx_power_dbm: float, tx_gain_dbi: float,
                       distance: float, frequency: float) -> float:
        """RF power [W] captured by the tag antenna."""
        gain = free_space_path_gain(frequency, distance, tx_gain_dbi,
                                    self.tag_antenna_gain_dbi)
        return dbm_to_watts(tx_power_dbm) * float(np.abs(gain)) ** 2

    def report(self, budget: PowerBudget, tx_power_dbm: float,
               tx_gain_dbi: float, distance: float,
               frequency: float) -> HarvestingReport:
        """Feasibility report for one geometry + tag budget."""
        incident = self.incident_power(tx_power_dbm, tx_gain_dbi,
                                       distance, frequency)
        return HarvestingReport(
            incident_power=incident,
            harvested_power=self.rectifier.harvested_power(incident),
            tag_power=budget.total,
        )

    def break_even_range(self, budget: PowerBudget, tx_power_dbm: float,
                         tx_gain_dbi: float, frequency: float,
                         max_range: float = 50.0) -> float:
        """Largest distance [m] at which harvesting still powers the tag.

        Bisection on the monotone harvested-power-vs-distance relation.

        Raises:
            ConfigurationError: Harvesting fails even at 10 cm.
        """
        if max_range <= 0.1:
            raise ConfigurationError(
                f"max range must exceed 0.1 m, got {max_range}"
            )
        near = self.report(budget, tx_power_dbm, tx_gain_dbi, 0.1,
                           frequency)
        if not near.feasible:
            raise ConfigurationError(
                "harvesting infeasible even at 0.1 m; raise TX power or "
                "rectifier efficiency"
            )
        if self.report(budget, tx_power_dbm, tx_gain_dbi, max_range,
                       frequency).feasible:
            return max_range
        low, high = 0.1, max_range
        for _ in range(60):
            mid = 0.5 * (low + high)
            if self.report(budget, tx_power_dbm, tx_gain_dbi, mid,
                           frequency).feasible:
                low = mid
            else:
                high = mid
        return low
