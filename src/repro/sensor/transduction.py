"""Force-to-phase transduction: mechanics composed with RF.

The chain of paper section 3.1: a (force, location) press moves the
shorting points via the contact solver, the shorted line changes its
reflection at both ports, and the *differential* phase between touched
and untouched states is the wireless observable.  This module owns that
chain and is shared by the VNA calibration path and the wireless tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SensorError
from repro.mechanics.contact import ContactMap, ContactPatch
from repro.rf.elements import line_twoport, shorted_sensor_twoport
from repro.rf.twoport import TwoPort
from repro.sensor.geometry import SensorDesign


@dataclass(frozen=True)
class PortPhases:
    """Differential phases observed at the two sensor ports.

    Attributes:
        port1: Touched-minus-untouched reflection phase at port 1 [rad].
        port2: Same for port 2 [rad].
        in_contact: Whether the press actually shorted the line.
    """

    port1: float
    port2: float
    in_contact: bool

    def as_degrees(self) -> Tuple[float, float]:
        """Both phases in degrees."""
        return float(np.degrees(self.port1)), float(np.degrees(self.port2))


class ForceTransducer:
    """Maps (force, location) presses to shorting points and phases.

    Uses a :class:`ContactMap` for fast repeated evaluation; the map is
    built once from the design's FD contact solver.

    Args:
        design: The sensor design.
        max_force: Largest force the map tabulates [N].
        force_points / location_points: Map resolution.
    """

    def __init__(self, design: SensorDesign, max_force: float = 10.0,
                 force_points: int = 40, location_points: int = 49):
        self._design = design
        self._solver = design.contact_solver()
        self._map = ContactMap(
            self._solver,
            max_force=max_force,
            force_points=force_points,
            location_points=location_points,
        )

    @property
    def design(self) -> SensorDesign:
        """The sensor design being transduced."""
        return self._design

    def cache_spec(self) -> dict:
        """Key material identifying this transducer's full response.

        The design dataclass carries every RF parameter (line geometry,
        switch, contact resistance) and the map spec pins the sampled
        mechanics, so two transducers with equal specs transduce
        identically — which is what lets downstream calibration
        artifacts be content-addressed by it.
        """
        return {"design": self._design, "map": self._map.cache_spec()}

    @property
    def max_force(self) -> float:
        """Largest force the transducer is tabulated for [N]."""
        return self._map.max_force

    def contact(self, force: float, location: float) -> ContactPatch:
        """Interpolated contact patch for a press."""
        return self._map.edges(force, location)

    def shorting_points(self, force: float,
                        location: float) -> Optional[Tuple[float, float]]:
        """(p1, p2) shorting positions [m], or ``None`` if no contact."""
        patch = self.contact(force, location)
        if not patch.in_contact:
            return None
        return patch.left, patch.right

    def touched_twoport(self, frequency: np.ndarray, force: float,
                        location: float) -> TwoPort:
        """Exact sensor two-port under a press."""
        return shorted_sensor_twoport(
            self._design.line,
            frequency,
            self.shorting_points(force, location),
            contact_resistance=self._design.contact_resistance,
        )

    def untouched_twoport(self, frequency: np.ndarray) -> TwoPort:
        """Exact sensor two-port with no force applied."""
        return line_twoport(self._design.line, frequency)

    def port_reflections(self, frequency: np.ndarray, force: float,
                         location: float) -> Tuple[np.ndarray, np.ndarray]:
        """(Gamma_port1, Gamma_port2) with the far switch off-reflective.

        Each port sees the sensor line terminated at the opposite end by
        the other switch's off-state reflection — the single-switch-on
        condition the clocking scheme guarantees.
        """
        frequency = np.asarray(frequency, dtype=float)
        off = self._design.switch.off_reflection
        network = self.touched_twoport(frequency, force, location)
        gamma1 = network.terminated_reflection(off)
        gamma2 = network.flipped().terminated_reflection(off)
        return gamma1, gamma2

    def differential_phases(self, frequency: float, force: float,
                            location: float) -> PortPhases:
        """Touched-minus-untouched phases at both ports (radians).

        This is the quantity the wireless reader estimates via the
        conjugate-multiply of consecutive phase groups (section 3.3),
        and the quantity the VNA measures directly during calibration.
        """
        if force < 0.0:
            raise SensorError(f"force must be non-negative, got {force}")
        grid = np.array([float(frequency)])
        off = self._design.switch.off_reflection
        untouched = self.untouched_twoport(grid)
        base1 = untouched.terminated_reflection(off)[0]
        base2 = untouched.flipped().terminated_reflection(off)[0]
        points = self.shorting_points(force, location)
        if points is None:
            return PortPhases(0.0, 0.0, False)
        gamma1, gamma2 = self.port_reflections(grid, force, location)
        phase1 = float(np.angle(gamma1[0] * np.conj(base1)))
        phase2 = float(np.angle(gamma2[0] * np.conj(base2)))
        return PortPhases(phase1, phase2, True)
