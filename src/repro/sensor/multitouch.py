"""Multi-touch: why two simultaneous presses are fundamentally hard.

The paper defers simultaneous touch points to future work (section 7).
This module makes the difficulty precise instead of hand-waving it:

With two presses, the line shorts in two disjoint regions.  RF-wise,
port 1's reflection collapses onto the *first* shorting edge it meets
and port 2's onto the *last* — the interior edges are electrically
shadowed.  Two presses therefore produce exactly two phases, the same
dimensionality as a single press.  The helpers here compute the
two-press observable and quantify what a single-press reader makes of
it; measured on the prototype model, the answer is a gradient:

* **Close presses** (separation comparable to a hard press's contact
  spread, ≲ 15 mm) fit a single-press hypothesis within the noise
  floor — genuinely ambiguous, read as one too-strong press between
  the two contacts.
* **Far presses** imply an edge spread no single press within the
  force range can produce; the fit residual grows with separation
  (≈ 22° at 30 mm apart), so the reader can at least *detect* "this is
  not a single press" and refuse the reading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.errors import SensorError

if TYPE_CHECKING:  # imported lazily at runtime (layer above sensor)
    from repro.core.estimator import ForceLocationEstimator
from repro.rf.elements import shorted_sensor_twoport
from repro.sensor.tag import WiForceTag


@dataclass(frozen=True)
class TwoPressState:
    """Two simultaneous presses on one strip.

    Attributes:
        force_a / location_a: First press [N] / [m].
        force_b / location_b: Second press [N] / [m] (to the right).
    """

    force_a: float
    location_a: float
    force_b: float
    location_b: float

    def __post_init__(self) -> None:
        if self.force_a <= 0.0 or self.force_b <= 0.0:
            raise SensorError("both presses need positive force")
        if self.location_b <= self.location_a:
            raise SensorError(
                "press b must sit to the right of press a"
            )


def effective_shorting_points(tag: WiForceTag,
                              state: TwoPressState
                              ) -> Optional[Tuple[float, float]]:
    """The electrically visible shorting edges of two presses.

    Port 1 sees press a's left edge; port 2 sees press b's right edge.
    Returns ``None`` if neither press makes contact.
    """
    transducer = tag.transducer
    patch_a = transducer.contact(state.force_a, state.location_a)
    patch_b = transducer.contact(state.force_b, state.location_b)
    if not patch_a.in_contact and not patch_b.in_contact:
        return None
    if not patch_a.in_contact:
        return patch_b.left, patch_b.right
    if not patch_b.in_contact:
        return patch_a.left, patch_a.right
    return patch_a.left, patch_b.right


def two_press_phases(tag: WiForceTag, frequency: float,
                     state: TwoPressState) -> Tuple[float, float]:
    """Wireless-observable differential phases of two presses.

    Uses the outermost shorting edges (the interior is shadowed) and
    the same harmonic-domain observable as a single press.
    """
    points = effective_shorting_points(tag, state)
    if points is None:
        return 0.0, 0.0
    grid = np.array([float(frequency)])
    design = tag.transducer.design
    switch = design.switch
    through = switch.through_gain
    branch_off = switch.branch_off_reflection

    def harmonic_vectors(shorting):
        network = shorted_sensor_twoport(
            design.line, grid, shorting,
            contact_resistance=design.contact_resistance)
        gamma1 = through ** 2 * network.terminated_reflection(
            switch.off_reflection)
        gamma2 = through ** 2 * network.flipped().terminated_reflection(
            switch.off_reflection)
        # The on-minus-off difference vector at each readout tone.
        return (0.5 * (gamma1[0] - branch_off),
                0.5 * (gamma2[0] - branch_off))

    untouched1, untouched2 = harmonic_vectors(None)
    touched1, touched2 = harmonic_vectors(points)
    phi1 = float(np.angle(touched1 * np.conj(untouched1)))
    phi2 = float(np.angle(touched2 * np.conj(untouched2)))
    return phi1, phi2


@dataclass(frozen=True)
class AmbiguityReport:
    """How a single-press estimator misreads two presses.

    Attributes:
        residual_deg: Best single-press fit residual [deg] (small =
            the observation is consistent with a single press, i.e.
            genuinely ambiguous rather than detectably wrong).
        inferred_force: The single-press force the estimator reports [N].
        inferred_location: Its location [m].
        total_true_force: F_a + F_b [N].
        force_misattribution: |inferred - total| / total.
    """

    residual_deg: float
    inferred_force: float
    inferred_location: float
    total_true_force: float

    @property
    def force_misattribution(self) -> float:
        """Relative error of reading the pair as one press."""
        if self.total_true_force <= 0.0:
            return float("inf")
        return abs(self.inferred_force
                   - self.total_true_force) / self.total_true_force

    @property
    def looks_like_single_press(self) -> bool:
        """True when the fit residual is within normal noise levels."""
        return self.residual_deg < 3.0


def ambiguity_report(tag: WiForceTag, estimator: "ForceLocationEstimator",
                     frequency: float,
                     state: TwoPressState) -> AmbiguityReport:
    """Quantify the single-press misreading of a two-press state."""
    phi1, phi2 = two_press_phases(tag, frequency, state)
    estimate = estimator.invert(phi1, phi2)
    return AmbiguityReport(
        residual_deg=float(np.degrees(estimate.residual)),
        inferred_force=estimate.force,
        inferred_location=estimate.location,
        total_true_force=state.force_a + state.force_b,
    )
