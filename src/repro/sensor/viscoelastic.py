"""Hold-time-dependent transduction: creep at the sensor level.

Wraps the contact mechanics with the elastomer's viscoelastic
relaxation (see :mod:`repro.mechanics.viscoelastic`): a held press
keeps spreading the contact region for a fraction of a second, so the
reflected phase creeps before settling — the reason readings are
trusted only after the paper's 0.5-1 s settling window.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.mechanics.materials import Material
from repro.mechanics.viscoelastic import StandardLinearSolid
from repro.sensor.geometry import SensorDesign, default_sensor_design
from repro.sensor.transduction import ForceTransducer


class CreepingTransducer:
    """Force transducer with hold-time-dependent mechanics.

    Builds contact solutions at a handful of relaxation levels and
    interpolates phases between them, so querying arbitrary hold times
    stays cheap.

    Args:
        sls: The elastomer's viscoelastic description.
        design: Sensor design (the soft material's modulus is replaced
            by the SLS's relaxed values).
        relaxation_levels: Modulus sample count across the relaxation.
        force_points / location_points: Contact-map resolution per
            level (kept small; levels multiply the build cost).
    """

    def __init__(self, sls: StandardLinearSolid = StandardLinearSolid(),
                 design: Optional[SensorDesign] = None,
                 relaxation_levels: int = 3,
                 force_points: int = 14, location_points: int = 15):
        if relaxation_levels < 2:
            raise ConfigurationError(
                f"need >= 2 relaxation levels, got {relaxation_levels}"
            )
        self.sls = sls
        base = design or default_sensor_design()
        self._moduli = np.linspace(sls.equilibrium_modulus,
                                   sls.instantaneous_modulus,
                                   relaxation_levels)
        self._transducers = []
        for modulus in self._moduli:
            material = Material(
                name=f"{base.soft_material.name}-relaxed",
                youngs_modulus=float(modulus),
                poisson_ratio=base.soft_material.poisson_ratio,
                density=base.soft_material.density,
            )
            level_design = replace(base, soft_material=material)
            self._transducers.append(ForceTransducer(
                level_design, force_points=force_points,
                location_points=location_points))

    def _bracket(self, modulus: float) -> Tuple[int, float]:
        clipped = float(np.clip(modulus, self._moduli[0], self._moduli[-1]))
        index = int(np.searchsorted(self._moduli, clipped) - 1)
        index = max(0, min(index, self._moduli.size - 2))
        fraction = ((clipped - self._moduli[index])
                    / (self._moduli[index + 1] - self._moduli[index]))
        return index, fraction

    def phases_at_hold(self, frequency: float, force: float,
                       location: float,
                       hold_time: float) -> Tuple[float, float]:
        """Differential port phases [rad] after holding the press.

        Linear interpolation between the bracketing relaxation levels.
        """
        modulus = self.sls.modulus(hold_time)
        index, fraction = self._bracket(modulus)
        low = self._transducers[index].differential_phases(
            frequency, force, location)
        high = self._transducers[index + 1].differential_phases(
            frequency, force, location)
        phi1 = (1.0 - fraction) * low.port1 + fraction * high.port1
        phi2 = (1.0 - fraction) * low.port2 + fraction * high.port2
        return float(phi1), float(phi2)

    def creep_trace(self, frequency: float, force: float, location: float,
                    times: np.ndarray) -> np.ndarray:
        """Port-1 phase [rad] over a hold-time grid."""
        times = np.asarray(times, dtype=float)
        return np.array([
            self.phases_at_hold(frequency, force, location, float(t))[0]
            for t in times
        ])

    def creep_magnitude_deg(self, frequency: float, force: float,
                            location: float) -> float:
        """Total phase creep [deg] from touch onset to equilibrium."""
        onset = self.phases_at_hold(frequency, force, location, 0.0)[0]
        settled = self.phases_at_hold(frequency, force, location,
                                      10.0 * self.sls.relaxation_time)[0]
        return float(np.degrees(abs(settled - onset)))
