"""``@cached_artifact`` — cross-process memoization for pure functions.

The decorator form of :meth:`ArtifactCache.get_or_compute`: it keys on
a versioned sha256 of the function's qualified name plus its
canonicalized arguments, so any process that has ever evaluated the
same call finds the artifact on disk instead of recomputing.

Only use it on functions whose value is fully determined by their
arguments (no hidden state, no RNG).  When an argument is not
key-material by itself — e.g. a :class:`~repro.sensor.tag.WiForceTag`
whose identity lives in its transducer spec — pass ``key=`` to derive
an explicit key dict from the call.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

from repro.cache.store import get_cache


def cached_artifact(namespace: Optional[str] = None, version: int = 1,
                    key: Optional[Callable[..., Any]] = None,
                    encode: Optional[Callable[[Any], Any]] = None,
                    decode: Optional[Callable[[Any], Any]] = None
                    ) -> Callable[[Callable[..., Any]],
                                  Callable[..., Any]]:
    """Memoize a deterministic function through the artifact cache.

    Args:
        namespace: Artifact family; defaults to the function's
            ``module.qualname``.
        version: Artifact version — **bump whenever the function's
            output for the same arguments can change**, which strands
            (never serves) every stale entry.
        key: Optional ``(*args, **kwargs) -> key material`` reducer;
            defaults to the raw argument tuple/dict, which must then be
            canonicalizable by :func:`repro.cache.keys.canonicalize`.
        encode / decode: Stable payload codec (e.g.
            ``SensorModel.to_dict`` / ``from_dict``).  ``decode`` runs
            on every hit, so it should return a fresh object.
    """

    def wrap(function: Callable[..., Any]) -> Callable[..., Any]:
        artifact_namespace = namespace or (
            f"{function.__module__}.{function.__qualname__}")

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            cache = get_cache()
            if not cache.enabled:
                return function(*args, **kwargs)
            key_material = (key(*args, **kwargs) if key is not None
                            else {"args": list(args), "kwargs": kwargs})
            return cache.get_or_compute(
                artifact_namespace, version, key_material,
                lambda: function(*args, **kwargs),
                encode=encode, decode=decode)

        wrapper.__wrapped__ = function
        wrapper.cache_namespace = artifact_namespace
        wrapper.cache_version = version
        return wrapper

    return wrap
