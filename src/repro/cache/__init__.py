"""``repro.cache`` — content-addressed artifact cache + memoization.

Every expensive *deterministic* computation in the stack — the
finite-difference contact solves behind
:class:`~repro.mechanics.contact.ContactMap`, the harmonic calibration
fits behind :func:`~repro.core.calibration.calibrate_harmonic_observable`,
the per-toleranced-unit calibrations in the Monte-Carlo campaigns — is
a pure function of its configuration.  This package memoizes them on
disk, content-addressed by a versioned sha256 of the inputs, so every
process on a machine (CI runs, :class:`CampaignExecutor` workers,
serve replicas) shares one warm artifact store instead of paying the
cold start N times.

Two tiers: a bounded in-memory LRU in front of an atomic-write disk
store.  Operationally:

* ``REPRO_CACHE=0`` — kill switch, bypasses both tiers (bit-identical
  results, just slower).
* ``REPRO_CACHE_DIR`` — relocate the store (default
  ``~/.cache/repro``).
* ``python -m repro cache stats|prune|clear`` — inspect and maintain.

See DESIGN.md ("Artifact cache") for the key schema and invalidation
rules.
"""

from repro.cache.decorator import cached_artifact
from repro.cache.keys import KEY_SCHEMA_VERSION, canonicalize, key_digest
from repro.cache.store import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    FORMAT_VERSION,
    ArtifactCache,
    CacheConfig,
    CacheStats,
    clear,
    config_from_env,
    directory_stats,
    get_cache,
    prune,
    set_cache,
    temporary_cache,
)

__all__ = [
    "ArtifactCache",
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "CacheConfig",
    "CacheStats",
    "FORMAT_VERSION",
    "KEY_SCHEMA_VERSION",
    "cached_artifact",
    "canonicalize",
    "clear",
    "config_from_env",
    "directory_stats",
    "get_cache",
    "key_digest",
    "prune",
    "set_cache",
    "temporary_cache",
]
