"""Two-tier content-addressed artifact store.

Layout on disk::

    <cache_dir>/v<FORMAT_VERSION>/<namespace>/<key-digest>.pkl

Each artifact file is ``MAGIC + sha256(body) + body`` where the body
is the pickled encoded payload — the digest makes truncated or
bit-rotten files detectable, and detection degrades to a recompute,
never an exception.  Writes go to a temp file in the same directory
followed by ``os.replace``, so concurrent
:class:`~repro.experiments.parallel.CampaignExecutor` workers racing
on the same artifact each land a complete file and the last one wins
(they are bit-identical anyway: the key addresses the content).

In front of the disk tier sits a bounded in-memory LRU holding the
*encoded* payloads; the ``decode`` hook runs on every hit so callers
always receive a fresh object they may mutate freely.

All cache activity is recorded twice: on the instance's
:class:`CacheStats` (always on — what ``repro cache stats`` prints for
the live process) and, when observation is enabled, on the shared
:mod:`repro.obs` registry (``cache.*`` counters plus a
``cache.load_seconds`` histogram), so campaign and bench manifests
carry hit rates with zero extra plumbing.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.cache.keys import KEY_SCHEMA_VERSION, key_digest
from repro.errors import CacheError
from repro.faults.inject import armed as fault_armed
from repro.obs.registry import active

#: Kill switch: ``REPRO_CACHE=0`` (or ``false`` / ``no``) bypasses
#: both tiers entirely — every call recomputes, nothing is read or
#: written.
CACHE_ENV = "REPRO_CACHE"

#: Overrides the default on-disk location (``~/.cache/repro``).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: On-disk artifact format version (directory prefix ``v<N>``).  Bump
#: when the file framing or pickle envelope changes incompatibly.
FORMAT_VERSION = 1

#: File magic prefixing every artifact.
_MAGIC = b"repro-artifact-v1\n"

#: Artifact file suffix.
_SUFFIX = ".pkl"

logger = logging.getLogger(__name__)


@dataclass
class CacheStats:
    """Per-process cache activity counters (always recorded)."""

    requests: int = 0
    hits: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (stable key order)."""
        return asdict(self)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from either tier (0 if idle)."""
        return self.hits / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class CacheConfig:
    """Resolved cache configuration (directory + kill switch)."""

    directory: Path
    enabled: bool = True
    memory_entries: int = 128


def _env_truthy_off(raw: str) -> bool:
    """Whether an env value spells "off" (``0`` / ``false`` / ``no``)."""
    return raw.strip().lower() in ("0", "false", "no")


def config_from_env(environ: Optional[dict] = None) -> CacheConfig:
    """Resolve the cache configuration from the environment.

    ``REPRO_CACHE_DIR`` picks the directory (default
    ``~/.cache/repro``); ``REPRO_CACHE=0`` disables both tiers.
    """
    env = os.environ if environ is None else environ
    raw_dir = env.get(CACHE_DIR_ENV, "").strip()
    directory = Path(raw_dir) if raw_dir else (
        Path.home() / ".cache" / "repro")
    raw_switch = env.get(CACHE_ENV, "")
    return CacheConfig(directory=directory,
                       enabled=not _env_truthy_off(raw_switch))


class ArtifactCache:
    """Content-addressed artifact cache: memory LRU over a disk tier.

    Args:
        directory: Root of the on-disk tier (created lazily).
        enabled: When False, :meth:`get_or_compute` always recomputes.
        memory_entries: Bound on the in-memory LRU (encoded payloads).
    """

    def __init__(self, directory, enabled: bool = True,
                 memory_entries: int = 128):
        if memory_entries < 0:
            raise CacheError(
                f"memory_entries must be >= 0, got {memory_entries}")
        self.directory = Path(directory)
        self.enabled = bool(enabled)
        self.memory_entries = int(memory_entries)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()

    # -- public API -----------------------------------------------------

    def get_or_compute(self, namespace: str, version: int, key: Any,
                       compute: Callable[[], Any],
                       encode: Optional[Callable[[Any], Any]] = None,
                       decode: Optional[Callable[[Any], Any]] = None
                       ) -> Any:
        """The cache's one verb: load the artifact or compute-and-store.

        Args:
            namespace: Dotted artifact family (one directory on disk),
                e.g. ``"mechanics.contact_tables"``.
            version: Caller-owned artifact version; bump it whenever
                the computation's semantics change so stale entries
                can never be served.
            key: Everything the computation depends on, in the
                vocabulary :func:`repro.cache.keys.canonicalize`
                accepts.
            compute: Zero-argument callable producing the value.
            encode: Value -> stable payload (e.g.
                ``SensorModel.to_dict``).  Defaults to identity.
            decode: Payload -> fresh value (e.g.
                ``SensorModel.from_dict``).  Runs on **every** hit, so
                a decode that copies makes cached artifacts immune to
                caller mutation.  Defaults to identity.
        """
        if not self.enabled:
            return compute()
        digest = key_digest(namespace, version, key)
        start = time.perf_counter()
        payload, tier = self._load(namespace, digest)
        obs = active()
        self.stats.requests += 1
        if obs is not None:
            obs.counter("cache.requests").increment()
        if tier is not None:
            elapsed = time.perf_counter() - start
            self.stats.hits += 1
            if tier == "memory":
                self.stats.memory_hits += 1
            else:
                self.stats.disk_hits += 1
            if obs is not None:
                obs.counter("cache.hits").increment()
                obs.counter(f"cache.{tier}_hits").increment()
                obs.histogram("cache.load_seconds").observe(elapsed)
            return decode(payload) if decode is not None else payload
        self.stats.misses += 1
        if obs is not None:
            obs.counter("cache.misses").increment()
        value = compute()
        payload = encode(value) if encode is not None else value
        self._store(namespace, digest, payload)
        return decode(payload) if decode is not None else value

    def contains(self, namespace: str, version: int, key: Any) -> bool:
        """Whether the artifact exists in either tier (no decode)."""
        if not self.enabled:
            return False
        digest = key_digest(namespace, version, key)
        return (digest in self._memory
                or self._artifact_path(namespace, digest).exists())

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier is untouched)."""
        self._memory.clear()

    # -- memory tier ----------------------------------------------------

    def _memory_get(self, digest: str) -> Tuple[Any, bool]:
        if digest not in self._memory:
            return None, False
        self._memory.move_to_end(digest)
        return self._memory[digest], True

    def _memory_put(self, digest: str, payload: Any) -> None:
        if self.memory_entries == 0:
            return
        self._memory[digest] = payload
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # -- disk tier ------------------------------------------------------

    def _artifact_path(self, namespace: str, digest: str) -> Path:
        return (self.directory / f"v{FORMAT_VERSION}" / namespace
                / f"{digest}{_SUFFIX}")

    def _load(self, namespace: str, digest: str
              ) -> Tuple[Any, Optional[str]]:
        """(payload, tier) from memory or disk; (None, None) on miss."""
        payload, found = self._memory_get(digest)
        if found:
            return payload, "memory"
        path = self._artifact_path(namespace, digest)
        try:
            raw = path.read_bytes()
        except OSError:
            return None, None
        inj = fault_armed()
        if inj is not None and raw:
            fault = inj.draw("cache.store")
            if fault is not None:
                # Bit-rot injection: flip one byte of the artifact so
                # the integrity check below must catch it and the read
                # degrades to a recompute.
                index = int(fault.rng().integers(len(raw)))
                raw = (raw[:index] + bytes([raw[index] ^ 0xFF])
                       + raw[index + 1:])
        payload, ok = _decode_file(raw)
        if not ok:
            # Truncated or corrupt artifact: count it, drop the file so
            # the rewrite below is clean, and recompute.
            self.stats.errors += 1
            obs = active()
            if obs is not None:
                obs.counter("cache.errors").increment()
            logger.warning("discarding corrupt cache artifact %s", path)
            try:
                path.unlink()
            except OSError:
                pass
            return None, None
        self.stats.bytes_read += len(raw)
        obs = active()
        if obs is not None:
            obs.counter("cache.bytes_read").increment(len(raw))
        self._memory_put(digest, payload)
        return payload, "disk"

    def _store(self, namespace: str, digest: str, payload: Any) -> None:
        """Atomic write-through: temp file + ``os.replace``."""
        self._memory_put(digest, payload)
        path = self._artifact_path(namespace, digest)
        start = time.perf_counter()
        try:
            body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.stats.errors += 1
            logger.warning("cache payload for %s/%s is not picklable; "
                           "kept in memory only", namespace, digest[:12])
            return
        raw = _MAGIC + _body_digest(body) + body
        temp = path.with_name(f".tmp-{os.getpid()}-{uuid.uuid4().hex}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp.write_bytes(raw)
            os.replace(temp, path)
        except OSError as exc:
            # An unwritable disk degrades the cache to memory-only.
            self.stats.errors += 1
            obs = active()
            if obs is not None:
                obs.counter("cache.errors").increment()
            logger.warning("could not persist cache artifact %s: %s",
                           path, exc)
            try:
                temp.unlink()
            except OSError:
                pass
            return
        self.stats.writes += 1
        self.stats.bytes_written += len(raw)
        obs = active()
        if obs is not None:
            obs.counter("cache.writes").increment()
            obs.counter("cache.bytes_written").increment(len(raw))
            obs.histogram("cache.store_seconds").observe(
                time.perf_counter() - start)


def _body_digest(body: bytes) -> bytes:
    """Integrity line for an artifact body: 64 hex chars + newline."""
    return hashlib.sha256(body).hexdigest().encode() + b"\n"


def _decode_file(raw: bytes) -> Tuple[Any, bool]:
    """(payload, ok) from an artifact file's bytes."""
    if not raw.startswith(_MAGIC):
        return None, False
    rest = raw[len(_MAGIC):]
    if len(rest) < 65 or rest[64:65] != b"\n":
        return None, False
    digest, body = rest[:65], rest[65:]
    if _body_digest(body) != digest:
        return None, False
    try:
        return pickle.loads(body), True
    except Exception:
        return None, False


# -- directory maintenance (CLI backend) --------------------------------


def directory_stats(directory) -> dict:
    """Entry counts and byte totals per namespace under ``directory``."""
    directory = Path(directory)
    namespaces: Dict[str, Dict[str, int]] = {}
    total_entries = 0
    total_bytes = 0
    if directory.exists():
        for path in sorted(directory.glob(f"v*/*/*{_SUFFIX}")):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            entry = namespaces.setdefault(path.parent.name,
                                          {"entries": 0, "bytes": 0})
            entry["entries"] += 1
            entry["bytes"] += size
            total_entries += 1
            total_bytes += size
    return {
        "directory": str(directory),
        "format_version": FORMAT_VERSION,
        "key_schema_version": KEY_SCHEMA_VERSION,
        "namespaces": namespaces,
        "total_entries": total_entries,
        "total_bytes": total_bytes,
    }


def prune(directory, max_age_days: Optional[float] = None,
          max_bytes: Optional[int] = None) -> dict:
    """Delete stale artifacts; returns what was removed.

    ``max_age_days`` removes artifacts older than the horizon;
    ``max_bytes`` then evicts oldest-first until the directory fits.
    Also reaps artifacts from older on-disk format versions (their
    directory prefix no longer matches ``v<FORMAT_VERSION>``) and any
    orphaned temp files.
    """
    directory = Path(directory)
    removed = 0
    removed_bytes = 0

    def _unlink(path: Path) -> None:
        nonlocal removed, removed_bytes
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return
        removed += 1
        removed_bytes += size

    if not directory.exists():
        return {"removed": 0, "removed_bytes": 0}
    for path in directory.glob("v*/*/.tmp-*"):
        _unlink(path)
    for path in directory.glob(f"v*/*/*{_SUFFIX}"):
        if path.parts[-3] != f"v{FORMAT_VERSION}":
            _unlink(path)
    survivors = []
    now = time.time()
    for path in directory.glob(
            f"v{FORMAT_VERSION}/*/*{_SUFFIX}"):
        try:
            stat = path.stat()
        except OSError:
            continue
        if (max_age_days is not None
                and now - stat.st_mtime > max_age_days * 86400.0):
            _unlink(path)
            continue
        survivors.append((stat.st_mtime, stat.st_size, path))
    if max_bytes is not None:
        survivors.sort()  # oldest first
        kept_bytes = sum(size for _, size, _ in survivors)
        for _, size, path in survivors:
            if kept_bytes <= max_bytes:
                break
            _unlink(path)
            kept_bytes -= size
    return {"removed": removed, "removed_bytes": removed_bytes}


def clear(directory) -> dict:
    """Delete every artifact under ``directory`` (all versions)."""
    return prune(directory, max_age_days=-1.0)


# -- the process-wide default cache -------------------------------------


_cache: Optional[ArtifactCache] = None
_cache_config: Optional[CacheConfig] = None
_explicit = False


def get_cache() -> ArtifactCache:
    """The process-wide cache, configured from the environment.

    Re-reads ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` on every call (two
    dict lookups) so tests and operators can flip the kill switch or
    redirect the directory without touching module state; an explicit
    :func:`set_cache` override wins until cleared.
    """
    global _cache, _cache_config
    if _explicit and _cache is not None:
        return _cache
    config = config_from_env()
    if _cache is None or config != _cache_config:
        _cache = ArtifactCache(config.directory, enabled=config.enabled,
                               memory_entries=config.memory_entries)
        _cache_config = config
    return _cache


def set_cache(cache: Optional[ArtifactCache]) -> Optional[ArtifactCache]:
    """Install an explicit default cache (``None`` reverts to env).

    Returns the previous explicit cache, if any.
    """
    global _cache, _cache_config, _explicit
    previous = _cache if _explicit else None
    _cache = cache
    _cache_config = None
    _explicit = cache is not None
    return previous


@contextmanager
def temporary_cache(directory, enabled: bool = True,
                    memory_entries: int = 128
                    ) -> Iterator[ArtifactCache]:
    """Scope a fresh cache as the process default (tests, benches)."""
    cache = ArtifactCache(directory, enabled=enabled,
                          memory_entries=memory_entries)
    previous = set_cache(cache)
    try:
        yield cache
    finally:
        set_cache(previous)
