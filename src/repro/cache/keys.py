"""Versioned, content-addressed cache keys.

An artifact key must satisfy two properties the plain ``repr`` of a
Python argument list cannot guarantee:

* **Stability** — the same logical inputs hash identically across
  processes, interpreter versions and dict orderings, so a campaign
  worker finds the artifact another worker wrote.
* **Sensitivity** — any input that can change the computed value must
  change the key.  Floats are keyed by their exact bit pattern
  (``float.hex``), arrays by a digest of their raw buffer, dataclasses
  by type name plus every field.

The canonical form is a JSON-ready structure; :func:`key_digest`
hashes its sorted-keys JSON encoding with sha256.  Unknown object
types are a hard :class:`~repro.errors.CacheError` — a cache that
guessed at keys would silently serve wrong artifacts.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import CacheError

#: Version of the canonicalization scheme itself.  Bumping it orphans
#: every existing artifact (their digests change), which is exactly
#: what a change to the rules below requires.
KEY_SCHEMA_VERSION = 1


def _canonical_float(value: float) -> Any:
    """Exact, JSON-safe float encoding (hex preserves every bit)."""
    if math.isnan(value):
        return {"__float__": "nan"}
    if math.isinf(value):
        return {"__float__": "inf" if value > 0 else "-inf"}
    return {"__float__": value.hex()}


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a deterministic JSON-ready structure.

    Handles the argument vocabulary of the simulation stack: scalars,
    strings, numpy arrays and scalars, (frozen) dataclasses such as
    :class:`~repro.sensor.geometry.SensorDesign`, enums, mappings and
    sequences, paths, and complex numbers.  Raises
    :class:`CacheError` for anything else.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return _canonical_float(value)
    if isinstance(value, complex):
        return {"__complex__": [_canonical_float(value.real),
                                _canonical_float(value.imag)]}
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return {"__ndarray__": {
            "dtype": str(data.dtype),
            "shape": list(data.shape),
            "sha256": hashlib.sha256(data.tobytes()).hexdigest(),
        }}
    if isinstance(value, np.generic):
        return canonicalize(value.item())
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {"__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
                "fields": {field.name: canonicalize(getattr(value,
                                                            field.name))
                           for field in dataclasses.fields(value)}}
    if isinstance(value, dict):
        items = []
        for key, entry in value.items():
            if not isinstance(key, str):
                raise CacheError(
                    f"cache-key dict keys must be strings, got "
                    f"{type(key).__name__}"
                )
            items.append([key, canonicalize(entry)])
        items.sort(key=lambda item: item[0])
        return {"__dict__": items}
    if isinstance(value, (list, tuple)):
        return [canonicalize(entry) for entry in value]
    if isinstance(value, (set, frozenset)):
        encoded = [json.dumps(canonicalize(entry), sort_keys=True)
                   for entry in value]
        return {"__set__": sorted(encoded)}
    if isinstance(value, bytes):
        return {"__bytes__": hashlib.sha256(value).hexdigest()}
    if isinstance(value, Path):
        return {"__path__": str(value)}
    raise CacheError(
        f"cannot canonicalize {type(value).__name__} into a cache key; "
        f"pass primitives, arrays, or dataclasses (or derive an "
        f"explicit key dict from the object)"
    )


def key_digest(namespace: str, version: int, key: Any) -> str:
    """sha256 hex digest of a fully-qualified artifact key.

    The digest covers the key-schema version, the artifact namespace,
    the caller's artifact version, and the canonicalized key payload —
    bumping any of them addresses a fresh artifact and strands the
    stale one (reclaimed by ``repro cache prune``).
    """
    if not namespace:
        raise CacheError("artifact namespace must be non-empty")
    envelope = {
        "key_schema": KEY_SCHEMA_VERSION,
        "namespace": namespace,
        "version": int(version),
        "key": canonicalize(key),
    }
    canonical = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
