"""Parallel campaign execution across worker processes.

The evaluation campaigns are embarrassingly parallel: every trial
builds its own scenario from an explicit per-trial seed, so execution
order and placement cannot change the numbers.  :class:`CampaignExecutor`
exploits that — it shards a trial list across a
``concurrent.futures.ProcessPoolExecutor`` and guarantees the results
are bit-for-bit what a serial loop would produce.

Rules for trial functions:

* They must be **module-level** callables (picklable by reference),
  with picklable positional arguments.
* All randomness must derive from the trial's own arguments (e.g.
  ``np.random.default_rng(seed + trial)``) — never from shared state.

Worker count resolution: an explicit ``workers`` argument wins,
otherwise the ``REPRO_WORKERS`` environment variable, otherwise 1
(serial).  ``REPRO_WORKERS=0`` is the operational kill switch — it
disables parallelism and forces the serial path.  Serial execution is
also the graceful fallback whenever a process pool cannot be used
(unpicklable work, sandboxed interpreter, broken pool).

A trial that raises is a *campaign* failure, not an infrastructure
failure: the exception is wrapped as
:class:`repro.errors.CampaignTrialError` naming the failing trial
index, and propagates identically from the sharded and serial paths
(it is never swallowed by the serial fallback).

A worker that *dies* (SIGKILL, OOM) is an infrastructure failure: the
pool is respawned and the incomplete trials are resubmitted — the
re-shard is deterministic (trials are keyed by index, and every trial
seeds its own randomness), so the completed campaign is bit-identical
to an undisturbed run.  ``campaign.worker_respawns`` counts the
respawns; after ``max_respawns`` pool rebuilds the run degrades to the
serial path like any other broken pool.
"""

from __future__ import annotations

import logging
import os
import pickle
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CampaignTrialError, ConfigurationError
from repro.faults.inject import armed as fault_armed
from repro.obs import trace
from repro.obs.instruments import MemorySink
from repro.obs.recorder import flight_recorder
from repro.obs.registry import active, is_enabled, maybe_span, observed

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV = "REPRO_WORKERS"

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class CampaignExecution:
    """One campaign run: ordered results plus execution telemetry.

    Attributes:
        results: Per-trial return values, in submission order.
        mode: ``"parallel"`` or ``"serial"`` (how it actually ran).
        workers: Worker processes used (1 for serial).
        wall_seconds: End-to-end wall-clock time.
        trial_seconds: Per-trial execution time, in submission order.
        fallback_reason: Why a requested parallel run fell back to
            serial (empty when it did not).
    """

    results: List[Any]
    mode: str
    workers: int
    wall_seconds: float
    trial_seconds: Tuple[float, ...]
    fallback_reason: str = ""

    def summary(self) -> str:
        """One-line progress/timing summary for logs."""
        trials = len(self.results)
        mean = (sum(self.trial_seconds) / trials) if trials else 0.0
        line = (f"{trials} trials in {self.wall_seconds:.2f} s "
                f"({self.mode}, {self.workers} worker"
                f"{'s' if self.workers != 1 else ''}, "
                f"mean trial {mean:.2f} s)")
        if self.fallback_reason:
            line += f" [fell back to serial: {self.fallback_reason}]"
        return line


#: One unit of campaign work: (index, trial, arguments, attempt,
#: in_worker, traceparent).  ``attempt`` counts pool respawns (crash
#: faults only fire on attempt 0, so a respawned shard completes);
#: ``in_worker`` is True only on the process-pool path — the serial
#: loop must never SIGKILL the main process.  ``traceparent`` carries
#: the campaign span's trace context across the process boundary
#: (empty when tracing is off).
_Payload = Tuple[int, Callable[..., Any], Sequence[Any], int, bool, str]

#: What one trial sends back: (result, seconds, worker telemetry).
#: The third slot is ``None`` except on the in-worker path with
#: observation enabled, where it carries the worker registry snapshot
#: and its span events for the parent to merge.
_TrialReturn = Tuple[Any, float, Optional[dict]]


def _run_trial(index: int, trial: Callable[..., Any],
               arguments: Sequence[Any],
               traceparent: str) -> Tuple[Any, float]:
    """The measured trial call, wrapped in a ``campaign.trial`` span.

    The span parents onto the traceparent shipped in the payload, so
    worker-process spans stitch into the parent's ``campaign.run``
    trace; with an empty/invalid traceparent it falls back to the
    ambient context (the serial path) or a fresh root.
    """
    parent = trace.parse_traceparent(traceparent) if traceparent else None
    start = time.perf_counter()
    with maybe_span("campaign.trial", {"trial": index}, parent=parent):
        try:
            result = trial(*arguments)
        except Exception as exc:
            name = getattr(trial, "__qualname__", repr(trial))
            raise CampaignTrialError(
                f"campaign trial {index} ({name}) raised "
                f"{type(exc).__name__}: {exc}"
            ) from exc
    return result, time.perf_counter() - start


def _timed_call(payload: _Payload) -> _TrialReturn:
    """Run one trial and measure it (module-level, so it pickles).

    A raising trial is re-raised as :class:`CampaignTrialError` naming
    the trial, so a failure deep inside a 4-process shard reads the
    same as one from a plain serial loop.

    When a fault plan with an ``experiments.parallel``/``crash`` spec
    is armed (fork-started workers inherit it), the decision is keyed
    on the *trial index* — every worker, and every respawn, computes
    the same answer — and the crash is a real ``SIGKILL`` of the
    worker, exercising the executor's respawn path.

    On the in-worker path with observation enabled (fork-started
    workers inherit the enabled flag), the trial records into a fresh
    worker-local registry and the snapshot plus span events ride back
    in the return value — a forked copy of the parent registry could
    never deliver its counts home, so none are silently dropped.
    """
    index, trial, arguments, attempt, in_worker, traceparent = payload
    inj = fault_armed()
    if inj is not None and in_worker and attempt == 0:
        fault = inj.draw_at("experiments.parallel", index)
        if fault is not None and fault.kind == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
    if in_worker and is_enabled():
        sink = MemorySink()
        with observed(sink=sink) as worker_registry:
            result, seconds = _run_trial(index, trial, arguments,
                                         traceparent)
            payload_out = {"snapshot": worker_registry.snapshot(),
                           "events": list(sink.events)}
        return result, seconds, payload_out
    result, seconds = _run_trial(index, trial, arguments, traceparent)
    return result, seconds, None


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``REPRO_WORKERS``, else 1 (serial).

    ``REPRO_WORKERS=0`` in the environment means "parallelism off" and
    resolves to 1 worker (serial); an explicit ``workers=0`` argument
    is still a configuration error.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                )
            if workers == 0:
                workers = 1
        else:
            workers = 1
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return int(workers)


class CampaignExecutor:
    """Shards deterministic trials across worker processes.

    Args:
        workers: Worker processes; ``None`` resolves via
            :func:`resolve_workers`.  1 means serial execution.
        max_respawns: Pool rebuilds tolerated after worker deaths
            (SIGKILL/OOM) before the run degrades to the serial
            fallback.

    Because every trial seeds its own generators from its arguments,
    a parallel run returns exactly what the serial loop would — the
    executor only changes wall-clock time, never results.  That also
    makes worker-death recovery safe: resubmitting the incomplete
    trials after a respawn reproduces the exact results the dead
    worker would have returned.
    """

    def __init__(self, workers: Optional[int] = None,
                 max_respawns: int = 3):
        self.workers = resolve_workers(workers)
        if max_respawns < 0:
            raise ConfigurationError(
                f"max_respawns must be >= 0, got {max_respawns}")
        self.max_respawns = int(max_respawns)

    def run(self, trial: Callable[..., Any],
            argument_lists: Sequence[Sequence[Any]]) -> CampaignExecution:
        """Execute ``trial(*args)`` for every args tuple, in order.

        Worker processes that die mid-campaign are respawned (up to
        ``max_respawns`` pool rebuilds) and their incomplete trials
        resubmitted.  Falls back to a serial loop (recording the
        reason) when the process pool cannot run the work at all —
        unpicklable callables, sandboxed interpreters, or a pool still
        broken after the respawn budget.
        """
        entries = [(index, trial, tuple(arguments))
                   for index, arguments in enumerate(argument_lists)]
        start = time.perf_counter()
        with maybe_span("campaign.run", {"trials": len(entries)}):
            parent_tp = trace.current_traceparent()
            try:
                if self.workers > 1 and entries:
                    try:
                        timed = self._run_pool(entries, parent_tp)
                        self._merge_worker_obs(timed)
                        execution = self._execution(timed, "parallel",
                                                    self.workers, start)
                        self._observe(execution)
                        return execution
                    except CampaignTrialError:
                        # The trial itself failed — that is a campaign
                        # error and would fail identically in the serial
                        # loop, so propagate instead of re-running the
                        # work.
                        raise
                    except (pickle.PicklingError, AttributeError,
                            TypeError, BrokenProcessPool, OSError) as exc:
                        reason = f"{type(exc).__name__}: {exc}"
                        logger.warning(
                            "campaign fell back to serial execution: %s",
                            reason)
                else:
                    reason = ""
                timed = [_timed_call((index, fn, args, 0, False,
                                      parent_tp))
                         for index, fn, args in entries]
                execution = self._execution(timed, "serial", 1, start,
                                            reason)
            except CampaignTrialError as exc:
                obs = active()
                if obs is not None:
                    obs.counter("campaign.trial_failures").increment()
                logger.error("campaign trial failed: %s", exc)
                raise
            self._observe(execution)
        logger.debug("campaign finished: %s", execution.summary())
        return execution

    def _run_pool(self, entries: List[Tuple[int, Callable[..., Any],
                                            Sequence[Any]]],
                  parent_tp: str = "") -> List[_TrialReturn]:
        """Sharded execution with worker-death recovery.

        Submits one future per trial; when a worker dies the pool
        breaks, so completed results are salvaged, the pool is
        rebuilt, and the incomplete trials are resubmitted with the
        attempt counter bumped.  Raises :class:`BrokenProcessPool`
        once ``max_respawns`` rebuilds have been spent (the caller's
        serial fallback takes over).
        """
        results: Dict[int, _TrialReturn] = {}
        respawns = 0
        remaining = entries
        while remaining:
            broken: Optional[BrokenProcessPool] = None
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    (index,
                     pool.submit(_timed_call,
                                 (index, fn, args, respawns, True,
                                  parent_tp)))
                    for index, fn, args in remaining
                ]
                for index, future in futures:
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool as exc:
                        # Keep scanning: futures that finished before
                        # the crash still carry salvageable results.
                        broken = exc
            if broken is None:
                break
            respawns += 1
            obs = active()
            if obs is not None:
                obs.counter("campaign.worker_respawns").increment()
            if respawns > self.max_respawns:
                raise broken
            remaining = [entry for entry in remaining
                         if entry[0] not in results]
            logger.warning(
                "campaign worker died; respawning pool (%d/%d) and "
                "resubmitting %d incomplete trial(s)",
                respawns, self.max_respawns, len(remaining))
        return [results[index] for index, _, _ in entries]

    @staticmethod
    def _merge_worker_obs(timed: List[_TrialReturn]) -> None:
        """Fold worker-process telemetry into the parent registry.

        Walks the trial returns in submission order: snapshots merge
        (counters sum, histograms merge) and span events re-emit
        through the parent's sink and flight recorder, so a sharded
        campaign's counts match the serial loop's exactly.
        """
        obs = active()
        if obs is None:
            return
        recorder = flight_recorder()
        for _, _, payload in timed:
            if not payload:
                continue
            obs.merge_snapshot(payload.get("snapshot") or {})
            for event in payload.get("events") or ():
                obs.sink.emit(event)
                recorder.record_span_event(event)

    @staticmethod
    def _observe(execution: CampaignExecution) -> None:
        """Record one finished campaign into the shared registry."""
        obs = active()
        if obs is None:
            return
        obs.counter("campaign.runs").increment()
        obs.counter("campaign.trials").increment(len(execution.results))
        if execution.fallback_reason:
            obs.counter("campaign.serial_fallbacks").increment()
        trial_hist = obs.histogram("campaign.trial_seconds")
        for seconds in execution.trial_seconds:
            trial_hist.observe(seconds)
        obs.histogram("campaign.wall_seconds").observe(
            execution.wall_seconds)
        busy = sum(execution.trial_seconds)
        capacity = execution.workers * execution.wall_seconds
        if capacity > 0.0:
            obs.gauge("campaign.worker_utilization").set(
                min(busy / capacity, 1.0))

    def map(self, trial: Callable[..., Any],
            argument_lists: Sequence[Sequence[Any]]) -> List[Any]:
        """Like :meth:`run` but returns just the ordered results."""
        return self.run(trial, argument_lists).results

    @staticmethod
    def _execution(timed: List[_TrialReturn], mode: str, workers: int,
                   start: float, reason: str = "") -> CampaignExecution:
        return CampaignExecution(
            results=[result for result, _, _ in timed],
            mode=mode,
            workers=workers,
            wall_seconds=time.perf_counter() - start,
            trial_seconds=tuple(seconds for _, seconds, _ in timed),
            fallback_reason=reason,
        )
