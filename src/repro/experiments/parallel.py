"""Parallel campaign execution across persistent worker processes.

The evaluation campaigns are embarrassingly parallel: every trial
builds its own scenario from an explicit per-trial seed, so execution
order and placement cannot change the numbers.  :class:`CampaignExecutor`
exploits that — it shards a trial list across a
``concurrent.futures.ProcessPoolExecutor`` and guarantees the results
are bit-for-bit what a serial loop would produce.

Three mechanisms make the sharding actually pay (a freshly spawned
pool costs more than a small campaign's entire serial runtime —
``BENCH_estimator.json`` once recorded a 0.52x "speedup"):

* **Persistent warm pools** — one module-level
  ``ProcessPoolExecutor`` per ``(workers, warmup)`` key is reused
  across :meth:`CampaignExecutor.run` calls, so only the first
  campaign in a process pays the spawn.  :func:`shutdown_pools`
  disposes of them explicitly (also registered via ``atexit``); a
  pool broken by a worker death is discarded and respawned
  transparently.
* **Chunked submission** — trials are grouped into contiguous chunks
  of :attr:`CampaignExecutor.chunk_size` (default: two waves per
  worker), so N trials cost O(N / chunk) pickled round-trips instead
  of O(N).
* **Warm-started workers** — a pool initializer pre-imports the hot
  modules and primes the read-only contact-table/calibration caches
  through the :mod:`repro.cache` disk tier, so children never rebuild
  what any process on the machine already paid for.

Because a warm pool's workers may have been forked *before* the
caller armed a fault plan or enabled observation, both travel **in
the task payload**: each chunk carries the parent's armed
:class:`~repro.faults.plan.FaultPlan` (re-armed in the worker for the
chunk's duration) and the parent's observation flag (the worker
records into a fresh registry and ships the snapshot home), so warm
pools behave bit-identically to freshly forked ones.

Rules for trial functions:

* They must be **module-level** callables (picklable by reference),
  with picklable positional arguments.
* All randomness must derive from the trial's own arguments (e.g.
  ``np.random.default_rng(seed + trial)``) — never from shared state.

Worker count resolution: an explicit ``workers`` argument wins,
otherwise the ``REPRO_WORKERS`` environment variable, otherwise 1
(serial).  ``REPRO_WORKERS=0`` is the operational kill switch — it
disables parallelism and forces the serial path.  Serial execution is
also the graceful fallback whenever a process pool cannot be used
(unpicklable work, sandboxed interpreter, broken pool).

A trial that raises is a *campaign* failure, not an infrastructure
failure: the exception is wrapped as
:class:`repro.errors.CampaignTrialError` naming the failing trial
index, and propagates identically from the sharded and serial paths
(it is never swallowed by the serial fallback).

A worker that *dies* (SIGKILL, OOM) is an infrastructure failure: the
broken pool is discarded, a fresh one is spawned under the same key,
and the incomplete chunks are resubmitted — the re-shard is
deterministic (trials are keyed by index, and every trial seeds its
own randomness), so the completed campaign is bit-identical to an
undisturbed run.  ``campaign.worker_respawns`` counts the respawns;
after ``max_respawns`` pool rebuilds the run degrades to the serial
path like any other broken pool.
"""

from __future__ import annotations

import atexit
import logging
import math
import os
import pickle
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import CampaignTrialError, ConfigurationError
from repro.faults.inject import armed as fault_armed, disarm, inject
from repro.faults.plan import FaultPlan
from repro.obs import trace
from repro.obs.instruments import MemorySink
from repro.obs.recorder import flight_recorder
from repro.obs.registry import active, is_enabled, maybe_span, observed

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV = "REPRO_WORKERS"

logger = logging.getLogger(__name__)

#: A warm-start spec: ``(carrier_frequency_hz, fast)`` pairs whose
#: calibrated models the pool initializer primes in every worker.
WarmupSpec = Tuple[Tuple[float, bool], ...]


# ---------------------------------------------------------------------------
# Persistent pool registry
# ---------------------------------------------------------------------------

_pools: Dict[Tuple[int, WarmupSpec], ProcessPoolExecutor] = {}
_pool_counts = {"spawns": 0, "reuses": 0}


def _warm_worker(warmup: WarmupSpec) -> None:
    """Pool initializer: pre-import the hot path, prime the caches.

    Runs once per worker process at spawn.  The imports cover what
    every campaign trial touches (scenario builders, the estimator,
    the batched sounder); the optional ``warmup`` specs then build
    each ``(carrier, fast)`` calibrated model, which flows through
    the :mod:`repro.cache` disk tier — so a worker whose parent (or
    any earlier process on the machine) already calibrated starts
    warm from disk instead of recomputing, and the in-process
    memoization is hot before the first trial arrives.

    Warmup failures are deliberately non-fatal: a missing cache entry
    or an exotic carrier must not poison the pool — the trial itself
    will rebuild (and report) whatever the warmup could not.
    """
    import repro.core.estimator  # noqa: F401  (hot-module pre-import)
    import repro.reader.batch  # noqa: F401

    from repro.experiments import scenarios

    for carrier, fast in warmup:
        try:
            scenarios.calibrated_model(carrier, fast=fast)
        except Exception:  # pragma: no cover - depends on warmup spec
            logger.debug("worker warmup skipped for carrier %r", carrier,
                         exc_info=True)


def get_pool(workers: int,
             warmup: WarmupSpec = ()) -> ProcessPoolExecutor:
    """The persistent pool for ``(workers, warmup)`` (spawns on first use).

    The returned executor is shared by every campaign in the process
    that asks for the same key; callers must not shut it down
    themselves — use :func:`discard_pool` / :func:`shutdown_pools`.
    """
    key = (int(workers), tuple(warmup))
    pool = _pools.get(key)
    obs = active()
    if pool is not None:
        _pool_counts["reuses"] += 1
        if obs is not None:
            obs.counter("campaign.pool_reuses").increment()
        return pool
    pool = ProcessPoolExecutor(max_workers=int(workers),
                               initializer=_warm_worker,
                               initargs=(tuple(warmup),))
    _pools[key] = pool
    _pool_counts["spawns"] += 1
    if obs is not None:
        obs.counter("campaign.pool_spawns").increment()
    logger.debug("spawned persistent campaign pool (%d workers)", workers)
    return pool


def discard_pool(workers: int, warmup: WarmupSpec = ()) -> bool:
    """Drop (and shut down) one persistent pool; True if it existed.

    Used after a :class:`BrokenProcessPool` — a pool whose worker died
    is permanently unusable, so the registry entry must go before a
    respawn can take its place.
    """
    pool = _pools.pop((int(workers), tuple(warmup)), None)
    if pool is None:
        return False
    pool.shutdown(wait=False)
    return True


def shutdown_pools(wait: bool = True) -> int:
    """Shut down every persistent pool; returns how many there were.

    Safe to call repeatedly (and registered via ``atexit``).  The next
    :func:`get_pool` simply spawns fresh.
    """
    count = len(_pools)
    while _pools:
        _, pool = _pools.popitem()
        pool.shutdown(wait=wait)
    return count


def pool_stats() -> Dict[str, int]:
    """Pool lifecycle counters: live pools, spawns, reuses."""
    return {"live": len(_pools),
            "spawns": _pool_counts["spawns"],
            "reuses": _pool_counts["reuses"]}


atexit.register(shutdown_pools, wait=False)


# ---------------------------------------------------------------------------
# Execution record
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignExecution:
    """One campaign run: ordered results plus execution telemetry.

    Attributes:
        results: Per-trial return values, in submission order.
        mode: ``"parallel"`` or ``"serial"`` (how it actually ran).
        workers: Worker processes used (1 for serial).
        wall_seconds: End-to-end wall-clock time.
        trial_seconds: Per-trial execution time, in submission order.
        fallback_reason: Why a requested parallel run fell back to
            serial (empty when it did not).
        chunk_size: Trials per pickled round-trip on the pool path
            (1 for serial).
        pool_reused: Whether the run rode an already-warm persistent
            pool instead of paying a spawn.
    """

    results: List[Any]
    mode: str
    workers: int
    wall_seconds: float
    trial_seconds: Tuple[float, ...]
    fallback_reason: str = ""
    chunk_size: int = 1
    pool_reused: bool = False

    def summary(self) -> str:
        """One-line progress/timing summary for logs."""
        trials = len(self.results)
        mean = (sum(self.trial_seconds) / trials) if trials else 0.0
        line = (f"{trials} trials in {self.wall_seconds:.2f} s "
                f"({self.mode}, {self.workers} worker"
                f"{'s' if self.workers != 1 else ''}, "
                f"mean trial {mean:.2f} s)")
        if self.mode == "parallel":
            line += (f" [chunk {self.chunk_size}, pool "
                     f"{'warm' if self.pool_reused else 'cold'}]")
        if self.fallback_reason:
            line += f" [fell back to serial: {self.fallback_reason}]"
        return line


#: One trial inside a chunk: (index, trial, arguments).
_Entry = Tuple[int, Callable[..., Any], Sequence[Any]]

#: One unit of pool work: (entries, attempt, in_worker, traceparent,
#: obs_enabled, fault_plan).  ``attempt`` counts pool respawns (crash
#: faults only fire on attempt 0, so a respawned chunk completes);
#: ``in_worker`` is True only on the process-pool path — the serial
#: loop must never SIGKILL the main process.  ``traceparent`` carries
#: the campaign span's trace context across the process boundary
#: (empty when tracing is off).  ``obs_enabled`` and ``fault_plan``
#: ship the parent's observation flag and armed plan explicitly —
#: a *persistent* pool's workers may have been forked before either
#: was set, so fork inheritance alone is not enough.
_ChunkPayload = Tuple[Tuple[_Entry, ...], int, bool, str, bool,
                      Optional[FaultPlan]]

#: What one trial sends back: (index, result, seconds).
_TrialReturn = Tuple[int, Any, float]

#: What one chunk sends back: the ordered trial returns plus the
#: worker telemetry payload (``None`` unless the chunk ran in-worker
#: with observation requested, where it carries the worker registry
#: snapshot and its span events for the parent to merge).
_ChunkReturn = Tuple[Tuple[_TrialReturn, ...], Optional[dict]]


def _run_trial(index: int, trial: Callable[..., Any],
               arguments: Sequence[Any],
               traceparent: str) -> Tuple[Any, float]:
    """The measured trial call, wrapped in a ``campaign.trial`` span.

    The span parents onto the traceparent shipped in the payload, so
    worker-process spans stitch into the parent's ``campaign.run``
    trace; with an empty/invalid traceparent it falls back to the
    ambient context (the serial path) or a fresh root.
    """
    parent = trace.parse_traceparent(traceparent) if traceparent else None
    start = time.perf_counter()
    with maybe_span("campaign.trial", {"trial": index}, parent=parent):
        try:
            result = trial(*arguments)
        except Exception as exc:
            name = getattr(trial, "__qualname__", repr(trial))
            raise CampaignTrialError(
                f"campaign trial {index} ({name}) raised "
                f"{type(exc).__name__}: {exc}"
            ) from exc
    return result, time.perf_counter() - start


def _chunk_trials(entries: Tuple[_Entry, ...], attempt: int,
                  in_worker: bool,
                  traceparent: str) -> Tuple[_TrialReturn, ...]:
    """Run one chunk's trials in order (crash faults first).

    When a fault plan with an ``experiments.parallel``/``crash`` spec
    is armed, the decision is keyed on the *trial index* — every
    worker, and every respawn, computes the same answer — and the
    crash is a real ``SIGKILL`` of the worker, exercising the
    executor's respawn path.  Crashes only fire on attempt 0, so a
    respawned chunk completes.
    """
    returns: List[_TrialReturn] = []
    for index, trial, arguments in entries:
        inj = fault_armed()
        if inj is not None and in_worker and attempt == 0:
            fault = inj.draw_at("experiments.parallel", index)
            if fault is not None and fault.kind == "crash":
                os.kill(os.getpid(), signal.SIGKILL)
        result, seconds = _run_trial(index, trial, arguments, traceparent)
        returns.append((index, result, seconds))
    return tuple(returns)


def _chunk_call(payload: _ChunkPayload) -> _ChunkReturn:
    """Run one chunk of trials (module-level, so it pickles).

    A raising trial is re-raised as :class:`CampaignTrialError` naming
    the trial, so a failure deep inside a 4-process shard reads the
    same as one from a plain serial loop.

    The payload carries the parent's observation flag and armed fault
    plan explicitly: a persistent pool's workers may predate both, so
    the chunk re-arms the plan locally (skipped when the worker
    already inherited an armed injector via fork) and, when
    observation is requested, records into a fresh worker registry
    whose snapshot and span events ride back in the return value — a
    forked copy of the parent registry could never deliver its counts
    home, so none are silently dropped.
    """
    entries, attempt, in_worker, traceparent, obs_enabled, plan = payload
    if not in_worker:
        return _chunk_trials(entries, attempt, in_worker, traceparent), None
    # The payload is the source of truth for fault state: a persistent
    # pool's workers may have been forked inside an older ``inject``
    # context, and that inherited injector is stale by definition —
    # drop it, then arm exactly what the parent has armed right now
    # (fresh per chunk, so the chunk is the unit of fault determinism).
    disarm()
    if plan is not None:
        with inject(plan):
            return _observed_chunk(entries, attempt, traceparent,
                                   obs_enabled)
    return _observed_chunk(entries, attempt, traceparent, obs_enabled)


def _observed_chunk(entries: Tuple[_Entry, ...], attempt: int,
                    traceparent: str, obs_enabled: bool) -> _ChunkReturn:
    """The in-worker chunk body, with optional telemetry collection."""
    if not obs_enabled:
        return _chunk_trials(entries, attempt, True, traceparent), None
    sink = MemorySink()
    with observed(sink=sink) as worker_registry:
        returns = _chunk_trials(entries, attempt, True, traceparent)
        payload_out = {"snapshot": worker_registry.snapshot(),
                       "events": list(sink.events)}
    return returns, payload_out


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``REPRO_WORKERS``, else 1 (serial).

    ``REPRO_WORKERS=0`` in the environment means "parallelism off" and
    resolves to 1 worker (serial); an explicit ``workers=0`` argument
    is still a configuration error.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                )
            if workers == 0:
                workers = 1
        else:
            workers = 1
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return int(workers)


class CampaignExecutor:
    """Shards deterministic trials across persistent worker processes.

    Args:
        workers: Worker processes; ``None`` resolves via
            :func:`resolve_workers`.  1 means serial execution.
        max_respawns: Pool rebuilds tolerated after worker deaths
            (SIGKILL/OOM) before the run degrades to the serial
            fallback.
        chunk_size: Trials per pickled round-trip; ``None`` picks
            two submission waves per worker
            (``ceil(trials / (2 * workers))``), balancing round-trip
            amortization against load balancing.
        warmup: ``(carrier_hz, fast)`` pairs primed by the pool
            initializer in every worker (see :func:`get_pool`); part
            of the pool key, so campaigns with different warmups get
            different pools.
        persistent: Reuse the module-level pool across runs (the
            default).  ``False`` spawns a private pool per run and
            shuts it down afterwards — what the cold-pool benchmarks
            and one-shot scripts use.

    Because every trial seeds its own generators from its arguments,
    a parallel run returns exactly what the serial loop would — the
    executor only changes wall-clock time, never results.  That also
    makes worker-death recovery safe: resubmitting the incomplete
    chunks after a respawn reproduces the exact results the dead
    worker would have returned.
    """

    def __init__(self, workers: Optional[int] = None,
                 max_respawns: int = 3,
                 chunk_size: Optional[int] = None,
                 warmup: WarmupSpec = (),
                 persistent: bool = True):
        self.workers = resolve_workers(workers)
        if max_respawns < 0:
            raise ConfigurationError(
                f"max_respawns must be >= 0, got {max_respawns}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}")
        self.max_respawns = int(max_respawns)
        self.chunk_size = chunk_size
        self.warmup = tuple(warmup)
        self.persistent = bool(persistent)

    def _resolve_chunk(self, trials: int) -> int:
        """Chunk size for ``trials`` (two waves per worker by default)."""
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(trials / (2 * self.workers)))

    def run(self, trial: Callable[..., Any],
            argument_lists: Sequence[Sequence[Any]]) -> CampaignExecution:
        """Execute ``trial(*args)`` for every args tuple, in order.

        Worker processes that die mid-campaign are respawned (up to
        ``max_respawns`` pool rebuilds) and their incomplete chunks
        resubmitted.  Falls back to a serial loop (recording the
        reason) when the process pool cannot run the work at all —
        unpicklable callables, sandboxed interpreters, or a pool still
        broken after the respawn budget.
        """
        entries: List[_Entry] = [
            (index, trial, tuple(arguments))
            for index, arguments in enumerate(argument_lists)]
        start = time.perf_counter()
        with maybe_span("campaign.run", {"trials": len(entries)}):
            parent_tp = trace.current_traceparent()
            pool_reused = False
            try:
                if self.workers > 1 and entries:
                    try:
                        pool_reused = (self.persistent and
                                       (self.workers, self.warmup)
                                       in _pools)
                        timed = self._run_pool(entries, parent_tp)
                        execution = self._execution(
                            timed, "parallel", self.workers, start,
                            chunk_size=self._resolve_chunk(len(entries)),
                            pool_reused=pool_reused)
                        self._observe(execution)
                        return execution
                    except CampaignTrialError:
                        # The trial itself failed — that is a campaign
                        # error and would fail identically in the serial
                        # loop, so propagate instead of re-running the
                        # work.
                        raise
                    except (pickle.PicklingError, AttributeError,
                            TypeError, BrokenProcessPool, OSError) as exc:
                        reason = f"{type(exc).__name__}: {exc}"
                        logger.warning(
                            "campaign fell back to serial execution: %s",
                            reason)
                else:
                    reason = ""
                serial_returns = [
                    _chunk_call(((entry,), 0, False, parent_tp, False,
                                 None))[0][0]
                    for entry in entries]
                execution = self._execution(
                    [(serial_returns, None)] if serial_returns else [],
                    "serial", 1, start, reason)
            except CampaignTrialError as exc:
                obs = active()
                if obs is not None:
                    obs.counter("campaign.trial_failures").increment()
                logger.error("campaign trial failed: %s", exc)
                raise
            self._observe(execution)
        logger.debug("campaign finished: %s", execution.summary())
        return execution

    def _acquire_pool(self) -> ProcessPoolExecutor:
        """The run's pool: persistent (shared) or private (one-shot)."""
        if self.persistent:
            return get_pool(self.workers, self.warmup)
        return ProcessPoolExecutor(
            max_workers=self.workers, initializer=_warm_worker,
            initargs=(self.warmup,))

    def _retire_pool(self, pool: ProcessPoolExecutor,
                     broken: bool) -> None:
        """Dispose of a run's pool appropriately for its mode."""
        if self.persistent:
            if broken:
                discard_pool(self.workers, self.warmup)
        else:
            pool.shutdown(wait=not broken)

    def _run_pool(self, entries: List[_Entry],
                  parent_tp: str = "") -> List[_ChunkReturn]:
        """Chunked sharded execution with worker-death recovery.

        Submits one future per *chunk* of trials; when a worker dies
        the pool breaks, so completed chunks are salvaged, the broken
        pool is discarded and respawned, and the incomplete chunks
        are resubmitted with the attempt counter bumped.  Raises
        :class:`BrokenProcessPool` once ``max_respawns`` rebuilds have
        been spent (the caller's serial fallback takes over).
        """
        chunk_size = self._resolve_chunk(len(entries))
        obs_enabled = is_enabled()
        inj = fault_armed()
        plan = inj.plan if inj is not None else None
        chunk_returns: Dict[int, _ChunkReturn] = {}
        done: set = set()
        respawns = 0
        remaining = list(entries)
        while remaining:
            pool = self._acquire_pool()
            broken: Optional[BrokenProcessPool] = None
            chunks = [tuple(remaining[at:at + chunk_size])
                      for at in range(0, len(remaining), chunk_size)]
            try:
                futures = [
                    pool.submit(_chunk_call,
                                (chunk, respawns, True, parent_tp,
                                 obs_enabled, plan))
                    for chunk in chunks
                ]
            except BrokenProcessPool as exc:
                # A worker died before submission finished — either
                # the persistent pool broke while idle between
                # campaigns, or a crash fault on an early chunk
                # outraced the remaining submits.  Either way it is a
                # worker death: spend one respawn on a fresh pool
                # instead of punting straight to serial.
                self._retire_pool(pool, broken=True)
                respawns += 1
                obs = active()
                if obs is not None:
                    obs.counter("campaign.worker_respawns").increment()
                if respawns > self.max_respawns:
                    raise
                logger.warning(
                    "campaign pool was broken at submit; respawning "
                    "(%d/%d): %s", respawns, self.max_respawns, exc)
                continue
            try:
                for chunk, future in zip(chunks, futures):
                    try:
                        chunk_returns[chunk[0][0]] = future.result()
                        done.update(index for index, _, _ in chunk)
                    except BrokenProcessPool as exc:
                        # Keep scanning: chunks that finished before
                        # the crash still carry salvageable results.
                        broken = exc
            except CampaignTrialError:
                # Leave the pool healthy for the next campaign, but
                # drop work that has not started — its results can
                # never be collected.
                for future in futures:
                    future.cancel()
                self._retire_pool(pool, broken=False)
                raise
            self._retire_pool(pool, broken=broken is not None)
            if broken is None:
                break
            respawns += 1
            obs = active()
            if obs is not None:
                obs.counter("campaign.worker_respawns").increment()
            if respawns > self.max_respawns:
                raise broken
            remaining = [entry for entry in remaining
                         if entry[0] not in done]
            logger.warning(
                "campaign worker died; respawning pool (%d/%d) and "
                "resubmitting %d incomplete trial(s)",
                respawns, self.max_respawns, len(remaining))
        ordered = [chunk_returns[key] for key in sorted(chunk_returns)]
        self._merge_worker_obs(ordered)
        return ordered

    @staticmethod
    def _merge_worker_obs(chunk_returns: List[_ChunkReturn]) -> None:
        """Fold worker-process telemetry into the parent registry.

        Walks the chunk returns in submission order: snapshots merge
        (counters sum, histograms merge) and span events re-emit
        through the parent's sink and flight recorder, so a sharded
        campaign's counts match the serial loop's exactly.
        """
        obs = active()
        if obs is None:
            return
        recorder = flight_recorder()
        for _, payload in chunk_returns:
            if not payload:
                continue
            obs.merge_snapshot(payload.get("snapshot") or {})
            for event in payload.get("events") or ():
                obs.sink.emit(event)
                recorder.record_span_event(event)

    @staticmethod
    def _observe(execution: CampaignExecution) -> None:
        """Record one finished campaign into the shared registry."""
        obs = active()
        if obs is None:
            return
        obs.counter("campaign.runs").increment()
        obs.counter("campaign.trials").increment(len(execution.results))
        if execution.fallback_reason:
            obs.counter("campaign.serial_fallbacks").increment()
        trial_hist = obs.histogram("campaign.trial_seconds")
        for seconds in execution.trial_seconds:
            trial_hist.observe(seconds)
        obs.histogram("campaign.wall_seconds").observe(
            execution.wall_seconds)
        busy = sum(execution.trial_seconds)
        capacity = execution.workers * execution.wall_seconds
        if capacity > 0.0:
            obs.gauge("campaign.worker_utilization").set(
                min(busy / capacity, 1.0))

    def map(self, trial: Callable[..., Any],
            argument_lists: Sequence[Sequence[Any]]) -> List[Any]:
        """Like :meth:`run` but returns just the ordered results."""
        return self.run(trial, argument_lists).results

    def _execution(self, chunk_returns: List[_ChunkReturn], mode: str,
                   workers: int, start: float, reason: str = "",
                   chunk_size: int = 1,
                   pool_reused: bool = False) -> CampaignExecution:
        by_index: Dict[int, Tuple[Any, float]] = {}
        for returns, _ in chunk_returns:
            for index, result, seconds in returns:
                by_index[index] = (result, seconds)
        ordered = [by_index[index] for index in sorted(by_index)]
        return CampaignExecution(
            results=[result for result, _ in ordered],
            mode=mode,
            workers=workers,
            wall_seconds=time.perf_counter() - start,
            trial_seconds=tuple(seconds for _, seconds in ordered),
            fallback_reason=reason,
            chunk_size=chunk_size,
            pool_reused=pool_reused,
        )
