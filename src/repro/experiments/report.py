"""One-shot reproduction report (artifact-evaluation style).

``generate_report()`` runs every paper-figure runner (fast mode by
default) and writes a single markdown report with the measured values
next to the paper's — the "make all" of this reproduction.  Also
exposed as ``python -m repro report``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Union


from repro.experiments import runners


def _fig04(fast: bool) -> List[str]:
    result = runners.run_fig04(fast=fast)
    return [
        "## Fig. 4c — transduction (soft beam vs thin trace)",
        f"- soft-beam phase swing: **{result.soft_swing_deg:.1f} deg**; "
        f"thin trace: **{result.thin_swing_deg:.1f} deg** "
        "(paper: pronounced vs flat)",
    ]


def _fig05(fast: bool) -> List[str]:
    result = runners.run_fig05(fast=fast)
    centre = list(result.locations).index(0.040)
    left = list(result.locations).index(0.020)
    return [
        "## Fig. 5b — beam profiles",
        f"- centre press: port swings {result.swing_deg(centre, 1):.1f} / "
        f"{result.swing_deg(centre, 2):.1f} deg (symmetric, as the paper)",
        f"- 20 mm press: {result.swing_deg(left, 1):.1f} / "
        f"{result.swing_deg(left, 2):.1f} deg (near-port dominant)",
    ]


def _fig07(fast: bool) -> List[str]:
    result = runners.run_fig07(fast=fast)
    return [
        "## Figs. 7-8 — clocking",
        f"- naive scheme: {result.overlap_naive:.0%} on-window overlap, "
        f"worst tone corruption **{result.naive_worst_error_deg:.0f} deg**",
        f"- WiForce scheme: {result.overlap_wiforce:.0%} overlap, "
        f"**{result.wiforce_worst_error_deg:.2f} deg**",
    ]


def _fig10() -> List[str]:
    result = runners.run_fig10()
    return [
        "## Fig. 10 — sensor RF, 0-3 GHz",
        f"- worst S11 **{result.worst_s11_db:.1f} dB** (paper < -10), "
        f"worst S21 {result.worst_s21_db:.2f} dB, phase nonlinearity "
        f"{result.s21_phase_residual_deg:.3f} deg",
    ]


def _table1(fast: bool) -> List[str]:
    result = runners.run_table1(fast=fast)
    return [
        "## Table 1 — VNA / model / wireless overlay",
        f"- wireless-vs-model RMSE **"
        f"{result.wireless_model_rmse_deg():.2f} deg** across "
        "20/40/55/60 mm (55 mm never calibrated)",
    ]


def _accuracy(fast: bool) -> List[str]:
    lines = ["## Figs. 13-14 — wireless accuracy"]
    for carrier, paper_force, paper_location in ((900e6, 0.56, 0.86),
                                                 (2.4e9, 0.34, 0.59)):
        result = runners.run_wireless_accuracy(carrier, fast=fast,
                                               force_points=6, repeats=2)
        lines.append(
            f"- {carrier / 1e9:.1f} GHz: force median "
            f"**{result.median_force_error:.3f} N** (paper "
            f"{paper_force} N), location median "
            f"**{result.median_location_error * 1e3:.3f} mm** (paper "
            f"{paper_location} mm)")
    return lines


def _tissue(fast: bool) -> List[str]:
    result = runners.run_tissue(fast=fast)
    return [
        "## Fig. 16 — tissue phantom",
        f"- without metal plate: "
        f"{'**saturated** (undecodable), as the paper' if result.saturated_without_plate else 'unexpectedly decodable'}",
        f"- with plate: force median **{result.median_force_error:.3f} N**"
        " (paper 0.62 N)",
    ]


def _fingertip(fast: bool) -> List[str]:
    result = runners.run_fingertip(fast=fast)
    levels = ", ".join(
        f"{target:.0f}->{estimate:.2f}"
        for target, estimate in zip(result.level_targets,
                                    result.level_estimates))
    return [
        "## Fig. 17 — fingertip",
        f"- location spread {result.location_histogram_spread * 1e3:.2f} mm"
        f" around 60 mm; force levels [N] {levels} "
        f"({'monotone' if result.levels_monotonic else 'NOT monotone'})",
    ]


def _distance(fast: bool) -> List[str]:
    result = runners.run_distance(fast=fast)
    line = " / ".join(f"{s:.2f}" for s in result.stability_deg)
    return [
        "## Fig. 18 — distance",
        f"- phase stability along the 4 m line: {line} deg "
        "(paper: <1 to ~5 deg)",
    ]


def _fig19() -> List[str]:
    result = runners.run_impedance_ratio()
    return [
        "## Fig. 19 — impedance ratio",
        f"- 50-ohm w:h = **{result.optimal_ratio_narrow:.2f}:1** narrow "
        f"ground, **{result.optimal_ratio_wide:.2f}:1** wide ground "
        "(paper ~5:1 -> ~4:1)",
    ]


def _power_baselines(fast: bool) -> List[str]:
    power = runners.run_power_comparison()
    baseline = runners.run_baseline_comparison(fast=fast)
    return [
        "## Power and baselines",
        f"- tag power **{power.wiforce.total_uw:.3f} uW** (paper < 1 uW);"
        f" digital backscatter {power.digital.total_uw:.1f} uW "
        f"({power.ratio:.0f}x)",
        f"- localization vs RFID touch: **"
        f"{baseline.location_advantage:.0f}x** better (paper ~5x+)",
        f"- RSS strain baseline degrades **"
        f"{baseline.multipath_degradation:.0f}x** under multipath",
    ]


def generate_report(output_path: Union[str, Path] = "REPORT.md",
                    fast: bool = True) -> Path:
    """Run every paper-figure runner and write the markdown report.

    Args:
        output_path: Where to write the report.
        fast: Use reduced-resolution transducers (minutes instead of
            tens of minutes; the full numbers come from the benchmark
            suite).

    Returns:
        The written path.
    """
    start = time.time()
    sections: List[str] = [
        "# WiForce reproduction report",
        "",
        f"Mode: {'fast' if fast else 'full'} — regenerate with "
        "`python -m repro report`.",
        "",
    ]
    for build in (lambda: _fig04(fast), lambda: _fig05(fast),
                  lambda: _fig07(fast), _fig10, lambda: _table1(fast),
                  lambda: _accuracy(fast), lambda: _tissue(fast),
                  lambda: _fingertip(fast), lambda: _distance(fast),
                  _fig19, lambda: _power_baselines(fast)):
        sections.extend(build())
        sections.append("")
    sections.append(f"_Generated in {time.time() - start:.0f} s._")
    path = Path(output_path)
    path.write_text("\n".join(sections) + "\n")
    return path
