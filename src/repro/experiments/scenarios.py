"""Shared scenario builders with caching.

Building a :class:`ForceTransducer` solves the contact problem over a
(force, location) grid — a couple of seconds of work that every
experiment needs.  The builders here memoise the standard transducers
so the test suite and the benchmarks pay that cost once per process.

Two cache layers compose here: the per-process ``lru_cache`` below
keeps *objects* alive within one interpreter, while the underlying
contact tables and harmonic calibrations are content-addressed on disk
by :mod:`repro.cache` — so even the first call in a fresh process is
warm if any earlier process built the same spec."""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.channel.multipath import MultipathChannel, indoor_channel
from repro.channel.propagation import BackscatterLink
from repro.core.calibration import SensorModel, calibrate_harmonic_observable
from repro.core.pipeline import WiForceReader
from repro.reader.batch import resolve_sounder
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.geometry import default_sensor_design, thin_trace_design
from repro.sensor.tag import WiForceTag
from repro.sensor.transduction import ForceTransducer

#: The paper's calibration locations (section 4.2) [m].
CALIBRATION_LOCATIONS = (0.020, 0.030, 0.040, 0.050, 0.060)

#: Densified calibration grid used by the shared models: same span as
#: the paper's five locations, 2.5 mm pitch.  Linear interpolation
#: between 10 mm-spaced fits leaves a phase bias of over a degree in
#: the saturating force regime, where sensitivity is ~1 deg/N — dense
#: calibration keeps the roundtrip force error inside tolerance.
MODEL_CALIBRATION_LOCATIONS = tuple(np.linspace(0.020, 0.060, 17))

#: Wireless-evaluation press locations (section 5.1) [m].
EVALUATION_LOCATIONS = (0.020, 0.040, 0.055, 0.060)


@lru_cache(maxsize=1)
def default_transducer() -> ForceTransducer:
    """The paper-accurate transducer (full contact-map resolution)."""
    return ForceTransducer(default_sensor_design())


@lru_cache(maxsize=1)
def fast_transducer() -> ForceTransducer:
    """Reduced-resolution transducer for tests (builds in ~2 s)."""
    return ForceTransducer(default_sensor_design(), force_points=20,
                           location_points=25)


@lru_cache(maxsize=1)
def thin_trace_transducer() -> ForceTransducer:
    """Bare-trace sensor for the Fig. 4 transduction ablation."""
    return ForceTransducer(thin_trace_design(), force_points=20,
                           location_points=25)


@lru_cache(maxsize=4)
def calibrated_model(carrier_frequency: float,
                     fast: bool = False) -> SensorModel:
    """Harmonic-domain calibration over the paper's 20-60 mm span."""
    transducer = fast_transducer() if fast else default_transducer()
    tag = WiForceTag(transducer)
    forces = np.linspace(0.5, 8.0, 16)
    return calibrate_harmonic_observable(tag, carrier_frequency,
                                         MODEL_CALIBRATION_LOCATIONS, forces)


def build_wireless_scenario(carrier_frequency: float = 900e6,
                            link: Optional[BackscatterLink] = None,
                            clutter: Optional[MultipathChannel] = None,
                            seed: Optional[int] = None,
                            fast: bool = False,
                            groups_per_capture: int = 2,
                            tx_power_dbm: float = 10.0,
                            clock_offset_ppm: float = 20.0,
                            sounder: str = "fast",
                            backend: str = "grid",
                            baseline_groups: int = 8) -> WiForceReader:
    """A ready-to-read deployment (Fig. 12 geometry by default).

    Args:
        carrier_frequency: 900 MHz or 2.4 GHz.
        link: Deployment geometry; defaults to the paper's 1 m TX-RX
            with the sensor 50 cm from each.
        clutter: Environment multipath; defaults to random indoor
            clutter drawn from ``seed``.
        seed: Seed for clutter and receiver noise.
        fast: Use the reduced-resolution transducer (tests).
        groups_per_capture: Phase groups averaged per reading.
        tx_power_dbm: Reader transmit power.
        clock_offset_ppm: Tag crystal frequency error (unsynchronized
            Arduino clock, section 4.4).
        sounder: ``"fast"`` (batched vectorized default) or
            ``"oracle"`` (bit-level reference sounder).
        backend: Inversion strategy for the reader's estimator
            (``"grid"`` | ``"surrogate"``; see
            :func:`repro.core.estimator.build_estimator`).
        baseline_groups: Phase groups captured per baseline; long
            batched sweeps raise this for a tighter clock-drift fit.
    """
    rng = np.random.default_rng(seed)
    transducer = fast_transducer() if fast else default_transducer()
    tag = WiForceTag(transducer, clock_offset_ppm=clock_offset_ppm)
    if link is None:
        link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0)
    if clutter is None:
        clutter = indoor_channel(carrier_frequency, rng=rng)
    config = OFDMSounderConfig(carrier_frequency=carrier_frequency,
                               tx_power_dbm=tx_power_dbm)
    sounder_instance = resolve_sounder(sounder)(config, tag, link,
                                                clutter, rng=rng)
    model = calibrated_model(carrier_frequency, fast=fast)
    backend_options = {} if backend == "grid" else {
        "carrier_frequency": carrier_frequency, "fast": fast}
    return WiForceReader(sounder_instance, model,
                         groups_per_capture=groups_per_capture,
                         baseline_groups=baseline_groups,
                         backend=backend, backend_options=backend_options)
