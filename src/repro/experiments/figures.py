"""Terminal figure rendering (ASCII) for benchmark outputs.

The benches print the paper's tables; these helpers print its *curves*
— CDFs, phase-force profiles, spectra — as monospace plots, so the
regenerated figures are inspectable in a terminal-only environment
(and in the persisted ``benchmarks/results/*.txt`` files) without any
plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def ascii_plot(series: Sequence[Tuple[str, np.ndarray, np.ndarray]],
               width: int = 64, height: int = 16,
               x_label: str = "", y_label: str = "") -> str:
    """Render one or more (label, x, y) series as an ASCII plot.

    Each series gets its own marker character (its label's first
    letter).  Axes are linear; the canvas spans the union of the data
    ranges.

    Args:
        series: Up to ~5 series of equal-meaning axes.
        width / height: Canvas size in characters.
        x_label / y_label: Axis captions.

    Returns:
        The rendered multi-line string.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 16 or height < 6:
        raise ConfigurationError("canvas too small to be readable")
    cleaned = []
    for label, x, y in series:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.size != y.size or x.size < 2:
            raise ConfigurationError(
                f"series {label!r} needs matching x/y with >= 2 points"
            )
        cleaned.append((label, x, y))

    x_min = min(float(x.min()) for _, x, _ in cleaned)
    x_max = max(float(x.max()) for _, x, _ in cleaned)
    y_min = min(float(y.min()) for _, _, y in cleaned)
    y_max = max(float(y.max()) for _, _, y in cleaned)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for label, x, y in cleaned:
        marker = (label.strip() or "*")[0]
        # Interpolate onto the column grid so curves read as lines.
        columns = np.arange(width)
        column_x = x_min + columns / (width - 1) * (x_max - x_min)
        in_range = ((column_x >= x.min()) & (column_x <= x.max()))
        column_y = np.interp(column_x, x, y)
        for column in columns[in_range]:
            row = int(round((y_max - column_y[column])
                            / (y_max - y_min) * (height - 1)))
            row = max(0, min(height - 1, row))
            canvas[row][column] = marker

    lines: List[str] = []
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(prefix + "|" + "".join(row))
    axis = " " * gutter + "+" + "-" * width
    lines.append(axis)
    x_axis = (" " * (gutter + 1) + f"{x_min:.3g}"
              + f"{x_max:.3g}".rjust(width - len(f"{x_min:.3g}")))
    lines.append(x_axis)
    caption = []
    if x_label:
        caption.append(f"x: {x_label}")
    if y_label:
        caption.append(f"y: {y_label}")
    caption.append("series: " + ", ".join(
        f"{(label.strip() or '*')[0]}={label}" for label, _, _ in cleaned))
    lines.append(" " * gutter + "  ".join(caption))
    return "\n".join(lines)


def ascii_cdf(samples_by_label: Sequence[Tuple[str, Sequence[float]]],
              width: int = 64, height: int = 16,
              x_label: str = "|error|") -> str:
    """Render empirical CDFs of absolute errors (the paper's Figs. 13-14
    presentation)."""
    series = []
    for label, samples in samples_by_label:
        values = np.sort(np.abs(np.asarray(list(samples), dtype=float)))
        if values.size < 2:
            raise ConfigurationError(
                f"series {label!r} needs >= 2 samples"
            )
        probabilities = np.arange(1, values.size + 1) / values.size
        series.append((label, values, probabilities))
    return ascii_plot(series, width=width, height=height,
                      x_label=x_label, y_label="CDF")


def ascii_histogram(values: Sequence[float], bins: np.ndarray,
                    width: int = 40, label: str = "") -> str:
    """Render a histogram as horizontal bars (the Fig. 17a view)."""
    values = np.asarray(list(values), dtype=float)
    counts, edges = np.histogram(values, bins=bins)
    if counts.max() == 0:
        raise ConfigurationError("histogram is empty")
    lines = [f"histogram{': ' + label if label else ''}"]
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / counts.max() * width))
        lines.append(f"  [{low:8.3g}, {high:8.3g})  {count:4d}  {bar}")
    return "\n".join(lines)
