"""Monte-Carlo campaigns: robustness across environments and units.

The paper evaluates "in different indoor environments" (section 5);
these campaigns quantify that: re-run the accuracy protocol across many
random multipath draws, and separately across fabricated sensor units
(calibration-transfer study), reporting the distribution of medians.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.calibration import calibrate_harmonic_observable
from repro.core.estimator import ForceLocationEstimator
from repro.core.pipeline import WiForceReader
from repro.channel.multipath import indoor_channel
from repro.channel.propagation import BackscatterLink
from repro.experiments.metrics import median_absolute_error
from repro.experiments.scenarios import (
    build_wireless_scenario,
    calibrated_model,
    fast_transducer,
)
from repro.mechanics.indenter import GroundTruthRig
from repro.reader.sounder import FrameLevelSounder
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.fabrication import FabricationTolerances, perturbed_design
from repro.sensor.tag import TagState, WiForceTag
from repro.sensor.transduction import ForceTransducer


@dataclass(frozen=True)
class CampaignResult:
    """Medians per trial of a Monte-Carlo campaign.

    Attributes:
        label: What varied across trials.
        force_medians: Median |force error| per trial [N].
        location_medians: Median |location error| per trial [m].
    """

    label: str
    force_medians: np.ndarray
    location_medians: np.ndarray

    @property
    def worst_force_median(self) -> float:
        """Worst trial's force median [N]."""
        return float(self.force_medians.max())

    @property
    def worst_location_median(self) -> float:
        """Worst trial's location median [m]."""
        return float(self.location_medians.max())


def _protocol(reader: WiForceReader,
              rng: np.random.Generator) -> Tuple[float, float]:
    rig = GroundTruthRig(rng=rng)
    force_errors = []
    location_errors = []
    for location in (0.025, 0.040, 0.058):
        for force in (1.5, 4.0, 7.0):
            press = rig.press(force, location)
            reading = reader.read(
                TagState(press.applied_force, press.applied_location),
                rebaseline=True)
            force_errors.append(reading.force - press.measured_force)
            location_errors.append(reading.location
                                   - press.commanded_location)
    return (median_absolute_error(force_errors),
            median_absolute_error(location_errors))


def environment_campaign(trials: int = 8, carrier: float = 900e6,
                         fast: bool = True, seed: int = 101
                         ) -> CampaignResult:
    """Accuracy across random indoor environments (clutter draws)."""
    force_medians = []
    location_medians = []
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        reader = build_wireless_scenario(carrier, seed=seed + trial,
                                         fast=fast)
        force, location = _protocol(reader, rng)
        force_medians.append(force)
        location_medians.append(location)
    return CampaignResult(
        label="environment",
        force_medians=np.array(force_medians),
        location_medians=np.array(location_medians),
    )


def calibration_transfer_campaign(
    units: int = 4, carrier: float = 900e6, seed: int = 211,
    tolerances: FabricationTolerances = FabricationTolerances(),
) -> CampaignResult:
    """Read *toleranced* units with the *nominal* unit's calibration.

    Each trial fabricates a unit with manufacturing deviations, deploys
    it, and inverts its wireless phases with the nominal model — the
    zero-per-unit-calibration scenario.  The residual error quantifies
    how much per-unit trimming buys.
    """
    nominal_model = calibrated_model(carrier, fast=True)
    force_medians = []
    location_medians = []
    for unit in range(units):
        rng = np.random.default_rng(seed + unit)
        design = perturbed_design(tolerances=tolerances, rng=rng)
        transducer = ForceTransducer(design, force_points=16,
                                     location_points=17)
        tag = WiForceTag(transducer, clock_offset_ppm=20.0)
        config = OFDMSounderConfig(carrier_frequency=carrier)
        sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                    indoor_channel(carrier, rng=rng),
                                    rng=rng)
        reader = WiForceReader(sounder, nominal_model)
        force, location = _protocol(reader, rng)
        force_medians.append(force)
        location_medians.append(location)
    return CampaignResult(
        label="calibration-transfer",
        force_medians=np.array(force_medians),
        location_medians=np.array(location_medians),
    )


def per_unit_calibration_campaign(
    units: int = 4, carrier: float = 900e6, seed: int = 211,
    tolerances: FabricationTolerances = FabricationTolerances(),
) -> CampaignResult:
    """The same toleranced units, each with its own calibration.

    The reference point for the transfer study: how much of the
    transfer error disappears when every unit is trimmed individually.
    Uses the same seeds as :func:`calibration_transfer_campaign` so the
    two are unit-for-unit comparable.
    """
    force_medians = []
    location_medians = []
    for unit in range(units):
        rng = np.random.default_rng(seed + unit)
        design = perturbed_design(tolerances=tolerances, rng=rng)
        transducer = ForceTransducer(design, force_points=16,
                                     location_points=17)
        tag = WiForceTag(transducer, clock_offset_ppm=20.0)
        model = calibrate_harmonic_observable(
            tag, carrier, (0.020, 0.030, 0.040, 0.050, 0.060),
            np.linspace(0.5, 8.0, 12))
        config = OFDMSounderConfig(carrier_frequency=carrier)
        sounder = FrameLevelSounder(config, tag, BackscatterLink(),
                                    indoor_channel(carrier, rng=rng),
                                    rng=rng)
        reader = WiForceReader(sounder, model)
        reader.estimator = ForceLocationEstimator(model)
        force, location = _protocol(reader, rng)
        force_medians.append(force)
        location_medians.append(location)
    return CampaignResult(
        label="per-unit-calibration",
        force_medians=np.array(force_medians),
        location_medians=np.array(location_medians),
    )
