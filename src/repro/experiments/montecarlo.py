"""Monte-Carlo campaigns: robustness across environments and units.

The paper evaluates "in different indoor environments" (section 5);
these campaigns quantify that: re-run the accuracy protocol across many
random multipath draws, and separately across fabricated sensor units
(calibration-transfer study), reporting the distribution of medians.

Every trial is a module-level function seeded entirely by its
arguments, so campaigns shard across a
:class:`repro.experiments.parallel.CampaignExecutor` without changing
a single bit of the output.

The deterministic cold path of every trial — contact-table
construction for each fabricated unit and the per-unit harmonic
calibrations — flows through :mod:`repro.cache`, so repeated campaigns
(and campaign workers across processes, which inherit
``REPRO_CACHE_DIR`` through the environment) skip straight to the
RNG-dependent wireless protocol.  ``REPRO_CACHE=0`` recomputes
everything with bit-identical results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.calibration import calibrate_harmonic_observable
from repro.core.estimator import ForceLocationEstimator
from repro.core.pipeline import WiForceReader
from repro.channel.multipath import indoor_channel
from repro.channel.propagation import BackscatterLink
from repro.experiments.metrics import median_absolute_error
from repro.experiments.parallel import CampaignExecutor
from repro.experiments.scenarios import (
    build_wireless_scenario,
    calibrated_model,
)
from repro.mechanics.indenter import GroundTruthRig
from repro.reader.batch import FastSounder
from repro.reader.sounder import FrameLevelSounder
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.fabrication import FabricationTolerances, perturbed_design
from repro.sensor.tag import TagState, WiForceTag
from repro.sensor.transduction import ForceTransducer


@dataclass(frozen=True)
class CampaignResult:
    """Medians per trial of a Monte-Carlo campaign.

    Attributes:
        label: What varied across trials.
        force_medians: Median |force error| per trial [N].
        location_medians: Median |location error| per trial [m].
    """

    label: str
    force_medians: np.ndarray
    location_medians: np.ndarray

    @property
    def worst_force_median(self) -> float:
        """Worst trial's force median [N]."""
        return float(self.force_medians.max())

    @property
    def worst_location_median(self) -> float:
        """Worst trial's location median [m]."""
        return float(self.location_medians.max())


def _protocol(reader: WiForceReader,
              rng: np.random.Generator) -> Tuple[float, float]:
    rig = GroundTruthRig(rng=rng)
    force_errors = []
    location_errors = []
    for location in (0.025, 0.040, 0.058):
        for force in (1.5, 4.0, 7.0):
            press = rig.press(force, location)
            reading = reader.read(
                TagState(press.applied_force, press.applied_location),
                rebaseline=True)
            force_errors.append(reading.force - press.measured_force)
            location_errors.append(reading.location
                                   - press.commanded_location)
    return (median_absolute_error(force_errors),
            median_absolute_error(location_errors))


def _environment_trial(trial: int, carrier: float, fast: bool,
                       seed: int) -> Tuple[float, float]:
    """One environment draw: fresh clutter, fresh rig, same protocol."""
    rng = np.random.default_rng(seed + trial)
    reader = build_wireless_scenario(carrier, seed=seed + trial, fast=fast)
    return _protocol(reader, rng)


def _acquisition_trial(trial: int, carrier: float, fast: bool,
                       seed: int, window_s: float) -> Tuple[float, float]:
    """One environment draw paced by a frame-acquisition window.

    Models the deployed capture loop: a trial blocks for one sounder
    acquisition window (the real-time frame budget of the hardware
    front end) before the deterministic protocol runs.  The wait never
    touches the RNG, so the medians are bit-identical to
    :func:`_environment_trial` with the same arguments.
    """
    time.sleep(window_s)
    return _environment_trial(trial, carrier, fast, seed)


def _fabricated_unit(unit: int, carrier: float, seed: int,
                     tolerances: FabricationTolerances
                     ) -> Tuple[WiForceTag, FrameLevelSounder,
                                np.random.Generator]:
    """Fabricate and deploy one toleranced unit (shared by both
    unit campaigns; keeps their rng draw sequences identical)."""
    rng = np.random.default_rng(seed + unit)
    design = perturbed_design(tolerances=tolerances, rng=rng)
    transducer = ForceTransducer(design, force_points=16,
                                 location_points=17)
    tag = WiForceTag(transducer, clock_offset_ppm=20.0)
    config = OFDMSounderConfig(carrier_frequency=carrier)
    sounder = FastSounder(config, tag, BackscatterLink(),
                          indoor_channel(carrier, rng=rng),
                          rng=rng)
    return tag, sounder, rng


def _transfer_trial(unit: int, carrier: float, seed: int,
                    tolerances: FabricationTolerances,
                    fast: bool = True) -> Tuple[float, float]:
    """One toleranced unit read with the nominal calibration."""
    _, sounder, rng = _fabricated_unit(unit, carrier, seed, tolerances)
    nominal_model = calibrated_model(carrier, fast=fast)
    reader = WiForceReader(sounder, nominal_model)
    return _protocol(reader, rng)


def _per_unit_trial(unit: int, carrier: float, seed: int,
                    tolerances: FabricationTolerances
                    ) -> Tuple[float, float]:
    """One toleranced unit read with its own calibration."""
    tag, sounder, rng = _fabricated_unit(unit, carrier, seed, tolerances)
    model = calibrate_harmonic_observable(
        tag, carrier, (0.020, 0.030, 0.040, 0.050, 0.060),
        np.linspace(0.5, 8.0, 12))
    reader = WiForceReader(sounder, model)
    reader.estimator = ForceLocationEstimator(model)
    return _protocol(reader, rng)


def _training_sweep_trial(level: int, carrier: float, fast: bool,
                          tx_power_dbm: float,
                          forces: Tuple[float, ...],
                          locations: Tuple[float, ...],
                          repeats: int, seed: int,
                          chunk_captures: int = 64,
                          baseline_groups: int = 32):
    """One SNR level of a surrogate training sweep.

    Builds a fresh deployment at ``tx_power_dbm`` (its own clutter
    draw), then drives the (force, location) x repeats press grid
    through
    :meth:`~repro.core.pipeline.WiForceReader.measure_phases_batch` —
    one fused :meth:`~repro.reader.batch.FastSounder.capture_batch`
    pass per chunk instead of per-press captures.  The sweep
    rebaselines every ``chunk_captures`` presses with a
    ``baseline_groups``-group drift fit: a single baseline's linear
    clock-drift extrapolation drifts ~1.5 rad across a thousand
    contiguous captures, which would scramble the training labels
    (the paper's protocol re-references between presses for the same
    reason).  Seeded entirely by its arguments, so it shards across
    warm campaign pools bit-identically to a serial run.

    Returns:
        (phi1, phi2, force, location, tx_power_dbm) arrays, one row
        per press.
    """
    reader = build_wireless_scenario(carrier, seed=seed + level,
                                     fast=fast,
                                     tx_power_dbm=tx_power_dbm,
                                     baseline_groups=baseline_groups)
    force_grid, location_grid = np.meshgrid(
        np.asarray(forces, dtype=float),
        np.asarray(locations, dtype=float), indexing="ij")
    truth_force = np.tile(force_grid.ravel(), repeats)
    truth_location = np.tile(location_grid.ravel(), repeats)
    states = [TagState(float(force), float(location))
              for force, location in zip(truth_force, truth_location)]
    phi1 = np.zeros(truth_force.size)
    phi2 = np.zeros(truth_force.size)
    step = max(int(chunk_captures), 1)
    for start in range(0, len(states), step):
        reader.capture_baseline()
        chunk1, chunk2 = reader.measure_phases_batch(
            states[start:start + step])
        phi1[start:start + step] = chunk1
        phi2[start:start + step] = chunk2
    return (phi1, phi2, truth_force, truth_location,
            np.full(truth_force.size, float(tx_power_dbm)))


def training_sweep_campaign(carrier: float = 900e6, fast: bool = True,
                            tx_power_sweep: Tuple[float, ...] = (10.0,),
                            forces: Tuple[float, ...] = (),
                            locations: Tuple[float, ...] = (),
                            repeats: int = 1, seed: int = 17,
                            chunk_captures: int = 64,
                            baseline_groups: int = 32,
                            executor: Optional[CampaignExecutor] = None):
    """Surrogate training sweep, one campaign trial per SNR level.

    The campaign-runner face of :mod:`repro.surrogate.data`: each
    transmit-power level is one :func:`_training_sweep_trial`, sharded
    across the executor's persistent warm pools (or run serially when
    ``executor`` is None) and concatenated in level order.

    Returns:
        (phi1, phi2, force, location, tx_power_dbm) stacked arrays.
    """
    argument_lists = [
        (level, carrier, fast, float(power), tuple(forces),
         tuple(locations), repeats, seed, int(chunk_captures),
         int(baseline_groups))
        for level, power in enumerate(tx_power_sweep)
    ]
    if executor is None:
        rows = [_training_sweep_trial(*arguments)
                for arguments in argument_lists]
    else:
        rows = executor.run(_training_sweep_trial, argument_lists).results
    return tuple(np.concatenate(column) for column in zip(*rows))


def _campaign(label: str, trial, argument_lists,
              executor: Optional[CampaignExecutor]) -> CampaignResult:
    execution = (executor or CampaignExecutor()).run(trial, argument_lists)
    if execution.results:
        force_medians, location_medians = zip(*execution.results)
    else:
        force_medians, location_medians = (), ()
    return CampaignResult(
        label=label,
        force_medians=np.array(force_medians),
        location_medians=np.array(location_medians),
    )


def environment_campaign(trials: int = 8, carrier: float = 900e6,
                         fast: bool = True, seed: int = 101,
                         executor: Optional[CampaignExecutor] = None
                         ) -> CampaignResult:
    """Accuracy across random indoor environments (clutter draws)."""
    return _campaign(
        "environment", _environment_trial,
        [(trial, carrier, fast, seed) for trial in range(trials)],
        executor)


def acquisition_campaign(trials: int = 8, carrier: float = 900e6,
                         fast: bool = True, seed: int = 101,
                         window_s: float = 0.1,
                         executor: Optional[CampaignExecutor] = None
                         ) -> CampaignResult:
    """The environment campaign paced at hardware acquisition rate.

    Each trial waits out one frame-acquisition window before its
    compute — the shape of a hardware-in-the-loop data-collection
    campaign, where the sounder's frame rate (not the host CPU) sets
    the floor on trial latency.  This is the benchmark workload for
    the campaign executor: overlapping acquisition windows across
    workers measures executor concurrency and orchestration overhead
    on any machine, where a purely compute-bound campaign would just
    measure the host's core count.  Results are bit-identical to
    :func:`environment_campaign` with the same trial arguments.
    """
    return _campaign(
        "acquisition", _acquisition_trial,
        [(trial, carrier, fast, seed, window_s) for trial in range(trials)],
        executor)


def calibration_transfer_campaign(
    units: int = 4, carrier: float = 900e6, seed: int = 211,
    tolerances: FabricationTolerances = FabricationTolerances(),
    executor: Optional[CampaignExecutor] = None,
    fast: bool = True,
) -> CampaignResult:
    """Read *toleranced* units with the *nominal* unit's calibration.

    Each trial fabricates a unit with manufacturing deviations, deploys
    it, and inverts its wireless phases with the nominal model — the
    zero-per-unit-calibration scenario.  The residual error quantifies
    how much per-unit trimming buys.

    Args:
        fast: Calibrate the nominal model on the reduced-resolution
            transducer (the default, matching the fast scenario
            builders).  ``False`` uses the full-resolution nominal
            model — much slower cold, but its contact tables and fit
            come from the artifact cache on every run after the first.
    """
    return _campaign(
        "calibration-transfer", _transfer_trial,
        [(unit, carrier, seed, tolerances, fast) for unit in range(units)],
        executor)


def per_unit_calibration_campaign(
    units: int = 4, carrier: float = 900e6, seed: int = 211,
    tolerances: FabricationTolerances = FabricationTolerances(),
    executor: Optional[CampaignExecutor] = None,
) -> CampaignResult:
    """The same toleranced units, each with its own calibration.

    The reference point for the transfer study: how much of the
    transfer error disappears when every unit is trimmed individually.
    Uses the same seeds as :func:`calibration_transfer_campaign` so the
    two are unit-for-unit comparable.
    """
    return _campaign(
        "per-unit-calibration", _per_unit_trial,
        [(unit, carrier, seed, tolerances) for unit in range(units)],
        executor)
