"""Design-space sensitivity sweeps.

Beyond reproducing the paper's figures, a downstream adopter needs to
know how the accuracy moves with the knobs they control: transmit
power, integration time (groups per reading), environment clutter, and
calibration density.  Each sweep runs the Figs. 13-14 protocol at a
reduced scale across one knob and reports the median errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.channel.multipath import indoor_channel
from repro.channel.propagation import BackscatterLink
from repro.core.calibration import calibrate_harmonic_observable
from repro.core.pipeline import WiForceReader
from repro.experiments.metrics import median_absolute_error
from repro.experiments.scenarios import (
    calibrated_model,
    default_transducer,
    fast_transducer,
)
from repro.mechanics.indenter import GroundTruthRig
from repro.reader.batch import FastSounder
from repro.reader.waveform import OFDMSounderConfig
from repro.sensor.tag import TagState, WiForceTag


@dataclass(frozen=True)
class SweepResult:
    """One knob's sweep: value -> (force median [N], location median [m])."""

    knob: str
    points: Tuple[Tuple[float, float, float], ...]

    def force_medians(self) -> Dict[float, float]:
        """Knob value -> median force error."""
        return {value: force for value, force, _ in self.points}

    def location_medians(self) -> Dict[float, float]:
        """Knob value -> median location error."""
        return {value: location for value, _, location in self.points}


def _measure(reader: WiForceReader, rng: np.random.Generator,
             presses: int = 9) -> Tuple[float, float]:
    rig = GroundTruthRig(rng=rng)
    force_errors = []
    location_errors = []
    forces = np.linspace(1.5, 7.5, 3)
    locations = (0.025, 0.040, 0.058)
    for location in locations:
        for force in forces:
            press = rig.press(float(force), float(location))
            reading = reader.read(
                TagState(press.applied_force, press.applied_location),
                rebaseline=True)
            force_errors.append(reading.force - press.measured_force)
            location_errors.append(reading.location
                                   - press.commanded_location)
    return (median_absolute_error(force_errors),
            median_absolute_error(location_errors))


def _build_reader(carrier: float, fast: bool, seed: int,
                  tx_power_dbm: float = 10.0,
                  groups_per_capture: int = 2,
                  clutter_to_direct_db: float = 10.0,
                  link: BackscatterLink = None) -> WiForceReader:
    rng = np.random.default_rng(seed)
    transducer = fast_transducer() if fast else default_transducer()
    tag = WiForceTag(transducer, clock_offset_ppm=20.0)
    link = link or BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5,
                                   tx_to_rx=1.0)
    clutter = indoor_channel(carrier,
                             clutter_to_direct_db=clutter_to_direct_db,
                             rng=rng)
    config = OFDMSounderConfig(carrier_frequency=carrier,
                               tx_power_dbm=tx_power_dbm)
    sounder = FastSounder(config, tag, link, clutter, rng=rng)
    model = calibrated_model(carrier, fast=fast)
    return WiForceReader(sounder, model,
                         groups_per_capture=groups_per_capture)


def sweep_tx_power(carrier: float = 900e6, fast: bool = True,
                   powers_dbm: Sequence[float] = (-10.0, 0.0, 10.0),
                   seed: int = 41) -> SweepResult:
    """Accuracy vs reader transmit power."""
    points = []
    for index, power in enumerate(powers_dbm):
        rng = np.random.default_rng(seed + index)
        reader = _build_reader(carrier, fast, seed + index,
                               tx_power_dbm=float(power))
        force, location = _measure(reader, rng)
        points.append((float(power), force, location))
    return SweepResult(knob="tx_power_dbm", points=tuple(points))


def sweep_integration(carrier: float = 900e6, fast: bool = True,
                      groups: Sequence[int] = (1, 2, 4),
                      seed: int = 43) -> SweepResult:
    """Accuracy vs phase groups averaged per reading."""
    points = []
    for index, count in enumerate(groups):
        rng = np.random.default_rng(seed + index)
        reader = _build_reader(carrier, fast, seed + index,
                               groups_per_capture=int(count))
        force, location = _measure(reader, rng)
        points.append((float(count), force, location))
    return SweepResult(knob="groups_per_capture", points=tuple(points))


def sweep_range(carrier: float = 900e6, fast: bool = True,
                separations: Sequence[float] = (1.0, 2.0, 4.0),
                seed: int = 47) -> SweepResult:
    """Accuracy vs deployment scale (TX-RX separation, tag midway)."""
    points = []
    for index, separation in enumerate(separations):
        rng = np.random.default_rng(seed + index)
        link = BackscatterLink(tx_to_tag=separation / 2.0,
                               tag_to_rx=separation / 2.0,
                               tx_to_rx=separation)
        reader = _build_reader(carrier, fast, seed + index, link=link)
        force, location = _measure(reader, rng)
        points.append((float(separation), force, location))
    return SweepResult(knob="tx_rx_separation_m", points=tuple(points))


def sweep_calibration_density(carrier: float = 900e6, fast: bool = True,
                              location_counts: Sequence[int] = (3, 5, 9),
                              seed: int = 53) -> SweepResult:
    """Accuracy vs number of calibrated locations (the paper uses 5)."""
    transducer = fast_transducer() if fast else default_transducer()
    tag = WiForceTag(transducer)
    forces = np.linspace(0.5, 8.0, 16)
    points = []
    for index, count in enumerate(location_counts):
        locations = np.linspace(0.020, 0.060, int(count))
        model = calibrate_harmonic_observable(tag, carrier, locations,
                                              forces)
        rng = np.random.default_rng(seed + index)
        reader = _build_reader(carrier, fast, seed + index)
        reader.model = model
        reader.estimator.model = model
        # Rebuild the estimator against the new model cleanly.
        from repro.core.estimator import ForceLocationEstimator
        reader.estimator = ForceLocationEstimator(model)
        force, location = _measure(reader, rng)
        points.append((float(count), force, location))
    return SweepResult(knob="calibration_locations", points=tuple(points))
