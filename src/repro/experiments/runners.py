"""One runner per paper figure/table (see DESIGN.md's index).

Every runner builds its scenario through the public API, executes the
paper's protocol, and returns a typed result object.  Benchmarks print
these; integration tests assert their shape claims (who wins, rough
factors, crossovers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.digital_backscatter import (
    DigitalBudget,
    digital_backscatter_power_budget,
)
from repro.baselines.rfid_touch import RFIDTouchArray
from repro.baselines.strain_rss import NotchReader, NotchStrainSensor
from repro.channel.multipath import indoor_channel
from repro.channel.propagation import BackscatterLink
from repro.channel.tissue import body_phantom
from repro.core.calibration import harmonic_differential_phases
from repro.core.harmonics import HarmonicExtractor, integer_period_group_length
from repro.core.phase import phase_stability_deg
from repro.core.pipeline import WiForceReader
from repro.errors import DynamicRangeError
from repro.experiments.fingertip import FingertipProfile
from repro.experiments.metrics import median_absolute_error
from repro.experiments.parallel import CampaignExecutor
from repro.experiments.scenarios import (
    EVALUATION_LOCATIONS,
    build_wireless_scenario,
    calibrated_model,
    default_transducer,
    fast_transducer,
    thin_trace_transducer,
)
from repro.mechanics.indenter import GroundTruthRig
from repro.reader.batch import FastSounder
from repro.reader.waveform import OFDMSounderConfig
from repro.rf.elements import line_twoport
from repro.rf.microstrip import MicrostripLine, synthesize_ratio_for_impedance
from repro.sensor.clock import naive_clocking, wiforce_clocking
from repro.sensor.power import wiforce_power_budget, PowerBudget
from repro.sensor.tag import TagState, WiForceTag
from repro.sensor.transduction import ForceTransducer


def _transducer(fast: bool) -> ForceTransducer:
    return fast_transducer() if fast else default_transducer()


# ---------------------------------------------------------------- Fig. 4


@dataclass(frozen=True)
class TransductionResult:
    """Fig. 4c: soft beam vs bare thin trace phase-force response."""

    forces: np.ndarray
    soft_phase_deg: np.ndarray
    thin_phase_deg: np.ndarray

    @property
    def soft_swing_deg(self) -> float:
        """Phase dynamic range of the soft-beam sensor."""
        return float(self.soft_phase_deg.max() - self.soft_phase_deg.min())

    @property
    def thin_swing_deg(self) -> float:
        """Phase dynamic range of the bare trace."""
        return float(self.thin_phase_deg.max() - self.thin_phase_deg.min())


def run_fig04(fast: bool = True, carrier: float = 2.4e9,
              location: float = 0.040) -> TransductionResult:
    """Fig. 4c: the soft beam is what makes the line force sensitive."""
    forces = np.linspace(0.5, 6.0, 12)
    soft = _transducer(fast)
    thin = thin_trace_transducer()
    soft_phase = np.array([
        soft.differential_phases(carrier, float(f), location).port1
        for f in forces])
    thin_phase = np.array([
        thin.differential_phases(carrier, float(f), location).port1
        for f in forces])
    return TransductionResult(
        forces=forces,
        soft_phase_deg=np.degrees(np.unwrap(soft_phase)),
        thin_phase_deg=np.degrees(np.unwrap(thin_phase)),
    )


# ---------------------------------------------------------------- Fig. 5


@dataclass(frozen=True)
class BeamProfilesResult:
    """Fig. 5b: per-location phase-force profiles at both ports."""

    locations: Tuple[float, ...]
    forces: np.ndarray
    port1_deg: np.ndarray  # (locations, forces)
    port2_deg: np.ndarray

    def swing_deg(self, location_index: int, port: int) -> float:
        """Phase dynamic range for one (location, port) profile."""
        profile = (self.port1_deg if port == 1 else
                   self.port2_deg)[location_index]
        return float(profile.max() - profile.min())


def run_fig05(fast: bool = True, carrier: float = 2.4e9,
              locations: Sequence[float] = (0.020, 0.040, 0.060)
              ) -> BeamProfilesResult:
    """Fig. 5b: symmetric response at the centre, asymmetric off-centre."""
    transducer = _transducer(fast)
    forces = np.linspace(0.5, 8.0, 16)
    port1 = np.zeros((len(locations), forces.size))
    port2 = np.zeros_like(port1)
    for i, location in enumerate(locations):
        for j, force in enumerate(forces):
            phases = transducer.differential_phases(carrier, float(force),
                                                    float(location))
            port1[i, j] = phases.port1
            port2[i, j] = phases.port2
    return BeamProfilesResult(
        locations=tuple(float(loc) for loc in locations),
        forces=forces,
        port1_deg=np.degrees(np.unwrap(port1, axis=1)),
        port2_deg=np.degrees(np.unwrap(port2, axis=1)),
    )


# ------------------------------------------------------------- Figs. 7-8


@dataclass(frozen=True)
class IntermodulationResult:
    """Figs. 7-8: readout-tone identity integrity per clocking scheme.

    The quantity that matters is whether each readout tone carries its
    own port's phase.  The reference phase for port i is the isolated
    observable ``angle(Gamma_on_i - Gamma_off_off)``; intermodulation
    (both switches on simultaneously) corrupts the tone away from it.
    """

    overlap_wiforce: float
    overlap_naive: float
    wiforce_tone_db: Dict[float, float]
    naive_tone_db: Dict[float, float]
    wiforce_phase_error_deg: Tuple[float, float]
    naive_phase_error_deg: Tuple[float, float]

    @property
    def wiforce_worst_error_deg(self) -> float:
        """Worst readout-tone phase corruption (WiForce scheme)."""
        return max(abs(err) for err in self.wiforce_phase_error_deg)

    @property
    def naive_worst_error_deg(self) -> float:
        """Worst readout-tone phase corruption (naive scheme)."""
        return max(abs(err) for err in self.naive_phase_error_deg)


def _tone_value(offsets: np.ndarray, spectrum: np.ndarray,
                tone: float) -> complex:
    index = int(np.argmin(np.abs(offsets - tone)))
    return complex(spectrum[index])


def run_fig07(fast: bool = True, carrier: float = 900e6,
              force: float = 0.0, location: float = 0.040
              ) -> IntermodulationResult:
    """Figs. 7-8: duty-cycled clocks keep the tone identities clean.

    The corruption is worst in the *untouched* state (the default
    here): with no shorting points the line conducts end to end, so
    whenever both naive switches are on the ends couple through the
    line and cross-modulate — exactly the leakage Fig. 7 illustrates.
    The untouched phase is also the differential measurement's
    reference, so corrupting it corrupts every reading.
    """
    transducer = _transducer(fast)
    state = TagState(force, location)
    base = 1e3
    results = {}
    for name, scheme in (("wiforce", wiforce_clocking(base)),
                         ("naive", naive_clocking(base))):
        tag = WiForceTag(transducer, clocking=scheme)
        grid = np.array([carrier])
        reflections = tag.state_reflections(grid, state)
        resting = reflections[(False, False)][0]
        harmonic1 = int(round(scheme.readout_port1
                              / scheme.clock_port1.frequency))
        harmonic2 = int(round(scheme.readout_port2
                              / scheme.clock_port2.frequency))
        expected = (
            np.angle((reflections[(True, False)][0] - resting)
                     * scheme.clock_port1.fourier_coefficient(harmonic1)),
            np.angle((reflections[(False, True)][0] - resting)
                     * scheme.clock_port2.fourier_coefficient(harmonic2)),
        )
        offsets, spectrum = tag.modulation_spectrum(carrier, state,
                                                    samples=16384)
        readout = (scheme.readout_port1, scheme.readout_port2)
        tone_values = [_tone_value(offsets, spectrum, tone)
                       for tone in readout]
        tone_db = {tone: float(20.0 * np.log10(abs(value) + 1e-15))
                   for tone, value in zip(readout, tone_values)}
        errors = tuple(
            float(np.degrees(np.angle(
                value * np.exp(-1j * reference))))
            for value, reference in zip(tone_values, expected))
        results[name] = (scheme.overlap_fraction(), tone_db, errors)
    return IntermodulationResult(
        overlap_wiforce=results["wiforce"][0],
        overlap_naive=results["naive"][0],
        wiforce_tone_db=results["wiforce"][1],
        naive_tone_db=results["naive"][1],
        wiforce_phase_error_deg=results["wiforce"][2],
        naive_phase_error_deg=results["naive"][2],
    )


# ---------------------------------------------------------------- Fig. 10


@dataclass(frozen=True)
class SensorRFResult:
    """Fig. 10: broadband S-parameters of the untouched sensor."""

    frequency: np.ndarray
    s11_db: np.ndarray
    s21_db: np.ndarray
    s21_phase_residual_deg: float

    @property
    def worst_s11_db(self) -> float:
        """Largest (worst) S11 over the band."""
        return float(self.s11_db.max())

    @property
    def worst_s21_db(self) -> float:
        """Largest through loss over the band."""
        return float(self.s21_db.min())


def run_fig10(points: int = 301) -> SensorRFResult:
    """Fig. 10: S11 < -10 dB and linear S21 phase across 0-3 GHz."""
    line = MicrostripLine()
    frequency = np.linspace(10e6, 3e9, points)
    network = line_twoport(line, frequency)
    s11_db = 20.0 * np.log10(np.abs(network.s11) + 1e-15)
    s21_db = 20.0 * np.log10(np.abs(network.s21) + 1e-15)
    phase = np.unwrap(np.angle(network.s21))
    fit = np.polyval(np.polyfit(frequency, phase, 1), frequency)
    residual = float(np.degrees(np.max(np.abs(phase - fit))))
    return SensorRFResult(frequency=frequency, s11_db=s11_db, s21_db=s21_db,
                          s21_phase_residual_deg=residual)


# ---------------------------------------------------------------- Table 1


@dataclass(frozen=True)
class Table1Result:
    """Table 1: VNA vs model vs wireless phase-force profiles."""

    carrier: float
    locations: Tuple[float, ...]
    forces: np.ndarray
    vna_port1_deg: np.ndarray      # (locations, forces) port observable
    model_port1_deg: np.ndarray    # harmonic-domain model prediction
    wireless_port1_deg: np.ndarray  # measured over the air
    vna_port2_deg: np.ndarray
    model_port2_deg: np.ndarray
    wireless_port2_deg: np.ndarray

    def wireless_model_rmse_deg(self) -> float:
        """RMS wireless-vs-model mismatch across all profiles."""
        delta1 = self.wireless_port1_deg - self.model_port1_deg
        delta2 = self.wireless_port2_deg - self.model_port2_deg
        return float(np.sqrt(np.mean(np.square(
            np.concatenate([delta1.ravel(), delta2.ravel()])))))


def run_table1(carrier: float = 900e6, fast: bool = True,
               locations: Sequence[float] = EVALUATION_LOCATIONS,
               force_points: int = 8,
               seed: Optional[int] = 11) -> Table1Result:
    """Table 1: wireless phases track VNA/model curves at 20/40/55/60 mm."""
    transducer = _transducer(fast)
    model = calibrated_model(carrier, fast=fast)
    reader = build_wireless_scenario(carrier, seed=seed, fast=fast)
    reader.capture_baseline()
    forces = np.linspace(1.0, 8.0, force_points)

    shape = (len(locations), forces.size)
    vna1 = np.zeros(shape)
    vna2 = np.zeros(shape)
    model1 = np.zeros(shape)
    model2 = np.zeros(shape)
    wireless1 = np.zeros(shape)
    wireless2 = np.zeros(shape)
    for i, location in enumerate(locations):
        for j, force in enumerate(forces):
            port = transducer.differential_phases(carrier, float(force),
                                                  float(location))
            vna1[i, j], vna2[i, j] = port.port1, port.port2
            model1[i, j], model2[i, j] = model.predict(float(force),
                                                       float(location))
            reading = reader.read(TagState(float(force), float(location)))
            wireless1[i, j] = reading.phi1
            wireless2[i, j] = reading.phi2

    def wrapdeg(values: np.ndarray) -> np.ndarray:
        return np.degrees(np.angle(np.exp(1j * values)))

    return Table1Result(
        carrier=carrier,
        locations=tuple(float(loc) for loc in locations),
        forces=forces,
        vna_port1_deg=wrapdeg(vna1),
        model_port1_deg=wrapdeg(model1),
        wireless_port1_deg=wrapdeg(wireless1),
        vna_port2_deg=wrapdeg(vna2),
        model_port2_deg=wrapdeg(model2),
        wireless_port2_deg=wrapdeg(wireless2),
    )


# ----------------------------------------------------------- Figs. 13-14


@dataclass(frozen=True)
class WirelessAccuracyResult:
    """Figs. 13-14: force and location error samples for one carrier."""

    carrier: float
    force_errors: np.ndarray
    location_errors: np.ndarray
    per_location: Dict[float, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict)

    @property
    def median_force_error(self) -> float:
        """Median |force error| [N]."""
        return median_absolute_error(self.force_errors)

    @property
    def median_location_error(self) -> float:
        """Median |location error| [m]."""
        return median_absolute_error(self.location_errors)


def run_wireless_accuracy(carrier: float = 900e6, fast: bool = True,
                          locations: Sequence[float] = EVALUATION_LOCATIONS,
                          force_points: int = 6, repeats: int = 2,
                          seed: int = 5) -> WirelessAccuracyResult:
    """Figs. 13-14 protocol: presses at 20/40/55/60 mm, 0.5-8 N."""
    rng = np.random.default_rng(seed)
    reader = build_wireless_scenario(carrier, seed=seed, fast=fast)
    reader.capture_baseline()
    rig = GroundTruthRig(rng=rng)
    forces = np.linspace(1.0, 8.0, force_points)
    force_errors: List[float] = []
    location_errors: List[float] = []
    per_location: Dict[float, Tuple[List[float], List[float]]] = {
        float(loc): ([], []) for loc in locations}
    for location in locations:
        for force in forces:
            for _ in range(repeats):
                press = rig.press(float(force), float(location))
                reading = reader.read(
                    TagState(press.applied_force, press.applied_location),
                    rebaseline=True)
                force_error = reading.force - press.measured_force
                location_error = reading.location - press.commanded_location
                force_errors.append(force_error)
                location_errors.append(location_error)
                per_location[float(location)][0].append(force_error)
                per_location[float(location)][1].append(location_error)
    return WirelessAccuracyResult(
        carrier=carrier,
        force_errors=np.array(force_errors),
        location_errors=np.array(location_errors),
        per_location={loc: (np.array(fe), np.array(le))
                      for loc, (fe, le) in per_location.items()},
    )


# ---------------------------------------------------------------- Fig. 16


@dataclass(frozen=True)
class TissueResult:
    """Fig. 16: through-tissue sensing with direct-path isolation."""

    carrier: float
    tissue_one_way_loss_db: float
    saturated_without_plate: bool
    force_errors: np.ndarray

    @property
    def median_force_error(self) -> float:
        """Median |force error| through the phantom [N]."""
        return median_absolute_error(self.force_errors)


def run_tissue(fast: bool = True, carrier: float = 900e6,
               location: float = 0.060, force_points: int = 6,
               repeats: int = 2, seed: int = 9,
               extra_tag_path_loss_db: float = 14.0) -> TissueResult:
    """Fig. 16: sensing at 60 mm through the muscle/fat/skin phantom.

    Without the metal plate the direct path saturates the USRP's 60 dB
    dynamic range and the backscatter is undecodable (the runner
    verifies that failure); with the plate (direct path attenuated
    ~45 dB) the sensing works with slightly elevated error.

    ``extra_tag_path_loss_db`` models the additional per-pass insertion
    / refraction / misalignment losses of the physical phantom setup
    beyond the planar-slab transmission (the paper reports ~110 dB
    two-way loss; the plain slab model is more optimistic).
    """
    phantom = body_phantom()
    one_way = phantom.one_way_loss_db(carrier) + extra_tag_path_loss_db
    transducer = _transducer(fast)
    tag = WiForceTag(transducer)
    model = calibrated_model(carrier, fast=fast)
    rng = np.random.default_rng(seed)
    config = OFDMSounderConfig(carrier_frequency=carrier)

    # Without the metal plate: full direct path, tag buried below the
    # quantization floor.
    open_link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0,
                                tag_blockage_db=one_way)
    open_sounder = FastSounder(config, tag, open_link,
                                     indoor_channel(carrier, rng=rng),
                                     rng=rng)
    saturated = False
    try:
        open_sounder.assert_decodable(TagState(4.0, location),
                                      min_snr_db=10.0)
    except DynamicRangeError:
        saturated = True

    # With the plate: direct path knocked down ~45 dB.
    plate_link = BackscatterLink(tx_to_tag=0.5, tag_to_rx=0.5, tx_to_rx=1.0,
                                 tag_blockage_db=one_way,
                                 direct_blockage_db=45.0)
    plate_sounder = FastSounder(config, tag, plate_link,
                                      indoor_channel(carrier, rng=rng),
                                      rng=rng)
    reader = WiForceReader(plate_sounder, model, groups_per_capture=6)
    reader.capture_baseline()
    rig = GroundTruthRig(rng=rng)
    errors = []
    for force in np.linspace(1.0, 8.0, force_points):
        for _ in range(repeats):
            press = rig.press(float(force), location)
            reading = reader.read(
                TagState(press.applied_force, press.applied_location),
                rebaseline=True)
            errors.append(reading.force - press.measured_force)
    return TissueResult(
        carrier=carrier,
        tissue_one_way_loss_db=one_way,
        saturated_without_plate=saturated,
        force_errors=np.array(errors),
    )


# ---------------------------------------------------------------- Fig. 17


@dataclass(frozen=True)
class FingertipResult:
    """Fig. 17: fingertip presses at 60 mm with stepped force levels."""

    target_location: float
    location_estimates: np.ndarray
    level_targets: np.ndarray
    level_estimates: np.ndarray  # mean estimated force per level

    @property
    def location_histogram_spread(self) -> float:
        """Std of the location estimates [m] (histogram width)."""
        return float(np.std(self.location_estimates))

    @property
    def levels_monotonic(self) -> bool:
        """Whether the estimated levels recover the increasing order."""
        return bool(np.all(np.diff(self.level_estimates) > 0.0))


def run_fingertip(fast: bool = True, carrier: float = 2.4e9,
                  seed: int = 21) -> FingertipResult:
    """Fig. 17: localization within a fingertip width; levels tracked.

    The operator lifts the finger between force levels (as in the
    paper's level-by-level protocol), giving the reader an untouched
    gap to re-reference in — which bounds the tag-oscillator phase
    wander per level.
    """
    rng = np.random.default_rng(seed)
    reader = build_wireless_scenario(carrier, seed=seed, fast=fast)
    profile = FingertipProfile(rng=rng)
    presses = profile.generate()
    locations = []
    per_level: Dict[int, List[float]] = {}
    last_level = -1
    for press in presses:
        if press.level_index != last_level:
            reader.capture_baseline()
            last_level = press.level_index
        reading = reader.read(press.state)
        locations.append(reading.location)
        per_level.setdefault(press.level_index, []).append(reading.force)
    level_estimates = np.array([
        float(np.mean(per_level[i])) for i in sorted(per_level)])
    return FingertipResult(
        target_location=profile.location,
        location_estimates=np.array(locations),
        level_targets=np.array(profile.levels),
        level_estimates=level_estimates,
    )


# ---------------------------------------------------------------- Fig. 18


@dataclass(frozen=True)
class DistanceResult:
    """Fig. 18 (+ section 5.4 range claim): phase stability vs geometry."""

    positions_from_rx: np.ndarray
    stability_deg: np.ndarray
    separations: np.ndarray
    separation_stability_deg: np.ndarray

    @property
    def best_stability_deg(self) -> float:
        """Best (smallest) stability along the 4 m line."""
        return float(self.stability_deg.min())

    @property
    def worst_stability_deg(self) -> float:
        """Worst stability along the 4 m line."""
        return float(self.stability_deg.max())


def _stability_for_link(link: BackscatterLink, tag: WiForceTag,
                        carrier: float, groups: int,
                        rng: np.random.Generator) -> float:
    config = OFDMSounderConfig(carrier_frequency=carrier, tx_power_dbm=10.0)
    sounder = FastSounder(config, tag, link,
                                indoor_channel(carrier, rng=rng), rng=rng)
    group_length = integer_period_group_length(
        config.frame_period, tag.clocking.clock_port1.frequency)
    extractor = HarmonicExtractor(tones=(tag.clocking.readout_port1,),
                                  group_length=group_length)
    stream = sounder.capture(TagState(), groups * group_length)
    matrix = extractor.extract(stream)[tag.clocking.readout_port1]
    return phase_stability_deg(matrix)


def _distance_trial(rng_seed: int, tx_to_tag: float, tag_to_rx: float,
                    tx_to_rx: float, carrier: float, fast: bool,
                    groups: int) -> float:
    """One geometry's phase stability (module-level so it shards)."""
    transducer = _transducer(fast)
    tag = WiForceTag(transducer, clock_offset_ppm=20.0)
    link = BackscatterLink(tx_to_tag=tx_to_tag, tag_to_rx=tag_to_rx,
                           tx_to_rx=tx_to_rx)
    return _stability_for_link(link, tag, carrier, groups,
                               np.random.default_rng(rng_seed))


def run_distance(fast: bool = True, carrier: float = 900e6,
                 tx_rx_separation: float = 4.0,
                 positions: Sequence[float] = (1.0, 1.5, 2.0),
                 separations: Sequence[float] = (2.0, 4.0, 10.0, 30.0),
                 groups: int = 8, seed: int = 3,
                 executor: Optional[CampaignExecutor] = None
                 ) -> DistanceResult:
    """Fig. 18: sensor swept along a 4 m TX..RX line, plus a total-range
    sweep with the sensor at the midpoint (the up-to-5 m reach claim).

    Both sweeps run through one :class:`CampaignExecutor` batch; every
    geometry is seeded independently so sharding cannot change the
    numbers.
    """
    arguments = [
        (seed + index, tx_rx_separation - from_rx, from_rx,
         tx_rx_separation, carrier, fast, groups)
        for index, from_rx in enumerate(positions)
    ] + [
        (seed + 100 + index, separation / 2.0, separation / 2.0,
         separation, carrier, fast, groups)
        for index, separation in enumerate(separations)
    ]
    results = (executor or CampaignExecutor()).map(_distance_trial,
                                                   arguments)
    stabilities = results[:len(positions)]
    range_stabilities = results[len(positions):]
    return DistanceResult(
        positions_from_rx=np.asarray(list(positions), dtype=float),
        stability_deg=np.array(stabilities),
        separations=np.asarray(list(separations), dtype=float),
        separation_stability_deg=np.array(range_stabilities),
    )


# ---------------------------------------------------------------- Fig. 19


@dataclass(frozen=True)
class ImpedanceRatioResult:
    """Fig. 19: 50-ohm width/height ratio, narrow vs wide ground."""

    ratios: np.ndarray
    insertion_loss_narrow_db: np.ndarray
    insertion_loss_wide_db: np.ndarray
    optimal_ratio_narrow: float
    optimal_ratio_wide: float


def run_impedance_ratio(carrier: float = 2.4e9,
                        ratio_points: int = 41) -> ImpedanceRatioResult:
    """Fig. 19: wide ground shifts the optimal w:h from ~5:1 to ~4:1."""
    ratios = np.linspace(2.0, 8.0, ratio_points)
    height = 0.63e-3
    frequency = np.array([carrier])
    narrow = np.zeros(ratios.size)
    wide = np.zeros(ratios.size)
    for index, ratio in enumerate(ratios):
        width = float(ratio) * height
        line_narrow = MicrostripLine(width=width, ground_width=width,
                                     height=height)
        line_wide = MicrostripLine(width=width,
                                   ground_width=width + 3.5e-3,
                                   height=height)
        narrow[index] = 20.0 * np.log10(np.abs(
            line_twoport(line_narrow, frequency).s21[0]))
        wide[index] = 20.0 * np.log10(np.abs(
            line_twoport(line_wide, frequency).s21[0]))
    return ImpedanceRatioResult(
        ratios=ratios,
        insertion_loss_narrow_db=narrow,
        insertion_loss_wide_db=wide,
        optimal_ratio_narrow=synthesize_ratio_for_impedance(50.0, 1.0,
                                                            height),
        optimal_ratio_wide=synthesize_ratio_for_impedance(50.0, 2.4, height),
    )


# ------------------------------------------------------------ power/base


@dataclass(frozen=True)
class PowerComparisonResult:
    """Section 4.3 / Fig. 3: WiForce vs digital backscatter power."""

    wiforce: PowerBudget
    digital: DigitalBudget

    @property
    def ratio(self) -> float:
        """Digital-over-WiForce power factor."""
        return self.digital.total / self.wiforce.total


def run_power_comparison() -> PowerComparisonResult:
    """Power budgets: direct transduction vs ADC+MCU pipeline."""
    return PowerComparisonResult(
        wiforce=wiforce_power_budget(),
        digital=digital_backscatter_power_budget(),
    )


@dataclass(frozen=True)
class BaselineComparisonResult:
    """Section 5.1/8 claims against the implemented baselines."""

    wiforce_location_median_m: float
    rfid_location_median_m: float
    strain_error_clean: float
    strain_error_multipath: float

    @property
    def location_advantage(self) -> float:
        """RFID-over-WiForce location error factor (paper: ~5x+)."""
        return self.rfid_location_median_m / self.wiforce_location_median_m

    @property
    def multipath_degradation(self) -> float:
        """Strain baseline error inflation under multipath."""
        if self.strain_error_clean <= 0.0:
            return float("inf")
        return self.strain_error_multipath / self.strain_error_clean


def run_baseline_comparison(fast: bool = True, carrier: float = 900e6,
                            seed: int = 13) -> BaselineComparisonResult:
    """WiForce vs the RFID-touch and RSS-strain baselines."""
    rng = np.random.default_rng(seed)
    accuracy = run_wireless_accuracy(carrier, fast=fast, force_points=4,
                                     repeats=1, seed=seed)
    rfid = RFIDTouchArray(rng=rng)
    touch_locations = [float(loc) for loc in EVALUATION_LOCATIONS] * 4
    rfid_errors = rfid.location_errors(touch_locations)

    sensor = NotchStrainSensor(rest_frequency=carrier)
    reader = NotchReader(sensor, start_frequency=carrier * 0.9,
                         stop_frequency=carrier * 1.02, rng=rng)
    strains = np.linspace(0.01, 0.1, 10)
    clean = float(np.median(reader.strain_errors(strains)))
    channel = indoor_channel(carrier, path_count=8,
                             clutter_to_direct_db=3.0, rng=rng)
    multipath = float(np.median(reader.strain_errors(strains, channel)))
    return BaselineComparisonResult(
        wiforce_location_median_m=accuracy.median_location_error,
        rfid_location_median_m=median_absolute_error(rfid_errors),
        strain_error_clean=clean,
        strain_error_multipath=multipath,
    )


# ---------------------------------------------------------------- ablations


@dataclass(frozen=True)
class AveragingAblationResult:
    """Section 3.3 ablation: subcarrier averaging gain."""

    single_subcarrier_std_deg: float
    averaged_std_deg: float

    @property
    def improvement(self) -> float:
        """Phase-noise reduction factor from averaging."""
        if self.averaged_std_deg <= 0.0:
            return float("inf")
        return self.single_subcarrier_std_deg / self.averaged_std_deg


def run_averaging_ablation(fast: bool = True, carrier: float = 900e6,
                           captures: int = 24,
                           seed: int = 17) -> AveragingAblationResult:
    """Phase repeatability with and without subcarrier averaging.

    Uses a long-range deployment with the oscillator jitter turned off
    so receiver noise — the error source subcarrier averaging attacks —
    dominates the phase error.
    """
    rng = np.random.default_rng(seed)
    transducer = _transducer(fast)
    tag = WiForceTag(transducer)
    link = BackscatterLink(tx_to_tag=3.0, tag_to_rx=3.0, tx_to_rx=6.0)
    config = OFDMSounderConfig(carrier_frequency=carrier, tx_power_dbm=10.0)
    sounder = FastSounder(config, tag, link,
                                indoor_channel(carrier, rng=rng),
                                tag_phase_jitter_deg_per_sqrt_s=0.0,
                                rng=rng)
    model = calibrated_model(carrier, fast=fast)
    reader = WiForceReader(sounder, model, groups_per_capture=1)
    reader.capture_baseline()
    state = TagState(3.0, 0.040)
    tone = reader.extractor.tones[0]
    baseline = reader.capture_harmonics(TagState())
    averaged = []
    single = []
    for _ in range(captures):
        harmonics = reader.capture_harmonics(state)
        product = harmonics[tone] * np.conj(baseline[tone])
        averaged.append(float(np.angle(product.sum())))
        single.append(float(np.angle(product[0])))
    return AveragingAblationResult(
        single_subcarrier_std_deg=float(np.degrees(np.std(single))),
        averaged_std_deg=float(np.degrees(np.std(averaged))),
    )


@dataclass(frozen=True)
class SwitchAblationResult:
    """Section 4.3 ablation: reflective vs absorptive off state."""

    reflective_baseline_tone: float
    absorptive_baseline_tone: float

    @property
    def reference_loss_db(self) -> float:
        """How much untouched-reference tone the absorptive switch loses."""
        return float(20.0 * np.log10(
            self.reflective_baseline_tone
            / max(self.absorptive_baseline_tone, 1e-30)))


def run_switch_ablation(fast: bool = True,
                        carrier: float = 900e6) -> SwitchAblationResult:
    """The untouched reference tone vanishes with absorptive switches."""
    from dataclasses import replace

    from repro.rf.switch import ABSORPTIVE_SWITCH
    from repro.sensor.geometry import default_sensor_design

    transducer = _transducer(fast)
    reflective_tag = WiForceTag(transducer)

    absorptive_design = replace(default_sensor_design(),
                                switch=ABSORPTIVE_SWITCH)
    absorptive_transducer = ForceTransducer(
        absorptive_design, force_points=8, location_points=9)
    absorptive_tag = WiForceTag(absorptive_transducer)

    def baseline_tone(tag: WiForceTag) -> float:
        grid = np.array([carrier])
        states = tag.state_reflections(grid, TagState())
        difference = states[(True, False)][0] - states[(False, False)][0]
        return float(np.abs(difference))

    return SwitchAblationResult(
        reflective_baseline_tone=baseline_tone(reflective_tag),
        absorptive_baseline_tone=baseline_tone(absorptive_tag),
    )


# ------------------------------------------------------------ section 7


@dataclass(frozen=True)
class FormFactorResult:
    """Section 7 (future work): miniaturisation via higher carriers."""

    scales: Tuple[float, ...]
    carriers: Tuple[float, ...]
    phase_swing_deg: Tuple[float, ...]
    location_medians_m: Tuple[float, ...]
    relative_location_medians: Tuple[float, ...]


def _form_factor_trial(index: int, scale: float, base_carrier: float,
                       seed: int) -> Tuple[float, float, float, float]:
    """One scaled unit, calibrated and read at its own carrier.

    Returns (carrier, phase swing [deg], location median [m],
    relative location median).  Module-level so the scales shard
    across a :class:`CampaignExecutor`.
    """
    from repro.core.calibration import calibrate_harmonic_observable
    from repro.sensor.fabrication import scaled_design

    carrier = base_carrier / float(scale)
    design = scaled_design(float(scale))
    transducer = ForceTransducer(design, force_points=16,
                                 location_points=17)
    tag = WiForceTag(transducer, clock_offset_ppm=20.0)
    length = design.length
    locations = tuple(np.linspace(0.25, 0.75, 5) * length)
    forces = np.linspace(0.5, 8.0, 12)
    model = calibrate_harmonic_observable(tag, carrier, locations, forces)
    # Phase swing of a centre press across the force range.
    phases = [harmonic_differential_phases(
        tag, carrier, float(f), length / 2.0)[0] for f in forces]
    swing = float(np.degrees(
        np.max(np.unwrap(phases)) - np.min(np.unwrap(phases))))

    rng = np.random.default_rng(seed + index)
    config = OFDMSounderConfig(carrier_frequency=carrier)
    sounder = FastSounder(config, tag, BackscatterLink(),
                                indoor_channel(carrier, rng=rng),
                                rng=rng)
    reader = WiForceReader(sounder, model)
    rig = GroundTruthRig(rng=rng)
    errors = []
    for fraction in (0.3, 0.5, 0.7):
        for force in (2.0, 5.0):
            press = rig.press(force, fraction * length)
            reading = reader.read(
                TagState(press.applied_force, press.applied_location),
                rebaseline=True)
            errors.append(reading.location - press.commanded_location)
    median = median_absolute_error(errors)
    return carrier, swing, median, median / length


def run_form_factor(scales: Sequence[float] = (1.0, 0.5),
                    base_carrier: float = 2.4e9, seed: int = 77,
                    executor: Optional[CampaignExecutor] = None
                    ) -> FormFactorResult:
    """Shrink the sensor, raise the carrier, keep the performance.

    Each scaled unit is read at ``base_carrier / scale`` so its
    electrical length is unchanged; the paper's argument is that the
    phase transduction — and therefore the *relative* localization
    accuracy — carries over to the smaller form factor.  The scales
    are independent, so they run as one executor batch.
    """
    results = (executor or CampaignExecutor()).map(
        _form_factor_trial,
        [(index, float(scale), base_carrier, seed)
         for index, scale in enumerate(scales)])
    carriers, swings, medians, relative = (
        zip(*results) if results else ((), (), (), ()))
    return FormFactorResult(
        scales=tuple(float(s) for s in scales),
        carriers=tuple(carriers),
        phase_swing_deg=tuple(swings),
        location_medians_m=tuple(medians),
        relative_location_medians=tuple(relative),
    )
