"""Fingertip press generator for the user-study experiment (Fig. 17).

The paper's operator presses the sensor at 60 mm while watching a
live load-cell plot, settling into a sequence of increasing force
levels.  This generator reproduces that interaction: per-level dwell
segments with human force regulation noise (tremor + drift) and the
finger-pad placement jitter of a ~10 mm fingertip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sensor.tag import TagState


@dataclass(frozen=True)
class FingertipPress:
    """One dwell sample of a fingertip interaction.

    Attributes:
        state: The (force, location) the sensor actually sees.
        level_index: Which commanded force level this sample belongs to.
        target_force: The commanded level [N].
    """

    state: TagState
    level_index: int
    target_force: float


class FingertipProfile:
    """Stochastic fingertip force-level profile.

    Args:
        levels: Commanded force levels [N], visited in order.
        location: Nominal press location [m].
        samples_per_level: Readings taken while holding each level.
        tremor_std: Human force regulation noise [N] (~4-8% of level
            for visually-guided force tracking).
        placement_std: Finger placement jitter [m] (fingertip pad).
        rng: Random source.
    """

    def __init__(self, levels: Sequence[float] = (1.0, 2.0, 4.0, 6.0),
                 location: float = 0.060, samples_per_level: int = 6,
                 tremor_std: float = 0.12, placement_std: float = 1.0e-3,
                 rng: Optional[np.random.Generator] = None):
        levels = [float(level) for level in levels]
        if not levels or any(level <= 0.0 for level in levels):
            raise ConfigurationError("levels must be positive forces")
        if samples_per_level < 1:
            raise ConfigurationError(
                f"samples per level must be >= 1, got {samples_per_level}"
            )
        if tremor_std < 0.0 or placement_std < 0.0:
            raise ConfigurationError("noise levels must be >= 0")
        self.levels = levels
        self.location = float(location)
        self.samples_per_level = int(samples_per_level)
        self.tremor_std = float(tremor_std)
        self.placement_std = float(placement_std)
        self._rng = rng or np.random.default_rng()

    def generate(self) -> List[FingertipPress]:
        """One full interaction: each level in turn, with noise.

        The finger lands once per level (placement jitter per level,
        not per sample) and the force wanders around the target with
        tremor plus a slow within-level drift.
        """
        presses: List[FingertipPress] = []
        for index, level in enumerate(self.levels):
            placement = self.location + self._rng.normal(
                0.0, self.placement_std)
            drift = self._rng.normal(0.0, 0.05 * level)
            for sample in range(self.samples_per_level):
                progress = sample / max(1, self.samples_per_level - 1)
                force = (level + drift * progress
                         + self._rng.normal(0.0, self.tremor_std))
                presses.append(FingertipPress(
                    state=TagState(max(0.1, force), placement),
                    level_index=index,
                    target_force=level,
                ))
        return presses
