"""Error metrics used across the evaluation (CDFs, medians).

The paper scores force and location accuracy with empirical CDFs of
absolute error against the load-cell/actuator ground truth, and quotes
medians.  These helpers keep that arithmetic in one place.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.estimator import BatchForceLocationEstimate
from repro.errors import ConfigurationError


def empirical_cdf(errors: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample of absolute errors.

    Returns (sorted values, cumulative probabilities in (0, 1]).
    """
    values = np.sort(np.abs(np.asarray(list(errors), dtype=float)))
    if values.size == 0:
        raise ConfigurationError("cannot build a CDF from an empty sample")
    probabilities = np.arange(1, values.size + 1) / values.size
    return values, probabilities


def median_absolute_error(errors: Sequence[float]) -> float:
    """Median of absolute errors."""
    values = np.abs(np.asarray(list(errors), dtype=float))
    if values.size == 0:
        raise ConfigurationError("cannot take a median of an empty sample")
    return float(np.median(values))


def percentile_absolute_error(errors: Sequence[float],
                              percentile: float) -> float:
    """Given percentile (0-100) of absolute errors."""
    if not 0.0 <= percentile <= 100.0:
        raise ConfigurationError(
            f"percentile must be in [0, 100], got {percentile}"
        )
    values = np.abs(np.asarray(list(errors), dtype=float))
    if values.size == 0:
        raise ConfigurationError("cannot take a percentile of an empty sample")
    return float(np.percentile(values, percentile))


def cdf_at(errors: Sequence[float], threshold: float) -> float:
    """Fraction of absolute errors at or below ``threshold``."""
    values = np.abs(np.asarray(list(errors), dtype=float))
    if values.size == 0:
        raise ConfigurationError("empty sample")
    return float(np.mean(values <= threshold))


def batch_absolute_errors(
    estimates: BatchForceLocationEstimate,
    true_forces: Sequence[float],
    true_locations: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sample |force| and |location| errors of a batched inversion.

    Shapes must agree with the batch; returns (force_errors [N],
    location_errors [m]).
    """
    true_forces = np.asarray(list(true_forces), dtype=float)
    true_locations = np.asarray(list(true_locations), dtype=float)
    if true_forces.shape != estimates.force.shape \
            or true_locations.shape != estimates.location.shape:
        raise ConfigurationError(
            f"ground truth shapes {true_forces.shape}/"
            f"{true_locations.shape} disagree with the batch "
            f"{estimates.force.shape}"
        )
    return (np.abs(estimates.force - true_forces),
            np.abs(estimates.location - true_locations))


def batch_error_summary(
    estimates: BatchForceLocationEstimate,
    true_forces: Sequence[float],
    true_locations: Sequence[float],
) -> Dict[str, float]:
    """Median and 90th-percentile errors of a batched inversion.

    The paper's headline accuracy numbers (median / tail of the error
    CDF) computed straight from a :meth:`invert_batch` result.
    """
    force_errors, location_errors = batch_absolute_errors(
        estimates, true_forces, true_locations)
    return {
        "force_median_n": median_absolute_error(force_errors),
        "force_p90_n": percentile_absolute_error(force_errors, 90.0),
        "location_median_m": median_absolute_error(location_errors),
        "location_p90_m": percentile_absolute_error(location_errors, 90.0),
    }
