"""Error metrics used across the evaluation (CDFs, medians).

The paper scores force and location accuracy with empirical CDFs of
absolute error against the load-cell/actuator ground truth, and quotes
medians.  These helpers keep that arithmetic in one place.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def empirical_cdf(errors: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample of absolute errors.

    Returns (sorted values, cumulative probabilities in (0, 1]).
    """
    values = np.sort(np.abs(np.asarray(list(errors), dtype=float)))
    if values.size == 0:
        raise ConfigurationError("cannot build a CDF from an empty sample")
    probabilities = np.arange(1, values.size + 1) / values.size
    return values, probabilities


def median_absolute_error(errors: Sequence[float]) -> float:
    """Median of absolute errors."""
    values = np.abs(np.asarray(list(errors), dtype=float))
    if values.size == 0:
        raise ConfigurationError("cannot take a median of an empty sample")
    return float(np.median(values))


def percentile_absolute_error(errors: Sequence[float],
                              percentile: float) -> float:
    """Given percentile (0-100) of absolute errors."""
    if not 0.0 <= percentile <= 100.0:
        raise ConfigurationError(
            f"percentile must be in [0, 100], got {percentile}"
        )
    values = np.abs(np.asarray(list(errors), dtype=float))
    if values.size == 0:
        raise ConfigurationError("cannot take a percentile of an empty sample")
    return float(np.percentile(values, percentile))


def cdf_at(errors: Sequence[float], threshold: float) -> float:
    """Fraction of absolute errors at or below ``threshold``."""
    values = np.abs(np.asarray(list(errors), dtype=float))
    if values.size == 0:
        raise ConfigurationError("empty sample")
    return float(np.mean(values <= threshold))
