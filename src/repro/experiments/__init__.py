"""Experiment harness: one runner per paper figure/table.

Each runner builds its scenario from the library's public API, executes
the paper's protocol, and returns a structured result the benchmarks
print and the tests assert on.  See DESIGN.md for the experiment
index mapping figures/tables to runners.
"""

from repro.experiments.metrics import (
    batch_absolute_errors,
    batch_error_summary,
    empirical_cdf,
    median_absolute_error,
    percentile_absolute_error,
)
from repro.experiments.parallel import (
    CampaignExecution,
    CampaignExecutor,
    resolve_workers,
)
from repro.experiments.scenarios import (
    default_transducer,
    fast_transducer,
    thin_trace_transducer,
    build_wireless_scenario,
)
from repro.experiments.figures import ascii_cdf, ascii_histogram, ascii_plot
from repro.experiments import montecarlo, parallel, runners, sweeps

__all__ = [
    "batch_absolute_errors",
    "batch_error_summary",
    "empirical_cdf",
    "median_absolute_error",
    "percentile_absolute_error",
    "CampaignExecution",
    "CampaignExecutor",
    "resolve_workers",
    "default_transducer",
    "fast_transducer",
    "thin_trace_transducer",
    "build_wireless_scenario",
    "ascii_cdf",
    "ascii_histogram",
    "ascii_plot",
    "montecarlo",
    "parallel",
    "runners",
    "sweeps",
]
