"""Baselines the paper compares against or argues around.

Three comparison systems, each implemented far enough to score against
WiForce on the axis the paper claims:

* :mod:`repro.baselines.rfid_touch` — RIO/LiveTag-class RFID touch
  interfaces: binary touch + tag-granularity localization (the paper's
  "~5x better location accuracy" claim, section 5.1).
* :mod:`repro.baselines.strain_rss` — resonance-notch RSS strain
  sensing, which breaks under static multipath (related-work claim,
  section 8).
* :mod:`repro.baselines.digital_backscatter` — the conventional
  sensor + ADC + MCU + codeword-translation backscatter pipeline and
  its power budget (the architecture Fig. 3 contrasts).
"""

from repro.baselines.rfid_touch import RFIDTouchArray, RFIDTouchReading
from repro.baselines.strain_rss import (
    NotchStrainSensor,
    NotchReader,
    StrainReading,
)
from repro.baselines.ert import ERTReading, ERTStrip
from repro.baselines.vision_haptics import (
    VisionHapticsPipeline,
    WiForceLatency,
    latency_comparison,
)
from repro.baselines.digital_backscatter import (
    DigitalBackscatterTag,
    digital_backscatter_power_budget,
)

__all__ = [
    "RFIDTouchArray",
    "RFIDTouchReading",
    "NotchStrainSensor",
    "NotchReader",
    "StrainReading",
    "ERTReading",
    "ERTStrip",
    "VisionHapticsPipeline",
    "WiForceLatency",
    "latency_comparison",
    "DigitalBackscatterTag",
    "digital_backscatter_power_budget",
]
