"""RSS resonance-notch strain-sensing baseline (paper section 8).

Wireless strain sensors infer elongation from the shift of a resonant
notch in the received *signal strength* spectrum.  The paper's critique:
RSS is "a fickle quantity easily corrupted by multipath", and such
systems are demonstrated in anechoic chambers because static multipath
ripple masquerades as notches.  This baseline implements the notch
sensor and its reader so that critique is measurable: in a clean
channel the notch tracks strain well; with indoor multipath the
frequency-selective fading produces spurious minima and the strain
estimate degrades by an order of magnitude, while WiForce's
differential phase is unaffected by the same clutter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.multipath import MultipathChannel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StrainReading:
    """One notch-reader output.

    Attributes:
        notch_frequency: Detected spectral minimum [Hz].
        strain: Inferred strain (dimensionless).
    """

    notch_frequency: float
    strain: float


class NotchStrainSensor:
    """Resonant tag whose notch frequency moves with strain.

    Args:
        rest_frequency: Notch at zero strain [Hz].
        sensitivity: Relative frequency shift per unit strain
            (f = f0 (1 - sensitivity * strain)).
        quality_factor: Resonance Q (sets the notch width).
        notch_depth_db: Depth of the notch at resonance [dB].
    """

    def __init__(self, rest_frequency: float = 900e6,
                 sensitivity: float = 0.5, quality_factor: float = 80.0,
                 notch_depth_db: float = 15.0):
        if rest_frequency <= 0.0:
            raise ConfigurationError(
                f"rest frequency must be positive, got {rest_frequency}"
            )
        if sensitivity <= 0.0 or quality_factor <= 0.0:
            raise ConfigurationError(
                "sensitivity and quality factor must be positive"
            )
        self.rest_frequency = float(rest_frequency)
        self.sensitivity = float(sensitivity)
        self.quality_factor = float(quality_factor)
        self.notch_depth_db = float(notch_depth_db)

    def notch_frequency(self, strain: float) -> float:
        """Notch location [Hz] under the given strain."""
        if strain < 0.0:
            raise ConfigurationError(f"strain must be >= 0, got {strain}")
        return self.rest_frequency * (1.0 - self.sensitivity * strain)

    def transmission(self, frequency: np.ndarray, strain: float) -> np.ndarray:
        """Amplitude response of the strained tag over frequency."""
        frequency = np.asarray(frequency, dtype=float)
        centre = self.notch_frequency(strain)
        bandwidth = centre / self.quality_factor
        detuning = (frequency - centre) / (bandwidth / 2.0)
        depth = 10.0 ** (-self.notch_depth_db / 20.0)
        notch = depth + (1.0 - depth) * (detuning ** 2 / (1.0 + detuning ** 2))
        return notch

    def strain_from_notch(self, notch_frequency: float) -> float:
        """Invert the notch-frequency map."""
        return max(0.0, (1.0 - notch_frequency / self.rest_frequency)
                   / self.sensitivity)


class NotchReader:
    """RSS sweep reader for the notch sensor.

    Sweeps a frequency band, records received signal strength through
    sensor (and optionally channel), picks the minimum, and maps it
    back to strain.

    Args:
        sensor: The notch tag.
        start_frequency / stop_frequency: Sweep span [Hz].
        points: Sweep resolution.
        rss_noise_db: Per-point RSS measurement noise std [dB].
        rng: Random source.
    """

    def __init__(self, sensor: NotchStrainSensor,
                 start_frequency: float, stop_frequency: float,
                 points: int = 401, rss_noise_db: float = 0.2,
                 rng: Optional[np.random.Generator] = None):
        if not 0.0 < start_frequency < stop_frequency:
            raise ConfigurationError("need 0 < start < stop frequency")
        if points < 8:
            raise ConfigurationError(f"need >= 8 sweep points, got {points}")
        self.sensor = sensor
        self.frequency = np.linspace(start_frequency, stop_frequency, points)
        self.rss_noise_db = float(rss_noise_db)
        self._rng = rng or np.random.default_rng()

    def read(self, strain: float,
             channel: Optional[MultipathChannel] = None) -> StrainReading:
        """One sweep: detect the notch and invert it to strain.

        Args:
            strain: True strain applied to the tag.
            channel: Optional multipath channel between reader and tag;
                its frequency-selective fading corrupts the RSS floor.
        """
        response = self.sensor.transmission(self.frequency, strain)
        if channel is not None:
            fading = np.abs(channel.frequency_response(self.frequency))
            reference = float(np.mean(fading))
            if reference <= 0.0:
                raise ConfigurationError("channel has no mean gain")
            response = response * (fading / reference)
        rss_db = 20.0 * np.log10(np.maximum(response, 1e-12))
        rss_db = rss_db + self._rng.normal(0.0, self.rss_noise_db,
                                           rss_db.shape)
        notch = float(self.frequency[int(np.argmin(rss_db))])
        return StrainReading(notch_frequency=notch,
                             strain=self.sensor.strain_from_notch(notch))

    def strain_errors(self, strains: np.ndarray,
                      channel: Optional[MultipathChannel] = None
                      ) -> np.ndarray:
        """Absolute strain error for a batch of true strains."""
        errors = []
        for strain in np.asarray(strains, dtype=float):
            reading = self.read(float(strain), channel)
            errors.append(abs(reading.strain - strain))
        return np.array(errors)
