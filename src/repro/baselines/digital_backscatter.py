"""Digital (codeword-translation) backscatter baseline (paper Fig. 3).

The conventional architecture WiForce replaces: an analog force sensor
is digitised by an ADC, buffered/framed by a microcontroller, and the
bits are backscattered by codeword translation (HitchHike [5] /
FreeRider [9] style).  Functionally it delivers the same readings, but
the ADC + MCU chain dominates the power budget — this module computes
that budget so the paper's "direct transduction saves the electronics
in the middle" argument becomes a measured factor, and models the
quantisation the digital path adds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sensor.power import PowerBudget, cmos_switching_power


@dataclass(frozen=True)
class DigitalBudget:
    """Itemised digital-tag power [W].

    Attributes:
        adc: ADC conversion power [W].
        mcu: Microcontroller active+sleep average power [W].
        modulator: Codeword-translation switching power [W].
        leakage: Standby leakage [W].
    """

    adc: float
    mcu: float
    modulator: float
    leakage: float

    @property
    def total(self) -> float:
        """Total power [W]."""
        return self.adc + self.mcu + self.modulator + self.leakage

    @property
    def total_uw(self) -> float:
        """Total power [uW]."""
        return self.total * 1e6


def digital_backscatter_power_budget(
    sample_rate: float = 100.0,
    adc_bits: int = 10,
    adc_energy_per_conversion: float = 50e-12,
    mcu_active_power: float = 900e-6,
    mcu_duty: float = 0.02,
    mcu_sleep_power: float = 1.5e-6,
    modulation_rate: float = 1e6,
    modulator_capacitance: float = 1e-12,
    supply_voltage: float = 1.0,
    leakage: float = 100e-9,
) -> DigitalBudget:
    """Budget for the sensor + ADC + MCU + backscatter pipeline.

    Defaults model a frugal duty-cycled design: a 10-bit SAR ADC at
    50 pJ/conversion sampling 100 Hz, an MCU that wakes 2% of the time
    (typical for framing + codeword translation at these rates), and a
    1 MHz codeword-translation modulator.  Even this optimistic design
    lands near 20 uW — an order of magnitude above WiForce's direct
    transduction.
    """
    if sample_rate <= 0.0 or modulation_rate <= 0.0:
        raise ConfigurationError("rates must be positive")
    if not 0.0 <= mcu_duty <= 1.0:
        raise ConfigurationError(f"MCU duty must be in [0, 1], got {mcu_duty}")
    if adc_bits < 1:
        raise ConfigurationError(f"ADC bits must be >= 1, got {adc_bits}")
    adc = adc_energy_per_conversion * sample_rate
    mcu = mcu_active_power * mcu_duty + mcu_sleep_power * (1.0 - mcu_duty)
    modulator = cmos_switching_power(modulator_capacitance, supply_voltage,
                                     modulation_rate)
    return DigitalBudget(adc=adc, mcu=mcu, modulator=modulator,
                         leakage=leakage)


class DigitalBackscatterTag:
    """Functional model of the digital pipeline's measurement path.

    Delivers force readings like WiForce would, but through an ADC:
    the load-cell-style analog front end is sampled, quantised to
    ``adc_bits`` over ``full_scale`` newtons, and (lossleslly) reported.
    Used to compare measurement fidelity and power against the direct
    analog transduction.

    Args:
        adc_bits: Quantiser resolution.
        full_scale: Force full scale [N].
        frontend_noise_std: Analog front-end noise [N].
        sample_rate: Sensor sampling rate [Hz].
        rng: Random source.
    """

    def __init__(self, adc_bits: int = 10, full_scale: float = 10.0,
                 frontend_noise_std: float = 0.02,
                 sample_rate: float = 100.0,
                 rng: Optional[np.random.Generator] = None):
        if adc_bits < 1 or adc_bits > 24:
            raise ConfigurationError(
                f"ADC bits must be in [1, 24], got {adc_bits}"
            )
        if full_scale <= 0.0:
            raise ConfigurationError(
                f"full scale must be positive, got {full_scale}"
            )
        if frontend_noise_std < 0.0:
            raise ConfigurationError(
                f"front-end noise must be >= 0, got {frontend_noise_std}"
            )
        self.adc_bits = int(adc_bits)
        self.full_scale = float(full_scale)
        self.frontend_noise_std = float(frontend_noise_std)
        self.sample_rate = float(sample_rate)
        self._rng = rng or np.random.default_rng()

    @property
    def lsb(self) -> float:
        """Quantisation step [N]."""
        return self.full_scale / (2 ** self.adc_bits)

    def sample(self, force: float) -> float:
        """One quantised force sample [N]."""
        if force < 0.0:
            raise ConfigurationError(f"force must be >= 0, got {force}")
        noisy = force + self._rng.normal(0.0, self.frontend_noise_std)
        clipped = float(np.clip(noisy, 0.0, self.full_scale))
        return round(clipped / self.lsb) * self.lsb

    def power_budget(self) -> DigitalBudget:
        """The tag's power budget at its configured sample rate."""
        return digital_backscatter_power_budget(
            sample_rate=self.sample_rate, adc_bits=self.adc_bits)

    def latency_bound(self, payload_bits: int = 32,
                      link_rate: float = 50e3) -> float:
        """Reading latency [s]: sample + frame + backscatter a payload."""
        if payload_bits < 1 or link_rate <= 0.0:
            raise ConfigurationError("payload bits and link rate must be positive")
        return 1.0 / self.sample_rate + payload_bits / link_rate


def compare_power(wiforce: PowerBudget,
                  digital: DigitalBudget) -> Tuple[float, float, float]:
    """(wiforce uW, digital uW, digital/wiforce factor)."""
    ratio = digital.total / wiforce.total if wiforce.total > 0 else float("inf")
    return wiforce.total_uw, digital.total_uw, ratio
