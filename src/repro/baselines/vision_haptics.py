"""Vision-based haptics baseline: the latency argument (section 6).

The paper contrasts WiForce with vision-induced haptics (GelSight-class
and instrument-tracking approaches): "these typically require
computationally intensive algorithms, and fail to meet the required
temporal rate of feedback required to determine if the grasp of the
object is loosening and slipping".  This baseline models that pipeline's
latency budget — exposure, readout, inference, transport — against
WiForce's group-duration latency, and against the feedback deadline of
slip detection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Incipient-slip detection deadline [s]: tactile literature puts the
#: usable window at tens of milliseconds before a grasp fails.
SLIP_DEADLINE = 0.050


@dataclass(frozen=True)
class VisionHapticsPipeline:
    """Latency model of a camera-based force/slip estimator.

    Attributes:
        frame_rate: Camera frame rate [Hz].
        exposure: Exposure + sensor readout time [s].
        inference_time: Per-frame force-estimation compute [s]
            (GelSight-class photometric stereo / CNN inference).
        transport_latency: Camera link + host transfer [s].
        frames_needed: Frames needed to call a slip event.
    """

    frame_rate: float = 30.0
    exposure: float = 8e-3
    inference_time: float = 25e-3
    transport_latency: float = 5e-3
    frames_needed: int = 2

    def __post_init__(self) -> None:
        if self.frame_rate <= 0.0:
            raise ConfigurationError("frame rate must be positive")
        if min(self.exposure, self.inference_time,
               self.transport_latency) < 0.0:
            raise ConfigurationError("latency components must be >= 0")
        if self.frames_needed < 1:
            raise ConfigurationError("need at least one frame")

    @property
    def feedback_latency(self) -> float:
        """Worst-case event-to-decision latency [s].

        One full frame interval of sampling uncertainty per needed
        frame, plus the per-frame pipeline.
        """
        frame_interval = 1.0 / self.frame_rate
        return (self.frames_needed * frame_interval + self.exposure
                + self.inference_time + self.transport_latency)

    def meets_slip_deadline(self, deadline: float = SLIP_DEADLINE) -> bool:
        """Whether the pipeline can catch incipient slip in time."""
        return self.feedback_latency <= deadline


@dataclass(frozen=True)
class WiForceLatency:
    """WiForce's feedback latency: phase groups are the clock.

    Attributes:
        group_duration: Phase-group length [s] (36 ms default).
        groups_needed: Groups per decision (1 for a phase jump).
        inversion_time: Model-inversion compute [s] (a grid search).
    """

    group_duration: float = 0.036
    groups_needed: int = 1
    inversion_time: float = 2e-3

    def __post_init__(self) -> None:
        if self.group_duration <= 0.0 or self.inversion_time < 0.0:
            raise ConfigurationError("latency components must be valid")
        if self.groups_needed < 1:
            raise ConfigurationError("need at least one group")

    @property
    def feedback_latency(self) -> float:
        """Event-to-decision latency [s]."""
        return self.groups_needed * self.group_duration + self.inversion_time

    def meets_slip_deadline(self, deadline: float = SLIP_DEADLINE) -> bool:
        """Whether WiForce catches incipient slip in time."""
        return self.feedback_latency <= deadline


def latency_comparison() -> dict:
    """Default comparison used by tests and benches."""
    vision = VisionHapticsPipeline()
    wiforce = WiForceLatency()
    return {
        "vision_latency_s": vision.feedback_latency,
        "wiforce_latency_s": wiforce.feedback_latency,
        "vision_meets_slip_deadline": vision.meets_slip_deadline(),
        "wiforce_meets_slip_deadline": wiforce.meets_slip_deadline(),
        "advantage": vision.feedback_latency / wiforce.feedback_latency,
    }
