"""ERT (electrical resistance tomography) baseline (paper section 2).

The paper positions ERT as the state of the art for *wired* continuum
force sensing: a piezoresistive strip whose local conductivity rises
under pressure, probed by electrodes at fixed positions; solving the
inverse conductivity problem recovers where and how hard the strip was
pressed.  It reduces wiring compared to a sensor array but still needs
galvanic connections and an excitation/measurement front end — the
architecture WiForce's RF-only approach replaces.

The model here is the 1-D specialisation: a resistive ladder whose
per-segment conductance rises with local pressure, probed four-terminal
style from ``electrode_count`` taps.  The reconstruction fits
(force, location) to the measured transfer resistances — enough to
compare localization quality, force sensitivity and wiring cost
against WiForce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ERTReading:
    """One reconstructed ERT press.

    Attributes:
        force: Estimated force [N].
        location: Estimated location [m].
        residual: RMS voltage-fit residual.
    """

    force: float
    location: float
    residual: float


class ERTStrip:
    """Piezoresistive strip probed by a row of electrodes.

    Args:
        length: Strip length [m].
        electrode_count: Number of equally spaced electrode taps
            (each needs a wire — the cost WiForce removes).
        segments: Discretisation of the resistive ladder.
        base_resistance: Total unpressed strip resistance [ohm].
        sensitivity: Relative conductance increase per newton applied
            to one pressure-kernel width.
        pressure_width: Spatial spread of a press [m].
        voltage_noise_std: Measurement noise on each transfer
            resistance (relative).
        rng: Random source.
    """

    def __init__(self, length: float = 80e-3, electrode_count: int = 8,
                 segments: int = 64, base_resistance: float = 10e3,
                 sensitivity: float = 0.8, pressure_width: float = 9e-3,
                 voltage_noise_std: float = 2e-3,
                 rng: Optional[np.random.Generator] = None):
        if length <= 0.0 or base_resistance <= 0.0:
            raise ConfigurationError(
                "length and base resistance must be positive"
            )
        if electrode_count < 3:
            raise ConfigurationError(
                f"ERT needs >= 3 electrodes, got {electrode_count}"
            )
        if segments < electrode_count:
            raise ConfigurationError(
                "need at least one segment per electrode span"
            )
        if sensitivity <= 0.0 or pressure_width <= 0.0:
            raise ConfigurationError(
                "sensitivity and pressure width must be positive"
            )
        self.length = float(length)
        self.electrode_count = int(electrode_count)
        self.segments = int(segments)
        self.base_resistance = float(base_resistance)
        self.sensitivity = float(sensitivity)
        self.pressure_width = float(pressure_width)
        self.voltage_noise_std = float(voltage_noise_std)
        self._rng = rng or np.random.default_rng()
        self._x = (np.arange(segments) + 0.5) * (length / segments)
        self._electrodes = np.linspace(0.0, length, electrode_count)

    @property
    def wire_count(self) -> int:
        """Interface wires required (one per electrode)."""
        return self.electrode_count

    def _segment_resistances(self, force: float,
                             location: float) -> np.ndarray:
        """Per-segment resistance [ohm] under a press."""
        base = self.base_resistance / self.segments
        if force <= 0.0:
            return np.full(self.segments, base)
        u = (self._x - location) / self.pressure_width
        profile = np.exp(-0.5 * u ** 2)
        conductance_gain = 1.0 + self.sensitivity * force * profile
        return base / conductance_gain

    def _electrode_potentials(self, resistances: np.ndarray) -> np.ndarray:
        """Potentials at the taps with 1 A driven end to end.

        The ladder is series, so the potential at position x is the
        cumulative resistance from the grounded end.
        """
        cumulative = np.concatenate([[0.0], np.cumsum(resistances)])
        nodes = np.linspace(0.0, self.length, self.segments + 1)
        return np.interp(self._electrodes, nodes, cumulative)

    def measure(self, force: float, location: float) -> np.ndarray:
        """Noisy electrode potentials for a press (current-driven)."""
        if force < 0.0:
            raise ConfigurationError(f"force must be >= 0, got {force}")
        if not 0.0 <= location <= self.length:
            raise ConfigurationError(
                f"location {location} outside strip [0, {self.length}]"
            )
        potentials = self._electrode_potentials(
            self._segment_resistances(force, location))
        noise = self._rng.normal(
            0.0, self.voltage_noise_std * self.base_resistance,
            potentials.shape)
        return potentials + noise

    def reconstruct(self, potentials: np.ndarray,
                    force_grid: Optional[np.ndarray] = None,
                    location_grid: Optional[np.ndarray] = None
                    ) -> ERTReading:
        """Fit (force, location) to measured electrode potentials."""
        potentials = np.asarray(potentials, dtype=float)
        if potentials.shape != (self.electrode_count,):
            raise ConfigurationError(
                f"expected {self.electrode_count} potentials, got "
                f"{potentials.shape}"
            )
        if force_grid is None:
            force_grid = np.linspace(0.25, 10.0, 40)
        if location_grid is None:
            location_grid = np.linspace(0.05 * self.length,
                                        0.95 * self.length, 37)
        best: Tuple[float, float, float] = (0.0, 0.0, float("inf"))
        for force in force_grid:
            for location in location_grid:
                model = self._electrode_potentials(
                    self._segment_resistances(float(force),
                                              float(location)))
                residual = float(np.sqrt(np.mean(
                    (model - potentials) ** 2)))
                if residual < best[2]:
                    best = (float(force), float(location), residual)
        return ERTReading(force=best[0], location=best[1],
                          residual=best[2])

    def read(self, force: float, location: float) -> ERTReading:
        """Measure-then-reconstruct convenience wrapper."""
        return self.reconstruct(self.measure(force, location))
