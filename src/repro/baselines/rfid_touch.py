"""RFID touch-interface baseline (RIO [16] / LiveTag [17] class).

These systems detect *which tag* is being touched from RSS/phase
perturbations of each tag's backscatter, so their localization is
quantised to the tag pitch (centimetres) and they carry no force
magnitude at all.  The paper's location-accuracy comparison (section
5.1: "about 5 times higher accuracy ... errors in the order of
magnitude of centimeters") is reproduced by running this array on the
same presses as WiForce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RFIDTouchReading:
    """One touch-array reading.

    Attributes:
        touched: Whether any tag registered a touch.
        tag_index: Index of the touched tag (-1 when none).
        location: Location estimate [m]: the touched tag's centre.
    """

    touched: bool
    tag_index: int
    location: float


class RFIDTouchArray:
    """A strip of RFID tags read by RSS/phase perturbation.

    A touch perturbs the tag whose footprint contains the finger, and
    to a lesser degree its neighbours (coupling).  Detection compares
    each tag's perturbation against a threshold; localization returns
    the strongest tag's centre — tag-pitch-quantised by construction.

    Args:
        length: Covered strip length [m].
        tag_pitch: Tag-to-tag spacing [m] (2-4 cm for RIO/LiveTag-class
            designs).
        detection_snr_db: Perturbation-to-noise ratio of a direct touch.
        rng: Random source.
    """

    def __init__(self, length: float = 80e-3, tag_pitch: float = 25e-3,
                 detection_snr_db: float = 20.0,
                 rng: Optional[np.random.Generator] = None):
        if length <= 0.0 or tag_pitch <= 0.0:
            raise ConfigurationError(
                "length and tag pitch must be positive"
            )
        if tag_pitch > length:
            raise ConfigurationError(
                f"tag pitch {tag_pitch} larger than the strip {length}"
            )
        self.length = float(length)
        self.tag_pitch = float(tag_pitch)
        self.detection_snr_db = float(detection_snr_db)
        self._rng = rng or np.random.default_rng()
        count = max(2, int(round(length / tag_pitch)) + 1)
        self._centres = np.linspace(0.0, length, count)

    @property
    def tag_centres(self) -> np.ndarray:
        """Tag centre positions [m] (copy)."""
        return self._centres.copy()

    @property
    def tag_count(self) -> int:
        """Number of tags on the strip."""
        return self._centres.size

    def _perturbations(self, location: float, force: float) -> np.ndarray:
        """Per-tag perturbation amplitudes for a touch.

        The touch perturbs tags within roughly one pitch; the response
        saturates almost immediately with force (binary-touch nature:
        skin proximity, not pressure, detunes the tag).
        """
        distance = np.abs(self._centres - location)
        footprint = np.maximum(0.0, 1.0 - distance / self.tag_pitch)
        saturating = 1.0 - np.exp(-force / 0.2) if force > 0.0 else 0.0
        return footprint * saturating

    def read(self, force: float, location: float) -> RFIDTouchReading:
        """Read the array under a press.

        Args:
            force: Contact force [N] (0 = no touch).
            location: Contact location [m] along the strip.
        """
        if force < 0.0:
            raise ConfigurationError(f"force must be >= 0, got {force}")
        if not 0.0 <= location <= self.length:
            raise ConfigurationError(
                f"location {location} outside the strip [0, {self.length}]"
            )
        signal = self._perturbations(location, force)
        noise_scale = 10.0 ** (-self.detection_snr_db / 20.0)
        observed = signal + self._rng.normal(0.0, noise_scale,
                                             signal.shape)
        threshold = 3.0 * noise_scale
        if observed.max() < max(threshold, 0.3):
            return RFIDTouchReading(touched=False, tag_index=-1,
                                    location=0.0)
        index = int(np.argmax(observed))
        return RFIDTouchReading(touched=True, tag_index=index,
                                location=float(self._centres[index]))

    def location_errors(self, locations: List[float],
                        force: float = 2.0) -> np.ndarray:
        """Absolute localization error [m] for a batch of touches."""
        errors = []
        for location in locations:
            reading = self.read(force, float(location))
            if reading.touched:
                errors.append(abs(reading.location - location))
            else:
                errors.append(self.length)
        return np.array(errors)
