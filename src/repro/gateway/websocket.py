"""RFC 6455 WebSocket framing (stdlib only, no extensions).

Implements exactly the subset the gateway's streaming path needs:
the ``Sec-WebSocket-Accept`` handshake digest, frame encoding with
optional client-side masking, and an incremental frame parser over a
byte buffer.  Deliberate restrictions, enforced as protocol errors:

* no extensions — any RSV bit set is malformed;
* no fragmentation — every data frame must carry ``FIN``;
  continuation frames are rejected (the JSON wire messages the
  gateway speaks are far below the frame payload cap, so a compliant
  peer never needs to fragment them);
* declared payload lengths above the configured cap are rejected
  *before* the payload arrives, so a hostile 8-byte length prefix
  cannot balloon memory.

Every malformed input raises :class:`repro.errors.ProtocolError` —
the same decode contract as :mod:`repro.serve.protocol` and
:mod:`repro.gateway.http` — and :func:`parse_frame` is a pure
``bytes -> frame`` function so hypothesis can drive it directly
(``tests/test_gateway_fuzz.py``).
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ProtocolError

#: Fixed handshake GUID from RFC 6455 section 1.3.
GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Frame opcodes (the full RFC 6455 set).
OP_CONTINUATION = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

CONTROL_OPCODES = frozenset((OP_CLOSE, OP_PING, OP_PONG))
KNOWN_OPCODES = frozenset((OP_CONTINUATION, OP_TEXT, OP_BINARY,
                           OP_CLOSE, OP_PING, OP_PONG))

#: Close codes the gateway sends.
CLOSE_NORMAL = 1000
CLOSE_PROTOCOL_ERROR = 1002
CLOSE_UNSUPPORTED = 1003
CLOSE_TOO_BIG = 1009
CLOSE_INTERNAL = 1011

#: Largest control-frame payload RFC 6455 permits.
MAX_CONTROL_PAYLOAD = 125


def accept_key(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` digest for a handshake key."""
    digest = hashlib.sha1((key + GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


@dataclass(frozen=True)
class Frame:
    """One parsed frame; ``payload`` is already unmasked."""

    opcode: int
    payload: bytes
    fin: bool = True
    masked: bool = False

    def text(self) -> str:
        """The payload as UTF-8 text.

        Raises:
            ProtocolError: The payload is not valid UTF-8.
        """
        try:
            return self.payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                f"frame payload is not valid UTF-8: {exc}") from exc


def _apply_mask(payload: bytes, key: bytes) -> bytes:
    """XOR-mask (or unmask — the operation is its own inverse)."""
    if not payload:
        return b""
    # Stretch the 4-byte key across the payload and XOR in one pass;
    # int.from_bytes keeps this O(n) without a python-level loop.
    repeated = (key * (len(payload) // 4 + 1))[:len(payload)]
    return (int.from_bytes(payload, "big")
            ^ int.from_bytes(repeated, "big")).to_bytes(
                len(payload), "big")


def encode_frame(opcode: int, payload: bytes = b"", fin: bool = True,
                 mask_key: Optional[bytes] = None) -> bytes:
    """Serialize one frame; ``mask_key`` (4 bytes) masks client->server.

    Raises:
        ProtocolError: Unknown opcode, oversized control payload, or a
            mask key that is not exactly 4 bytes.
    """
    if opcode not in KNOWN_OPCODES:
        raise ProtocolError(f"unknown opcode 0x{opcode:x}")
    if opcode in CONTROL_OPCODES and len(payload) > MAX_CONTROL_PAYLOAD:
        raise ProtocolError(
            f"control payload of {len(payload)} bytes exceeds "
            f"{MAX_CONTROL_PAYLOAD}")
    if mask_key is not None and len(mask_key) != 4:
        raise ProtocolError("mask key must be exactly 4 bytes")
    head = bytearray()
    head.append((0x80 if fin else 0x00) | opcode)
    mask_bit = 0x80 if mask_key is not None else 0x00
    length = len(payload)
    if length <= 125:
        head.append(mask_bit | length)
    elif length <= 0xFFFF:
        head.append(mask_bit | 126)
        head += length.to_bytes(2, "big")
    else:
        head.append(mask_bit | 127)
        head += length.to_bytes(8, "big")
    if mask_key is not None:
        head += mask_key
        payload = _apply_mask(payload, mask_key)
    return bytes(head) + payload


def parse_frame(buffer: bytes,
                max_payload: int = 1 << 20
                ) -> Optional[Tuple[Frame, int]]:
    """Parse one frame off the front of ``buffer``.

    Returns ``(frame, bytes_consumed)``, or ``None`` when the buffer
    does not yet hold a complete frame (read more and retry).

    Raises:
        ProtocolError: Structurally malformed input — RSV bits set,
            unknown opcode, fragmented or oversized control frame, or
            a declared payload length above ``max_payload`` (raised as
            soon as the length prefix is readable, without waiting for
            the payload bytes).
    """
    if len(buffer) < 2:
        return None
    first, second = buffer[0], buffer[1]
    if first & 0x70:
        raise ProtocolError(
            f"RSV bits set (0x{first & 0x70:02x}); extensions are "
            "not negotiated")
    opcode = first & 0x0F
    if opcode not in KNOWN_OPCODES:
        raise ProtocolError(f"unknown opcode 0x{opcode:x}")
    fin = bool(first & 0x80)
    masked = bool(second & 0x80)
    length = second & 0x7F
    if opcode in CONTROL_OPCODES:
        if not fin:
            raise ProtocolError("control frames must not be fragmented")
        if length > MAX_CONTROL_PAYLOAD:
            raise ProtocolError(
                f"control payload length {length} exceeds "
                f"{MAX_CONTROL_PAYLOAD}")
    offset = 2
    if length == 126:
        if len(buffer) < offset + 2:
            return None
        length = int.from_bytes(buffer[offset:offset + 2], "big")
        offset += 2
    elif length == 127:
        if len(buffer) < offset + 8:
            return None
        length = int.from_bytes(buffer[offset:offset + 8], "big")
        if length >= 1 << 63:
            raise ProtocolError("payload length has the top bit set")
        offset += 8
    if length > max_payload:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the "
            f"{max_payload}-byte cap")
    if masked:
        if len(buffer) < offset + 4:
            return None
        key = bytes(buffer[offset:offset + 4])
        offset += 4
    total = offset + length
    if len(buffer) < total:
        return None
    payload = bytes(buffer[offset:total])
    if masked:
        payload = _apply_mask(payload, key)
    return Frame(opcode=opcode, payload=payload, fin=fin,
                 masked=masked), total


def close_payload(code: int = CLOSE_NORMAL, reason: str = "") -> bytes:
    """Serialize a close frame payload (code + UTF-8 reason)."""
    return code.to_bytes(2, "big") + reason.encode("utf-8")[
        :MAX_CONTROL_PAYLOAD - 2]


def parse_close(payload: bytes) -> Tuple[int, str]:
    """Decode a close payload into (code, reason).

    An empty payload means "no status" (1005 per RFC 6455).

    Raises:
        ProtocolError: One-byte payload or a non-UTF-8 reason.
    """
    if not payload:
        return 1005, ""
    if len(payload) == 1:
        raise ProtocolError("close payload of 1 byte is malformed")
    code = int.from_bytes(payload[:2], "big")
    try:
        reason = payload[2:].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(
            f"close reason is not valid UTF-8: {exc}") from exc
    return code, reason
