"""Per-tenant bearer-token auth and token-bucket quotas.

A *tenant* is one paying/trusted consumer of the gateway: it owns a
bearer token, a sustained request rate with a burst allowance, and a
concurrent-connection cap.  The :class:`TenantTable` is the gateway's
whole auth layer: ``authenticate`` maps an ``Authorization`` header to
a tenant (or raises :class:`repro.errors.AuthError` -> 401), ``admit``
spends one token from the tenant's bucket (refusal -> 429 with
``quality="rejected"``), and the connection slots bound fan-in per
tenant before a single byte reaches the inference service.

Quota shedding composes with the scheduler's bounded-queue
backpressure deliberately: the bucket protects *other tenants* from
one tenant's burst, while :class:`repro.errors.QueueFullError`
protects the *service* from aggregate overload.  Both surface to the
client the same way — a rejection, never a crash.

Buckets take the current time as an argument (the gateway passes its
event-loop clock), so quota behavior is deterministic under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.estimator import ESTIMATOR_BACKENDS
from repro.errors import AuthError, ConfigurationError

#: Tenant name used when the table allows anonymous access.
ANONYMOUS = "anonymous"


@dataclass(frozen=True)
class Tenant:
    """One gateway consumer and its quota envelope.

    Attributes:
        name: Stable tenant identity (lands in telemetry, never the
            token).
        token: Bearer credential presented as
            ``Authorization: Bearer <token>``.
        rate_per_s: Sustained request admission rate.
        burst: Bucket capacity — requests admitted instantly after an
            idle period before the rate limit bites.
        max_connections: Concurrent gateway connections this tenant
            may hold open.
        backend: Estimator backend forced onto every estimate this
            tenant submits (``"grid"`` | ``"surrogate"``); empty means
            no override — requests keep whatever their sensor config
            says.  Per-tenant backend choice is how a latency-driven
            tenant opts into the amortized surrogate while others stay
            on the grid oracle.
    """

    name: str
    token: str
    rate_per_s: float = 200.0
    burst: int = 50
    max_connections: int = 32
    backend: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.backend and self.backend not in ESTIMATOR_BACKENDS:
            raise ConfigurationError(
                f"unknown estimator backend {self.backend!r} for "
                f"tenant {self.name!r}; expected one of "
                f"{ESTIMATOR_BACKENDS}")
        if self.rate_per_s <= 0.0:
            raise ConfigurationError(
                f"rate_per_s must be > 0, got {self.rate_per_s}")
        if self.burst < 1:
            raise ConfigurationError(
                f"burst must be >= 1, got {self.burst}")
        if self.max_connections < 1:
            raise ConfigurationError(
                f"max_connections must be >= 1, got "
                f"{self.max_connections}")


class TokenBucket:
    """Classic token bucket; time is injected for determinism.

    Args:
        rate_per_s: Steady-state refill rate [tokens/s].
        capacity: Bucket size (burst allowance); starts full.
    """

    def __init__(self, rate_per_s: float, capacity: float):
        if rate_per_s <= 0.0 or capacity <= 0.0:
            raise ConfigurationError(
                "token bucket rate and capacity must be > 0")
        self.rate_per_s = float(rate_per_s)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self._last: Optional[float] = None

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens at time ``now`` if available."""
        if self._last is not None and now > self._last:
            self.tokens = min(self.capacity,
                              self.tokens
                              + (now - self._last) * self.rate_per_s)
        self._last = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class TenantTable:
    """Token -> tenant lookup plus per-tenant buckets and slots.

    Args:
        tenants: The configured tenants (tokens must be unique).
        allow_anonymous: Admit requests without a credential as the
            built-in ``anonymous`` tenant (demo / loopback use; a
            production table leaves this off).
        anonymous_rate_per_s / anonymous_burst: Quota envelope for the
            anonymous tenant.
    """

    def __init__(self, tenants: Iterable[Tenant] = (),
                 allow_anonymous: bool = False,
                 anonymous_rate_per_s: float = 1e6,
                 anonymous_burst: int = 1 << 16):
        self._by_token: Dict[str, Tenant] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._connections: Dict[str, int] = {}
        for tenant in tenants:
            if not tenant.token:
                raise ConfigurationError(
                    f"tenant {tenant.name!r} has an empty token")
            if tenant.token in self._by_token:
                raise ConfigurationError(
                    f"duplicate token between tenants "
                    f"{self._by_token[tenant.token].name!r} and "
                    f"{tenant.name!r}")
            self._by_token[tenant.token] = tenant
        self.anonymous: Optional[Tenant] = None
        if allow_anonymous:
            self.anonymous = Tenant(
                ANONYMOUS, token="", rate_per_s=anonymous_rate_per_s,
                burst=anonymous_burst,
                max_connections=1 << 16)

    def __len__(self) -> int:
        return len(self._by_token)

    @property
    def tenants(self) -> Dict[str, Tenant]:
        """Configured tenants keyed by name (copy)."""
        return {tenant.name: tenant
                for tenant in self._by_token.values()}

    def authenticate(self, authorization: Optional[str]) -> Tenant:
        """Resolve an ``Authorization`` header value to a tenant.

        Raises:
            AuthError: Missing/malformed header or unknown token
                (the gateway answers 401; the message never echoes
                the presented token).
        """
        if not authorization:
            if self.anonymous is not None:
                return self.anonymous
            raise AuthError("missing bearer token")
        scheme, _, token = authorization.partition(" ")
        token = token.strip()
        if scheme.lower() != "bearer" or not token:
            raise AuthError("authorization must be 'Bearer <token>'")
        tenant = self._by_token.get(token)
        if tenant is None:
            raise AuthError("unknown bearer token")
        return tenant

    def _bucket(self, tenant: Tenant) -> TokenBucket:
        bucket = self._buckets.get(tenant.name)
        if bucket is None:
            bucket = self._buckets[tenant.name] = TokenBucket(
                tenant.rate_per_s, float(tenant.burst))
        return bucket

    def admit(self, tenant: Tenant, now: float) -> bool:
        """Spend one request token from the tenant's bucket."""
        return self._bucket(tenant).allow(now)

    def open_connections(self, tenant: Tenant) -> int:
        """Connections the tenant currently holds."""
        return self._connections.get(tenant.name, 0)

    def acquire_connection(self, tenant: Tenant) -> bool:
        """Claim one connection slot; False when the tenant is full."""
        held = self._connections.get(tenant.name, 0)
        if held >= tenant.max_connections:
            return False
        self._connections[tenant.name] = held + 1
        return True

    def release_connection(self, tenant: Tenant) -> None:
        """Return one connection slot."""
        held = self._connections.get(tenant.name, 0)
        if held <= 1:
            self._connections.pop(tenant.name, None)
        else:
            self._connections[tenant.name] = held - 1
