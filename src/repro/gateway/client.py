"""Minimal asyncio clients for the gateway (loadgen + tests).

Two transports, both stdlib-only:

* :func:`http_request` — one request/response exchange on a fresh
  connection (what a ``curl`` user does).
* :class:`WebSocketClient` — the streaming session: RFC 6455
  handshake, masked client frames, JSON message send/receive with
  transparent ping/pong handling.

These are deliberately *honest* clients — they mask frames, validate
the accept key, and speak well-formed HTTP — because the hostile-peer
side of the contract is exercised by the fuzz suite with raw sockets
instead.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
from typing import Dict, Optional, Tuple

from repro.errors import GatewayError, ProtocolError
from repro.gateway import http, websocket
from repro.gateway.http import GatewayLimits, HttpResponse


class HandshakeRejected(GatewayError):
    """The server answered the upgrade with a normal HTTP response.

    Carries the response so callers can distinguish 401 (bad token)
    from 429 (connection quota) without string matching.
    """

    def __init__(self, response: HttpResponse):
        super().__init__(
            f"WebSocket handshake rejected with {response.status}")
        self.response = response


def _auth_headers(token: Optional[str]) -> Dict[str, str]:
    headers = {}
    if token:
        headers["authorization"] = f"Bearer {token}"
    return headers


async def http_request(host: str, port: int, method: str, target: str,
                       payload: Optional[dict] = None,
                       token: Optional[str] = None,
                       limits: Optional[GatewayLimits] = None,
                       timeout: float = 30.0) -> HttpResponse:
    """One HTTP exchange on a fresh connection.

    Args:
        payload: Optional JSON body (sent with ``Content-Length``).
        token: Bearer token for the ``Authorization`` header.
        limits: Client-side parse caps; server defaults when omitted.
        timeout: Overall deadline for the exchange [s].

    Raises:
        ProtocolError: The server's response could not be parsed.
        asyncio.TimeoutError: The deadline elapsed.
    """
    limits = limits if limits is not None else GatewayLimits()

    async def exchange() -> HttpResponse:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            headers = _auth_headers(token)
            headers["connection"] = "close"
            body = b""
            if payload is not None:
                body = json.dumps(payload,
                                  sort_keys=True).encode("utf-8")
                headers["content-type"] = "application/json"
            writer.write(http.render_request(method, target,
                                             headers=headers,
                                             body=body))
            await writer.drain()
            return await http.read_response(reader, limits)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    return await asyncio.wait_for(exchange(), timeout)


class ConnectionClosed(GatewayError):
    """The server closed the WebSocket (carries the close code)."""

    def __init__(self, code: int, reason: str = ""):
        super().__init__(
            f"WebSocket closed by peer (code {code}"
            + (f": {reason}" if reason else "") + ")")
        self.code = code
        self.reason = reason


class WebSocketClient:
    """One streaming session against ``GET /v1/stream``.

    Use :meth:`connect` to build one; :meth:`send_json` /
    :meth:`recv_json` speak the gateway's JSON message envelopes.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 limits: GatewayLimits):
        self._reader = reader
        self._writer = writer
        self._limits = limits
        self._buffer = bytearray()
        self._closed = False
        self.close_code: Optional[int] = None

    @classmethod
    async def connect(cls, host: str, port: int,
                      path: str = "/v1/stream",
                      token: Optional[str] = None,
                      limits: Optional[GatewayLimits] = None,
                      timeout: float = 30.0) -> "WebSocketClient":
        """Open a connection and perform the upgrade handshake.

        Raises:
            HandshakeRejected: The server answered with a non-101
                response (401 bad token, 429 quota, ...).
            ProtocolError: The 101 response was malformed (bad accept
                key, missing upgrade headers).
        """
        limits = limits if limits is not None else GatewayLimits()
        reader, writer = await asyncio.open_connection(host, port)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        headers = _auth_headers(token)
        headers.update({
            "host": f"{host}:{port}",
            "upgrade": "websocket",
            "connection": "Upgrade",
            "sec-websocket-key": key,
            "sec-websocket-version": "13",
        })
        writer.write(http.render_request("GET", path, headers=headers))
        await writer.drain()
        try:
            response = await asyncio.wait_for(
                http.read_response(reader, limits), timeout)
        except (Exception, asyncio.CancelledError):
            writer.close()
            raise
        if response.status != 101:
            writer.close()
            raise HandshakeRejected(response)
        expected = websocket.accept_key(key)
        if response.headers.get("sec-websocket-accept") != expected:
            writer.close()
            raise ProtocolError("server sent a bad accept key")
        return cls(reader, writer, limits)

    async def send_frame(self, opcode: int, payload: bytes) -> None:
        """Send one masked frame (clients must mask per RFC 6455)."""
        self._writer.write(websocket.encode_frame(
            opcode, payload, mask_key=os.urandom(4)))
        await self._writer.drain()

    async def send_json(self, payload: dict) -> None:
        """Send one JSON text message."""
        await self.send_frame(
            websocket.OP_TEXT,
            json.dumps(payload, sort_keys=True).encode("utf-8"))

    async def _recv_frame(self) -> websocket.Frame:
        while True:
            parsed = websocket.parse_frame(
                bytes(self._buffer), self._limits.max_ws_payload)
            if parsed is not None:
                frame, consumed = parsed
                del self._buffer[:consumed]
                return frame
            chunk = await self._reader.read(1 << 16)
            if not chunk:
                raise ConnectionClosed(1006, "connection lost")
            self._buffer += chunk

    async def recv_json(self, timeout: float = 30.0) -> dict:
        """Receive the next JSON message (pings answered inline).

        Raises:
            ConnectionClosed: The server sent a close frame (or the
                TCP stream ended).
            ProtocolError: The server sent a malformed frame or
                non-JSON text.
        """

        async def _next() -> dict:
            while True:
                frame = await self._recv_frame()
                if frame.opcode == websocket.OP_PING:
                    await self.send_frame(websocket.OP_PONG,
                                          frame.payload)
                    continue
                if frame.opcode == websocket.OP_PONG:
                    continue
                if frame.opcode == websocket.OP_CLOSE:
                    code, reason = websocket.parse_close(frame.payload)
                    self.close_code = code
                    raise ConnectionClosed(code, reason)
                if frame.opcode != websocket.OP_TEXT:
                    raise ProtocolError(
                        f"unexpected opcode 0x{frame.opcode:x} from "
                        "server")
                try:
                    payload = json.loads(frame.text())
                except ValueError as exc:
                    raise ProtocolError(
                        f"server sent invalid JSON: {exc}") from exc
                if not isinstance(payload, dict):
                    raise ProtocolError(
                        "server message must be a JSON object")
                return payload

        return await asyncio.wait_for(_next(), timeout)

    async def close(self, code: int = websocket.CLOSE_NORMAL,
                    timeout: float = 5.0) -> None:
        """Send a close frame and tear the connection down."""
        if self._closed:
            return
        self._closed = True
        try:
            await self.send_frame(websocket.OP_CLOSE,
                                  websocket.close_payload(code))
            # Wait (briefly) for the close echo so the server sees a
            # clean shutdown rather than an abort.
            deadline_reached = False
            try:
                while not deadline_reached:
                    frame = await asyncio.wait_for(
                        self._recv_frame(), timeout)
                    if frame.opcode == websocket.OP_CLOSE:
                        break
            except (asyncio.TimeoutError, ConnectionClosed,
                    ProtocolError):
                pass
        except (ConnectionError, RuntimeError, ConnectionClosed):
            pass
        finally:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass


async def estimate_over_ws(client: WebSocketClient,
                           request_payload: dict,
                           timeout: float = 30.0
                           ) -> Tuple[dict, list]:
    """Send one estimate and collect its reply.

    Returns ``(reply, pushed)`` where ``pushed`` is any
    ``touch_event`` messages that arrived before the reply (event
    pushes for *other* requests on the same connection can interleave
    with a response when estimates are pipelined).
    """
    await client.send_json({"type": "estimate",
                            "request": request_payload})
    pushed = []
    while True:
        message = await client.recv_json(timeout)
        if message.get("type") == "touch_event":
            pushed.append(message)
            continue
        return message, pushed
