"""``repro.gateway`` — the network front door for the serve stack.

A stdlib-only asyncio gateway that exposes
:class:`repro.serve.InferenceService` over real sockets: minimal
HTTP/1.1 (``POST /v1/estimate``, ``GET /v1/touch_events``,
``/healthz``, ``/metrics``) plus an RFC 6455 WebSocket endpoint
(``GET /v1/stream``) for streaming estimates and per-sensor
touch-event subscriptions.  Per-tenant bearer-token auth, token-bucket
quotas, and connection caps compose with the scheduler's backpressure
— overload degrades to 429/``quality="rejected"`` responses, never
crashes.  See DESIGN.md ("Network gateway") for the data flow and
README.md ("Gateway") for the quickstart.
"""

from repro.gateway.auth import Tenant, TenantTable, TokenBucket
from repro.gateway.client import (
    ConnectionClosed,
    HandshakeRejected,
    WebSocketClient,
    estimate_over_ws,
    http_request,
)
from repro.gateway.http import GatewayLimits, HttpRequest, HttpResponse
from repro.gateway.loadgen import (
    bench_tenants,
    run_gateway_benchmark,
    summarize,
)
from repro.gateway.server import Gateway

__all__ = [
    "ConnectionClosed",
    "Gateway",
    "GatewayLimits",
    "HandshakeRejected",
    "HttpRequest",
    "HttpResponse",
    "Tenant",
    "TenantTable",
    "TokenBucket",
    "WebSocketClient",
    "bench_tenants",
    "estimate_over_ws",
    "http_request",
    "run_gateway_benchmark",
    "summarize",
]
