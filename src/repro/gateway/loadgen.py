"""Socket-driving load generation for the gateway.

Extends :mod:`repro.serve.loadgen` through the network path: the same
synthetic fleet (one sensor stream per connection, phases from the
calibrated model's forward prediction) is driven through a real
``Gateway`` over loopback TCP — WebSocket handshake, per-tenant
bearer tokens, masked frames, JSON envelopes — with requests
pipelined per connection so the micro-batch scheduler still coalesces
across tenants.

The report answers the network-layer questions the in-process bench
cannot: client-observed p50/p99 request latency through real sockets,
aggregate throughput across N concurrent tenant connections, the
rejection rate (quota + backpressure shedding), and the
gateway-vs-in-process throughput ratio (``gateway_vs_inprocess``, the
machine-normalized metric ``compare_bench.py`` gates).  Parity is
checked element-wise against a direct :class:`InferenceService` run
over the identical requests — the network layer must never change
the numbers.

Backs ``python -m repro gateway-bench`` and
``benchmarks/test_perf_gateway.py``; both write
``benchmarks/results/BENCH_gateway.json``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gateway.auth import Tenant, TenantTable
from repro.gateway.client import WebSocketClient
from repro.gateway.server import Gateway
from repro.obs.manifest import stamp_report
from repro.obs.registry import observed
from repro.serve.loadgen import (
    LoadProfile,
    generate_arrival_offsets,
    generate_requests,
    run_service_load,
)
from repro.serve.protocol import EstimateRequest
from repro.serve.scheduler import BatchPolicy
from repro.serve.service import InferenceService
from repro.serve.session import ModelFactory


def bench_tenants(count: int, rate_per_s: float = 1e6,
                  burst: int = 1 << 16,
                  backend: str = "") -> List[Tenant]:
    """One tenant (and token) per bench connection.

    The default quota envelope is effectively unlimited so the bench
    measures the transport, not the limiter; pass a small
    ``rate_per_s`` / ``burst`` to measure shedding instead.
    ``backend`` forces an estimator backend onto every request the
    tenants submit (empty = no override).
    """
    return [
        Tenant(name=f"tenant-{index:03d}",
               token=f"bench-token-{index:03d}",
               rate_per_s=rate_per_s, burst=burst, backend=backend)
        for index in range(count)
    ]


async def _drive_connection(
    host: str, port: int, token: str,
    items: List[Tuple[EstimateRequest, Optional[float]]],
) -> List[Tuple[int, str, dict, float]]:
    """One tenant connection: pipeline requests, match replies.

    Returns ``(sequence, kind, message, latency_s)`` tuples where
    ``kind`` is ``"estimate"`` or ``"error"``.
    """
    client = await WebSocketClient.connect(host, port, token=token)
    results: List[Tuple[int, str, dict, float]] = []
    sent_at: Dict[int, float] = {}
    try:
        async def receive(expected: int) -> None:
            got = 0
            while got < expected:
                message = await client.recv_json()
                kind = message.get("type", "")
                if kind == "touch_event":
                    continue
                if kind == "estimate":
                    sequence = message["response"]["sequence"]
                else:
                    sequence = message.get("sequence", -1)
                latency = time.perf_counter() - sent_at.get(
                    sequence, time.perf_counter())
                results.append((sequence, kind, message, latency))
                got += 1

        receiver = asyncio.ensure_future(receive(len(items)))
        base = time.perf_counter()
        for request, offset in items:
            if offset is not None:
                delay = base + offset - time.perf_counter()
                if delay > 0.0:
                    await asyncio.sleep(delay)
            sent_at[request.sequence] = time.perf_counter()
            await client.send_json({"type": "estimate",
                                    "request": request.to_dict()})
        await receiver
    finally:
        await client.close()
    return results


async def _drive_gateway(
    gateway: Gateway, tenants: List[Tenant],
    requests: List[EstimateRequest],
    offsets: Optional[np.ndarray],
) -> Tuple[Dict[Tuple[str, int], Tuple[str, dict, float]], float]:
    """All connections concurrently; returns (outcomes, wall s)."""
    host, port = gateway.address
    by_sensor: Dict[str, List[Tuple[EstimateRequest,
                                    Optional[float]]]] = {}
    sensor_order: List[str] = []
    for index, request in enumerate(requests):
        if request.sensor_id not in by_sensor:
            by_sensor[request.sensor_id] = []
            sensor_order.append(request.sensor_id)
        offset = None if offsets is None else float(offsets[index])
        by_sensor[request.sensor_id].append((request, offset))
    start = time.perf_counter()
    per_connection = await asyncio.gather(*(
        _drive_connection(host, port, tenants[index].token,
                          by_sensor[sensor_id])
        for index, sensor_id in enumerate(sensor_order)))
    wall = time.perf_counter() - start
    outcomes: Dict[Tuple[str, int], Tuple[str, dict, float]] = {}
    for sensor_id, results in zip(sensor_order, per_connection):
        for sequence, kind, message, latency in results:
            outcomes[(sensor_id, sequence)] = (kind, message, latency)
    return outcomes, wall


def run_gateway_benchmark(
        profile: Optional[LoadProfile] = None,
        model_factory: Optional[ModelFactory] = None,
        tenant_rate_per_s: float = 1e6) -> dict:
    """Load-test the gateway over real sockets; returns the report.

    Args:
        profile: Load shape — ``sensors`` doubles as the concurrent
            tenant-connection count (one stream per connection).
        model_factory: Config -> model override for the session cache.
        tenant_rate_per_s: Per-tenant quota rate (default effectively
            unlimited, so rejection_rate measures backpressure only).
    """
    if profile is None:
        profile = LoadProfile(sensors=8, requests_per_sensor=32)
    policy = BatchPolicy(
        max_batch=profile.max_batch,
        max_delay_s=profile.max_delay_s,
        max_queue=max(1024, profile.total_requests),
        enabled=profile.batching,
    )
    tenants = bench_tenants(profile.sensors,
                            rate_per_s=tenant_rate_per_s)
    with observed() as registry:
        service = InferenceService(policy=policy,
                                   model_factory=model_factory,
                                   registry=registry)
        estimator = service.sessions.estimator(profile.config)
        requests = generate_requests(estimator.model, profile)
        offsets = generate_arrival_offsets(profile)

        async def networked():
            gateway = Gateway(service,
                              tenants=TenantTable(tenants))
            async with gateway:
                return await _drive_gateway(gateway, tenants,
                                            requests, offsets)

        outcomes, gateway_wall = asyncio.run(networked())

        # In-process baseline: the identical requests through a fresh
        # direct service (separate sessions, same policy and model).
        baseline = InferenceService(policy=policy,
                                    model_factory=model_factory,
                                    registry=registry)
        baseline.sessions.estimator(profile.config)
        direct, inprocess_wall = asyncio.run(
            run_service_load(baseline, requests, offsets))

    total = len(requests)
    latencies: List[float] = []
    batch_sizes: List[int] = []
    rejected = 0
    force_delta = 0.0
    location_delta = 0.0
    touched_match = True
    compared = 0
    for request, expected in zip(requests, direct):
        outcome = outcomes.get((request.sensor_id, request.sequence))
        if outcome is None or outcome[0] != "estimate":
            rejected += 1
            continue
        _, message, latency = outcome
        latencies.append(latency)
        response = message["response"]
        batch_sizes.append(int(response["batch_size"]))
        force_delta = max(force_delta, abs(
            response["estimate"]["force"] - expected.estimate.force))
        location_delta = max(location_delta, abs(
            response["estimate"]["location"]
            - expected.estimate.location))
        touched_match = touched_match and (
            response["estimate"]["touched"]
            == expected.estimate.touched)
        compared += 1
    latency_array = np.array(latencies) if latencies else np.zeros(1)
    profile_block = {
        "connections": profile.sensors,
        "requests_per_connection": profile.requests_per_sensor,
        "total_requests": total,
        "max_batch": profile.max_batch,
        "max_delay_s": profile.max_delay_s,
        "batching": profile.batching,
        "seed": profile.seed,
        "carrier_frequency": profile.carrier_frequency,
        "backend": profile.backend,
        "arrival": profile.arrival,
        "arrival_rate_rps": profile.arrival_rate_rps,
        "pareto_alpha": profile.pareto_alpha,
        "tenant_rate_per_s": tenant_rate_per_s,
    }
    gateway_rps = total / gateway_wall if gateway_wall > 0 else 0.0
    inprocess_rps = (total / inprocess_wall
                     if inprocess_wall > 0 else 0.0)
    report = {
        "profile": profile_block,
        "gateway": {
            "wall_seconds": gateway_wall,
            "throughput_rps": gateway_rps,
            "p50_latency_ms": float(
                np.percentile(latency_array, 50) * 1e3),
            "p99_latency_ms": float(
                np.percentile(latency_array, 99) * 1e3),
            "mean_latency_ms": float(latency_array.mean() * 1e3),
            "mean_batch_size": (float(np.mean(batch_sizes))
                                if batch_sizes else 0.0),
            "max_batch_size": (int(np.max(batch_sizes))
                               if batch_sizes else 0),
            "connections": profile.sensors,
            "answered": compared,
            "rejected": rejected,
            "rejection_rate": rejected / total if total else 0.0,
        },
        "inprocess_baseline": {
            "wall_seconds": inprocess_wall,
            "throughput_rps": inprocess_rps,
        },
        "gateway_vs_inprocess": (gateway_rps / inprocess_rps
                                 if inprocess_rps > 0 else 0.0),
        "parity": {
            "compared": compared,
            "max_force_delta_n": float(force_delta),
            "max_location_delta_m": float(location_delta),
            "touched_match": bool(touched_match),
        },
        "telemetry": service.telemetry_snapshot(),
    }
    return stamp_report(report, config=profile_block,
                        registry=registry)


def summarize(report: dict) -> str:
    """Human-readable one-screen summary of a gateway bench report."""
    gateway = report["gateway"]
    baseline = report["inprocess_baseline"]
    parity = report["parity"]
    return "\n".join([
        f"requests           : {report['profile']['total_requests']} "
        f"({gateway['connections']} tenant connections x "
        f"{report['profile']['requests_per_connection']} samples, "
        f"{report['profile']['arrival']} arrivals)",
        f"gateway throughput : {gateway['throughput_rps']:10.0f} req/s",
        f"in-process baseline: {baseline['throughput_rps']:10.0f} req/s",
        f"network ratio      : {report['gateway_vs_inprocess']:10.2f}x",
        f"latency p50 / p99  : {gateway['p50_latency_ms']:7.2f} / "
        f"{gateway['p99_latency_ms']:.2f} ms",
        f"mean batch size    : {gateway['mean_batch_size']:10.1f}",
        f"rejection rate     : {gateway['rejection_rate']:10.3f} "
        f"({gateway['rejected']} rejected)",
        f"parity             : force <= "
        f"{parity['max_force_delta_n']:.2e} N, location <= "
        f"{parity['max_location_delta_m']:.2e} m, touched "
        f"{'match' if parity['touched_match'] else 'MISMATCH'}",
    ])
