"""Minimal HTTP/1.1 framing for the gateway (stdlib only).

Just enough of RFC 7230 to carry the JSON wire protocol and the
WebSocket upgrade handshake: request/response head parsing,
``Content-Length`` bodies, and response rendering.  No chunked
transfer coding, no multi-line header folding — a request that uses
either is malformed *for this server* and is answered with 400.

The parsers follow the serve-boundary decode contract
(:mod:`repro.serve.protocol`): any malformed, truncated, or oversized
input raises :class:`repro.errors.ProtocolError` — never a bare
``ValueError``/``IndexError``/``UnicodeDecodeError`` — so the
connection handler maps every parse failure to one error response
(fuzz-tested in ``tests/test_gateway_fuzz.py``).  The head parsers are
pure ``bytes -> dataclass`` functions so hypothesis can drive them
directly, with thin asyncio readers layered on top.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ProtocolError

#: Reason phrases for every status the gateway actually sends.
REASONS = {
    101: "Switching Protocols",
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Head terminator for requests and responses alike.
_HEAD_END = b"\r\n\r\n"

#: HTTP methods the gateway routes (anything else is a 405).
KNOWN_METHODS = ("GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS",
                 "PATCH")


@dataclass(frozen=True)
class GatewayLimits:
    """Hard input bounds; exceeding any of them is a protocol error.

    Attributes:
        max_head_bytes: Request/response head cap (request line plus
            headers, terminator included).
        max_body_bytes: ``Content-Length`` cap for HTTP bodies.
        max_ws_payload: Per-frame WebSocket payload cap (a declared
            length beyond it is rejected *before* the payload is
            read, so a hostile length prefix cannot balloon memory).
        max_connections: Concurrent TCP connections accepted before
            new ones are turned away with 503.
    """

    max_head_bytes: int = 16384
    max_body_bytes: int = 1 << 20
    max_ws_payload: int = 1 << 20
    max_connections: int = 256

    def __post_init__(self) -> None:
        for name in ("max_head_bytes", "max_body_bytes",
                     "max_ws_payload", "max_connections"):
            if getattr(self, name) < 1:
                raise ProtocolError(f"{name} must be >= 1, got "
                                    f"{getattr(self, name)}")


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request (head + body).

    Header names are lower-cased at parse time; values keep their
    whitespace-stripped form.
    """

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """The target's path component (query string stripped)."""
        return urlsplit(self.target).path

    @property
    def query(self) -> Dict[str, str]:
        """Single-valued query parameters (first value wins)."""
        parsed = parse_qs(urlsplit(self.target).query,
                          keep_blank_values=True)
        return {key: values[0] for key, values in parsed.items()}

    def header(self, name: str, default: str = "") -> str:
        """A header by case-insensitive name."""
        return self.headers.get(name.lower(), default)


@dataclass(frozen=True)
class HttpResponse:
    """One parsed response (what the gateway *client* reads back)."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body decoded as a JSON object.

        Raises:
            ProtocolError: The body is not valid JSON or not a dict.
        """
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(
                f"response body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("response JSON must be an object, got "
                                f"{type(payload).__name__}")
        return payload


def _split_head(head: bytes, what: str) -> Tuple[str, list]:
    """Common head validation: returns (start line, header lines)."""
    if not head.endswith(_HEAD_END):
        raise ProtocolError(f"{what} head is not terminated")
    try:
        text = head[:-len(_HEAD_END)].decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1
        raise ProtocolError(f"{what} head is not decodable") from exc
    lines = text.split("\r\n")
    if not lines or not lines[0]:
        raise ProtocolError(f"{what} start line is empty")
    return lines[0], lines[1:]


def _parse_headers(lines: list, what: str) -> Dict[str, str]:
    """Parse ``Name: value`` lines into a lower-cased dict."""
    headers: Dict[str, str] = {}
    for line in lines:
        if not line:
            raise ProtocolError(f"{what} carries an empty header line")
        name, separator, value = line.partition(":")
        if not separator or not name or name != name.strip() \
                or "\n" in line:
            raise ProtocolError(f"{what} header line is malformed: "
                                f"{line[:60]!r}")
        headers[name.lower()] = value.strip()
    return headers


def parse_request_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    """Parse a request head into (method, target, headers).

    ``head`` must include the ``\\r\\n\\r\\n`` terminator.

    Raises:
        ProtocolError: Any structural violation — bad request line,
            unsupported HTTP version, malformed header line.
    """
    start, lines = _split_head(head, "request")
    parts = start.split(" ")
    if len(parts) != 3:
        raise ProtocolError(
            f"malformed request line: {start[:60]!r}")
    method, target, version = parts
    if method not in KNOWN_METHODS:
        raise ProtocolError(f"unknown HTTP method {method[:20]!r}")
    if not target or " " in target:
        raise ProtocolError(f"malformed request target {target[:60]!r}")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(f"unsupported HTTP version {version[:20]!r}")
    return method, target, _parse_headers(lines, "request")


def parse_response_head(head: bytes) -> Tuple[int, Dict[str, str]]:
    """Parse a response head into (status, headers).

    Raises:
        ProtocolError: Bad status line or malformed header line.
    """
    start, lines = _split_head(head, "response")
    parts = start.split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(f"malformed status line: {start[:60]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise ProtocolError(
            f"malformed status code {parts[1][:20]!r}") from exc
    if not 100 <= status <= 599:
        raise ProtocolError(f"status code out of range: {status}")
    return status, _parse_headers(lines, "response")


def content_length(headers: Dict[str, str],
                   limits: GatewayLimits) -> int:
    """Validated ``Content-Length`` (0 when absent).

    Raises:
        ProtocolError: Non-integer, negative, or above the body cap;
            or the message uses a transfer coding we do not speak.
    """
    if "transfer-encoding" in headers:
        raise ProtocolError("transfer codings are not supported; "
                            "send a Content-Length body")
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError as exc:
        raise ProtocolError(
            f"malformed Content-Length {raw[:20]!r}") from exc
    if length < 0:
        raise ProtocolError(f"negative Content-Length {length}")
    if length > limits.max_body_bytes:
        raise ProtocolError(
            f"body of {length} bytes exceeds the "
            f"{limits.max_body_bytes}-byte cap")
    return length


async def _read_head(reader: asyncio.StreamReader,
                     limits: GatewayLimits,
                     what: str) -> Optional[bytes]:
    """Read one head; None on clean EOF before any bytes arrived."""
    try:
        head = await reader.readuntil(_HEAD_END)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(f"truncated {what} head "
                            f"({len(exc.partial)} bytes)") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(f"{what} head exceeds the stream "
                            "buffer limit") from exc
    if len(head) > limits.max_head_bytes:
        raise ProtocolError(
            f"{what} head of {len(head)} bytes exceeds the "
            f"{limits.max_head_bytes}-byte cap")
    return head


async def _read_body(reader: asyncio.StreamReader, length: int,
                     what: str) -> bytes:
    """Read an exact-length body (typed failure on truncation)."""
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"truncated {what} body: got {len(exc.partial)} of "
            f"{length} bytes") from exc


async def read_request(reader: asyncio.StreamReader,
                       limits: GatewayLimits) -> Optional[HttpRequest]:
    """Read one full request; None on clean EOF between requests.

    Raises:
        ProtocolError: Malformed head, unsupported framing, truncated
            or oversized input.
    """
    head = await _read_head(reader, limits, "request")
    if head is None:
        return None
    method, target, headers = parse_request_head(head)
    body = await _read_body(reader, content_length(headers, limits),
                            "request")
    return HttpRequest(method=method, target=target, headers=headers,
                       body=body)


async def read_response(reader: asyncio.StreamReader,
                        limits: GatewayLimits) -> HttpResponse:
    """Read one full response (client side).

    Raises:
        ProtocolError: EOF, malformed head, or truncated body.
    """
    head = await _read_head(reader, limits, "response")
    if head is None:
        raise ProtocolError("connection closed before a response")
    status, headers = parse_response_head(head)
    if status == 101:
        # An upgrade response has no body; the stream switches to
        # WebSocket frames immediately after the head.
        return HttpResponse(status=status, headers=headers)
    body = await _read_body(reader, content_length(headers, limits),
                            "response")
    return HttpResponse(status=status, headers=headers, body=body)


def render_response(status: int, body: bytes = b"",
                    content_type: str = "application/json",
                    headers: Optional[Dict[str, str]] = None,
                    close: bool = False) -> bytes:
    """Serialize one response (head + body) to wire bytes."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    merged = dict(headers or {})
    if status != 101:
        merged.setdefault("content-type", content_type)
        merged.setdefault("content-length", str(len(body)))
    if close:
        merged.setdefault("connection", "close")
    for name, value in merged.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(status: int, payload: dict,
                  headers: Optional[Dict[str, str]] = None,
                  close: bool = False) -> bytes:
    """Serialize a JSON body response."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return render_response(status, body, headers=headers, close=close)


def render_request(method: str, target: str,
                   headers: Optional[Dict[str, str]] = None,
                   body: bytes = b"") -> bytes:
    """Serialize one request (client side)."""
    lines = [f"{method} {target} HTTP/1.1"]
    merged = dict(headers or {})
    if body or method in ("POST", "PUT", "PATCH"):
        merged.setdefault("content-length", str(len(body)))
    for name, value in merged.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
