"""The network-facing gateway: sockets in, wire protocol out.

:class:`Gateway` is an ``asyncio.start_server`` front end over the
in-process :class:`repro.serve.service.InferenceService`.  Routes:

* ``POST /v1/estimate`` — one :class:`EstimateRequest` JSON body in,
  one :class:`EstimateResponse` JSON body out.
* ``GET /v1/stream`` — WebSocket upgrade to the streaming session:
  JSON text messages ``{"type": "estimate", "request": {...}}`` are
  answered with ``{"type": "estimate", "response": {...}}``, and
  ``{"type": "subscribe", "sensor_id": ...}`` opens a per-sensor
  touch-event subscription that pushes
  ``{"type": "touch_event", ...}`` messages as presses complete.
* ``GET /v1/touch_events?sensor_id=...`` — the session's segmented
  touch events so far.
* ``GET /healthz`` / ``GET /metrics`` — liveness and the shared
  registry in Prometheus text format (unauthenticated; everything
  else requires a tenant credential).

Failure taxonomy, by construction: a malformed payload is a
:class:`ProtocolError` and answers 400 (HTTP) or an ``"error"``
envelope / close code 1002 (WebSocket); a missing or unknown
credential answers 401; an exhausted tenant quota or scheduler
backpressure answers 429 with ``quality="rejected"``.  No client
input path raises anything else — the fuzz suite
(``tests/test_gateway_fuzz.py``) drives hostile bytes at every layer
and asserts the connection is the only casualty.

Touch-event streaming contract: an event is pushed once it is
*closed* — the sensor's latest served sample is untouched, so the
event's onset/release/peak are final.  A still-open press is withheld
until the release sample arrives, which makes the pushed stream
bit-identical to a post-hoc ``touch_events`` query over the same
samples.
"""

from __future__ import annotations

import asyncio
import json
import logging
from dataclasses import dataclass, replace
from typing import Dict, Optional, Set, Tuple

from repro.errors import (
    AuthError,
    ProtocolError,
    QueueFullError,
    ServeError,
)
from repro.gateway import http, websocket
from repro.gateway.auth import Tenant, TenantTable
from repro.gateway.http import GatewayLimits, HttpRequest
from repro.obs import trace
from repro.obs.recorder import flight_recorder
from repro.obs.slo import SloMonitor, default_slos
from repro.serve.protocol import EstimateRequest
from repro.serve.service import InferenceService

logger = logging.getLogger(__name__)

#: Read chunk size for the WebSocket frame loop.
_WS_CHUNK = 1 << 16

#: Bound on waiting for in-flight estimate tasks at connection close.
_DRAIN_TIMEOUT_S = 5.0


@dataclass
class _Subscription:
    """One sensor subscription on one connection."""

    min_groups: int = 1
    emitted: int = 0


class _WsConnection:
    """Per-connection WebSocket state (write lock, subs, tasks)."""

    def __init__(self, writer: asyncio.StreamWriter, tenant: Tenant):
        self.writer = writer
        self.tenant = tenant
        self.lock = asyncio.Lock()
        self.subscriptions: Dict[str, _Subscription] = {}
        self.tasks: Set["asyncio.Task"] = set()
        self.closing = False
        self.closed = False

    async def send_frame(self, opcode: int, payload: bytes) -> None:
        """Write one frame under the connection's write lock."""
        async with self.lock:
            if self.closed:
                return
            self.writer.write(websocket.encode_frame(opcode, payload))
            try:
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                self.closed = True

    async def send_json(self, payload: dict) -> None:
        """Send one JSON text message."""
        await self.send_frame(
            websocket.OP_TEXT,
            json.dumps(payload, sort_keys=True).encode("utf-8"))

    def spawn(self, coro) -> None:
        """Track a per-message task until it finishes."""
        task = asyncio.ensure_future(coro)
        self.tasks.add(task)
        task.add_done_callback(self.tasks.discard)


class Gateway:
    """Asyncio HTTP/WebSocket gateway over one inference service.

    Args:
        service: The inference service to expose; a default one is
            built when omitted (``policy`` / ``model_factory`` are
            only consulted in that case).
        tenants: Auth table; default allows anonymous access (demo /
            loopback use).
        host / port: Bind address; port 0 picks an ephemeral port
            (reported by :meth:`start`).
        limits: Input caps (head/body/frame sizes, connection count).
        policy / model_factory: Forwarded to the default service.
        touch_min_groups: Default ``min_groups`` for touch-event
            queries and subscriptions that do not specify one.
    """

    def __init__(self, service: Optional[InferenceService] = None,
                 tenants: Optional[TenantTable] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 limits: Optional[GatewayLimits] = None,
                 policy=None, model_factory=None,
                 touch_min_groups: int = 1):
        if service is None:
            service = InferenceService(policy=policy,
                                       model_factory=model_factory)
        self.service = service
        self.telemetry = service.telemetry
        self.tenants = (tenants if tenants is not None
                        else TenantTable(allow_anonymous=True))
        self.limits = limits if limits is not None else GatewayLimits()
        self.host = host
        self.port = port
        self.touch_min_groups = int(touch_min_groups)
        self.slo_monitor = SloMonitor(default_slos())
        self._server: Optional[asyncio.AbstractServer] = None
        self._open = 0
        self._subscribers: Dict[str, Set[_WsConnection]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self.host, self.port

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port)."""
        if self._server is not None:
            return self.address
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=max(1 << 16, self.limits.max_head_bytes + 1024))
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        logger.info("gateway listening on %s:%d", self.host, self.port)
        return self.address

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "Gateway":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        self.telemetry.counter(name).increment()

    def _apply_tenant_backend(self, request: EstimateRequest,
                              tenant: Tenant) -> EstimateRequest:
        """Force the tenant's estimator backend onto a request.

        A tenant configured with ``backend=""`` (the default) leaves
        requests untouched; otherwise the sensor config's backend is
        rewritten before the request reaches the inference service,
        so per-tenant backend choice composes with the session
        manager's config-keyed estimator cache and the scheduler's
        config-keyed micro-batch groups.
        """
        if not tenant.backend or request.config.backend == tenant.backend:
            return request
        self._count("gateway.backend_overrides")
        return replace(request,
                       config=replace(request.config,
                                      backend=tenant.backend))

    def _internal_error(self, where: str) -> None:
        """The zero-crash boundary tripped: count it and dump the
        flight recorder so the events leading up to it survive."""
        self._count("gateway.internal_errors")
        flight_recorder().trigger("gateway.internal_errors",
                                  where=where)

    def _respond(self, writer: asyncio.StreamWriter, status: int,
                 payload: dict, context: trace.TraceContext,
                 headers: Optional[Dict[str, str]] = None,
                 close: bool = False) -> None:
        """One JSON response, always echoing ``X-Repro-Trace-Id``."""
        merged = {"x-repro-trace-id": context.trace_id}
        if headers:
            merged.update(headers)
        writer.write(http.json_response(status, payload,
                                        headers=merged, close=close))

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """One TCP connection: HTTP request loop, maybe WS upgrade."""
        if self._open >= self.limits.max_connections:
            self._count("gateway.connections_refused")
            self._respond(
                writer, 503,
                {"error": "gateway connection limit reached"},
                trace.request_context(), close=True)
            await self._close_writer(writer)
            return
        self._open += 1
        self._count("gateway.connections")
        self.telemetry.gauge("gateway.open_connections").set(self._open)
        try:
            await self._request_loop(reader, writer)
        except (ConnectionError, TimeoutError):
            pass  # peer went away; nothing to answer
        except Exception:  # noqa: BLE001 - the zero-crash boundary
            self._internal_error("connection")
            logger.exception("unhandled error on gateway connection")
        finally:
            self._open -= 1
            self.telemetry.gauge("gateway.open_connections").set(
                self._open)
            await self._close_writer(writer)

    async def _request_loop(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        """Serve HTTP requests until EOF, upgrade, or a framing error."""
        while True:
            try:
                request = await http.read_request(reader, self.limits)
            except ProtocolError as exc:
                self._count("gateway.protocol_errors")
                self._respond(writer, 400, {"error": str(exc)},
                              trace.request_context(), close=True)
                await self._drain(writer)
                return
            if request is None:
                return
            keep_alive = await self._dispatch(request, reader, writer)
            if not keep_alive:
                return

    async def _dispatch(self, request: HttpRequest,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection.

        Every request gets a :class:`repro.obs.trace.TraceContext` —
        continuing the caller's trace when a valid ``traceparent``
        header arrived, starting a fresh root otherwise — and every
        response echoes its trace ID in ``X-Repro-Trace-Id``.
        """
        self._count("gateway.http_requests")
        path = request.path
        wants_close = request.header("connection").lower() == "close"
        remote = trace.parse_traceparent(
            request.header("traceparent") or None)
        context = trace.request_context(remote)
        with self.telemetry.span(
                "gateway.request",
                {"path": path, "method": request.method},
                context=context, parent=remote):
            if path == "/healthz":
                statuses = self.slo_monitor.observe(
                    self.telemetry.snapshot())
                healthy = all(status["ok"] and not status["alerting"]
                              for status in statuses)
                self._respond(writer, 200, {
                    "status": "ok" if healthy else "degraded",
                    "sessions": len(self.service.sessions),
                    "slo": statuses,
                }, context, close=wants_close)
            elif path == "/metrics":
                from repro.obs.exporters import to_prometheus

                body = to_prometheus(self.telemetry.snapshot()).encode()
                writer.write(http.render_response(
                    200, body,
                    content_type="text/plain; version=0.0.4",
                    headers={"x-repro-trace-id": context.trace_id},
                    close=wants_close))
            else:
                try:
                    tenant = self.tenants.authenticate(
                        request.header("authorization") or None)
                except AuthError as exc:
                    self._count("gateway.auth_failures")
                    self._respond(writer, 401, {"error": str(exc)},
                                  context, close=wants_close)
                    await self._drain(writer)
                    return not wants_close
                if path == "/v1/stream":
                    await self._upgrade(request, reader, writer,
                                        tenant, context)
                    return False
                await self._serve_http(request, writer, tenant,
                                       wants_close, context)
        await self._drain(writer)
        return not wants_close

    async def _serve_http(self, request: HttpRequest,
                          writer: asyncio.StreamWriter,
                          tenant: Tenant, wants_close: bool,
                          context: trace.TraceContext) -> None:
        """The plain request/response endpoints."""
        loop = asyncio.get_running_loop()
        path = request.path
        if path == "/v1/estimate":
            if request.method != "POST":
                self._respond(writer, 405, {"error": "use POST"},
                              context, close=wants_close)
                return
            if not self.tenants.admit(tenant, loop.time()):
                self._count("gateway.rate_limited")
                self._respond(writer, 429, {
                    "error": f"tenant {tenant.name!r} exceeded its "
                             "request quota",
                    "quality": "rejected",
                }, context, headers={"retry-after": "1"},
                    close=wants_close)
                return
            start = loop.time()
            try:
                estimate_request = self._apply_tenant_backend(
                    EstimateRequest.from_json(
                        request.body.decode("utf-8", errors="replace")),
                    tenant)
                response = await self.service.estimate(
                    estimate_request)
            except ProtocolError as exc:
                self._count("gateway.protocol_errors")
                self._respond(writer, 400, {"error": str(exc)},
                              context, close=wants_close)
                return
            except QueueFullError as exc:
                self._count("gateway.rejected")
                self._respond(writer, 429, {
                    "error": str(exc), "quality": "rejected",
                }, context, headers={"retry-after": "1"},
                    close=wants_close)
                return
            except ServeError as exc:
                self._respond(writer, 400, {"error": str(exc)},
                              context, close=wants_close)
                return
            except Exception:  # noqa: BLE001 - zero-crash boundary
                self._internal_error("/v1/estimate")
                logger.exception("estimate failed on /v1/estimate")
                self._respond(writer, 500,
                              {"error": "internal gateway error"},
                              context, close=wants_close)
                return
            self.telemetry.histogram(
                "gateway.request_seconds").observe(loop.time() - start)
            self._count("gateway.responses")
            self._respond(writer, 200, response.to_dict(), context,
                          close=wants_close)
        elif path == "/v1/touch_events":
            sensor_id = request.query.get("sensor_id", "")
            if not sensor_id:
                self._respond(writer, 400,
                              {"error": "sensor_id query parameter "
                                        "is required"},
                              context, close=wants_close)
                return
            try:
                min_groups = int(request.query.get(
                    "min_groups", self.touch_min_groups))
                events = self.service.touch_events(
                    sensor_id, min_groups=min_groups)
            except ValueError:
                self._respond(writer, 400,
                              {"error": "min_groups must be an "
                                        "integer"},
                              context, close=wants_close)
                return
            except ServeError as exc:
                self._respond(writer, 404, {"error": str(exc)},
                              context, close=wants_close)
                return
            self._respond(writer, 200, {
                "sensor_id": sensor_id,
                "events": [event.to_dict() for event in events],
            }, context, close=wants_close)
        else:
            self._respond(writer, 404,
                          {"error": f"no route for {path[:80]!r}"},
                          context, close=wants_close)

    # ------------------------------------------------------------------
    # WebSocket path
    # ------------------------------------------------------------------

    async def _upgrade(self, request: HttpRequest,
                       reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter,
                       tenant: Tenant,
                       context: trace.TraceContext) -> None:
        """Validate the handshake and run the streaming session."""
        key = request.header("sec-websocket-key")
        upgrade_ok = (
            request.method == "GET"
            and "websocket" in request.header("upgrade").lower()
            and "upgrade" in request.header("connection").lower()
            and bool(key)
            and request.header("sec-websocket-version", "13") == "13")
        if not upgrade_ok:
            self._count("gateway.protocol_errors")
            self._respond(writer, 426,
                          {"error": "/v1/stream requires a WebSocket "
                                    "upgrade (version 13)"},
                          context, headers={"upgrade": "websocket"},
                          close=True)
            await self._drain(writer)
            return
        if not self.tenants.acquire_connection(tenant):
            self._count("gateway.rate_limited")
            self._respond(writer, 429, {
                "error": f"tenant {tenant.name!r} reached its "
                         "connection quota",
                "quality": "rejected",
            }, context, close=True)
            await self._drain(writer)
            return
        conn = _WsConnection(writer, tenant)
        try:
            writer.write(http.render_response(101, headers={
                "upgrade": "websocket",
                "connection": "Upgrade",
                "sec-websocket-accept": websocket.accept_key(key),
                "x-repro-trace-id": context.trace_id,
            }))
            await self._drain(writer)
            self._count("gateway.ws_sessions")
            await self._ws_loop(conn, reader)
        finally:
            conn.closing = True
            if conn.tasks:
                _, pending = await asyncio.wait(
                    set(conn.tasks), timeout=_DRAIN_TIMEOUT_S)
                for task in pending:
                    task.cancel()
            async with conn.lock:
                conn.closed = True
            for sensor_id in list(conn.subscriptions):
                self._unsubscribe(conn, sensor_id)
            self.tenants.release_connection(tenant)

    async def _ws_loop(self, conn: _WsConnection,
                       reader: asyncio.StreamReader) -> None:
        """Frame loop: parse, dispatch, close cleanly on violation."""
        buffer = bytearray()
        while not conn.closing:
            try:
                parsed = websocket.parse_frame(
                    bytes(buffer), self.limits.max_ws_payload)
            except ProtocolError as exc:
                self._count("gateway.protocol_errors")
                await self._ws_close(
                    conn, websocket.CLOSE_PROTOCOL_ERROR, str(exc))
                return
            if parsed is None:
                chunk = await reader.read(_WS_CHUNK)
                if not chunk:
                    return  # peer vanished without a close frame
                buffer += chunk
                continue
            frame, consumed = parsed
            del buffer[:consumed]
            try:
                await self._handle_frame(conn, frame)
            except ProtocolError as exc:
                self._count("gateway.protocol_errors")
                await self._ws_close(
                    conn, websocket.CLOSE_PROTOCOL_ERROR, str(exc))
                return

    async def _ws_close(self, conn: _WsConnection, code: int,
                        reason: str = "") -> None:
        """Best-effort close frame; marks the connection closing."""
        conn.closing = True
        await conn.send_frame(websocket.OP_CLOSE,
                              websocket.close_payload(code, reason))

    async def _handle_frame(self, conn: _WsConnection,
                            frame) -> None:
        """Dispatch one parsed frame.

        Raises:
            ProtocolError: RFC violations the parser cannot see —
                unmasked client frames, fragmentation, binary data.
        """
        if not frame.masked:
            raise ProtocolError("client frames must be masked")
        if frame.opcode == websocket.OP_PING:
            await conn.send_frame(websocket.OP_PONG, frame.payload)
            return
        if frame.opcode == websocket.OP_PONG:
            return
        if frame.opcode == websocket.OP_CLOSE:
            websocket.parse_close(frame.payload)  # validate
            await self._ws_close(conn, websocket.CLOSE_NORMAL)
            return
        if frame.opcode != websocket.OP_TEXT or not frame.fin:
            raise ProtocolError(
                "only unfragmented text frames are supported")
        await self._handle_message(conn, frame.text())

    async def _handle_message(self, conn: _WsConnection,
                              text: str) -> None:
        """One JSON wire message (bad JSON is answered, not fatal)."""
        self._count("gateway.ws_messages")
        try:
            message = json.loads(text)
        except ValueError as exc:
            self._count("gateway.protocol_errors")
            await conn.send_json({
                "type": "error", "code": "protocol",
                "error": f"message is not valid JSON: {exc}"})
            return
        if not isinstance(message, dict) \
                or not isinstance(message.get("type"), str):
            self._count("gateway.protocol_errors")
            await conn.send_json({
                "type": "error", "code": "protocol",
                "error": "message must be an object with a string "
                         "'type'"})
            return
        kind = message["type"]
        if kind == "estimate":
            conn.spawn(self._serve_ws_estimate(conn, message))
        elif kind == "subscribe":
            await self._serve_subscribe(conn, message)
        elif kind == "unsubscribe":
            sensor_id = message.get("sensor_id")
            if isinstance(sensor_id, str):
                self._unsubscribe(conn, sensor_id)
            await conn.send_json({"type": "unsubscribed",
                                  "sensor_id": sensor_id})
        elif kind == "ping":
            await conn.send_json({"type": "pong"})
        else:
            self._count("gateway.protocol_errors")
            await conn.send_json({
                "type": "error", "code": "protocol",
                "error": f"unknown message type {kind[:40]!r}"})

    async def _serve_ws_estimate(self, conn: _WsConnection,
                                 message: dict) -> None:
        """One estimate message (runs as its own task).

        Each message gets its own trace context — continuing the
        caller's when the message carries a valid ``"traceparent"``
        value, a fresh root otherwise — and every reply (estimate or
        error envelope) echoes its ``trace_id``.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        remote = trace.parse_traceparent(message.get("traceparent"))
        context = trace.request_context(remote)
        payload = message.get("request")
        echo = {"trace_id": context.trace_id}
        if isinstance(payload, dict):
            for key in ("sensor_id", "sequence"):
                if key in payload:
                    echo[key] = payload[key]
        if not self.tenants.admit(conn.tenant, start):
            self._count("gateway.rate_limited")
            await conn.send_json(dict(echo, **{
                "type": "error", "code": "quota",
                "quality": "rejected",
                "error": f"tenant {conn.tenant.name!r} exceeded its "
                         "request quota"}))
            return
        with self.telemetry.span(
                "gateway.request",
                {"path": "/v1/stream", "method": "WS"},
                context=context, parent=remote):
            try:
                request = self._apply_tenant_backend(
                    EstimateRequest.from_dict(payload), conn.tenant)
            except ProtocolError as exc:
                self._count("gateway.protocol_errors")
                await conn.send_json(dict(echo, **{
                    "type": "error", "code": "protocol",
                    "error": str(exc)}))
                return
            try:
                response = await self.service.estimate(request)
            except QueueFullError as exc:
                self._count("gateway.rejected")
                await conn.send_json(dict(echo, **{
                    "type": "error", "code": "backpressure",
                    "quality": "rejected", "error": str(exc)}))
                return
            except ServeError as exc:
                await conn.send_json(dict(echo, **{
                    "type": "error", "code": "serve",
                    "error": str(exc)}))
                return
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - zero-crash boundary
                self._internal_error("/v1/stream")
                logger.exception("estimate failed on /v1/stream")
                await conn.send_json(dict(echo, **{
                    "type": "error", "code": "internal",
                    "error": "internal gateway error"}))
                return
        self.telemetry.histogram("gateway.request_seconds").observe(
            loop.time() - start)
        self._count("gateway.responses")
        await conn.send_json({"type": "estimate",
                              "trace_id": context.trace_id,
                              "response": response.to_dict()})
        await self._push_touch_events(request.sensor_id)

    # ------------------------------------------------------------------
    # Touch-event subscriptions
    # ------------------------------------------------------------------

    async def _serve_subscribe(self, conn: _WsConnection,
                               message: dict) -> None:
        sensor_id = message.get("sensor_id")
        min_groups = message.get("min_groups", self.touch_min_groups)
        if not isinstance(sensor_id, str) or not sensor_id \
                or not isinstance(min_groups, int) or min_groups < 1:
            self._count("gateway.protocol_errors")
            await conn.send_json({
                "type": "error", "code": "protocol",
                "error": "subscribe needs a sensor_id string and an "
                         "integer min_groups >= 1"})
            return
        conn.subscriptions[sensor_id] = _Subscription(
            min_groups=min_groups)
        self._subscribers.setdefault(sensor_id, set()).add(conn)
        self._count("gateway.subscriptions")
        await conn.send_json({"type": "subscribed",
                              "sensor_id": sensor_id})
        # Catch up on presses that completed before the subscription.
        await self._push_touch_events(sensor_id, only=conn)

    def _unsubscribe(self, conn: _WsConnection,
                     sensor_id: str) -> None:
        conn.subscriptions.pop(sensor_id, None)
        remaining = self._subscribers.get(sensor_id)
        if remaining is not None:
            remaining.discard(conn)
            if not remaining:
                self._subscribers.pop(sensor_id, None)

    async def _push_touch_events(
            self, sensor_id: str,
            only: Optional[_WsConnection] = None) -> None:
        """Push newly *closed* events to this sensor's subscribers."""
        conns = self._subscribers.get(sensor_id)
        if not conns:
            return
        session = self.service.sessions.get(sensor_id)
        if session is None:
            return
        targets = [only] if only is not None else list(conns)
        for conn in targets:
            subscription = conn.subscriptions.get(sensor_id)
            if subscription is None or conn.closed:
                continue
            async with conn.lock:
                # Compute + send under the write lock so concurrent
                # estimates for the same sensor cannot interleave
                # event pushes out of order on one connection.
                events = session.touch_events(
                    min_groups=subscription.min_groups)
                if session.samples and session.samples[-1].touched:
                    events = events[:-1]  # last press still open
                fresh = events[subscription.emitted:]
                if not fresh:
                    continue
                base = subscription.emitted
                subscription.emitted = len(events)
                for index, event in enumerate(fresh):
                    if conn.closed:
                        break
                    self._count("gateway.touch_events_pushed")
                    conn.writer.write(websocket.encode_frame(
                        websocket.OP_TEXT,
                        json.dumps({
                            "type": "touch_event",
                            "sensor_id": sensor_id,
                            "index": base + index,
                            "event": event.to_dict(),
                        }, sort_keys=True).encode("utf-8")))
                try:
                    await conn.writer.drain()
                except (ConnectionError, RuntimeError):
                    conn.closed = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    @staticmethod
    async def _drain(writer: asyncio.StreamWriter) -> None:
        try:
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
