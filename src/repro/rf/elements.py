"""Composable RF elements for the sensor model.

Builds the sensor's exact two-port from microstrip sections and shunt
contact impedances: an untouched sensor is one line section (Fig. 10);
a pressed sensor is line(0..p1) + contact shunt + line(p1..p2) +
contact shunt + line(p2..L), which makes port 1's reflection collapse
onto the first shorting point and port 2's onto the second — the
transduction mechanism of paper section 3.1.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import RFError
from repro.rf.microstrip import MicrostripLine
from repro.rf.twoport import TwoPort, abcd_line, abcd_shunt, abcd_to_s, cascade

#: Residual resistance of the pressed trace-to-trace contact [ohm].
#: Small but non-zero: a perfect zero-ohm shunt would be numerically
#: singular and is also physically optimistic for a pressed contact.
DEFAULT_CONTACT_RESISTANCE = 0.2


def line_twoport(line: MicrostripLine, frequency: np.ndarray,
                 length: Optional[float] = None,
                 reference_impedance: float = 50.0) -> TwoPort:
    """Two-port of a microstrip section over a frequency grid.

    Args:
        line: Microstrip geometry (sets Z0, gamma).
        frequency: Frequency grid [Hz].
        length: Section length [m]; defaults to the full line length.
        reference_impedance: Port reference [ohm].
    """
    frequency = np.asarray(frequency, dtype=float)
    section = line.length if length is None else float(length)
    if section < 0.0:
        raise RFError(f"section length must be non-negative, got {section}")
    abcd = abcd_line(line.characteristic_impedance,
                     line.propagation_constant(frequency), section)
    return TwoPort(frequency, abcd_to_s(abcd, reference_impedance),
                   reference_impedance)


def shorted_sensor_twoport(
    line: MicrostripLine,
    frequency: np.ndarray,
    shorting_points: Optional[Tuple[float, float]],
    contact_resistance: float = DEFAULT_CONTACT_RESISTANCE,
    reference_impedance: float = 50.0,
) -> TwoPort:
    """Two-port of the sensor line with an optional contact region.

    Args:
        line: Sensor microstrip geometry.
        frequency: Frequency grid [Hz].
        shorting_points: (p1, p2) shorting positions [m] from port 1,
            or ``None`` for an untouched sensor.
        contact_resistance: Residual shunt resistance at each shorting
            point [ohm].
        reference_impedance: Port reference [ohm].

    Returns:
        The exact cascaded two-port.
    """
    frequency = np.asarray(frequency, dtype=float)
    if shorting_points is None:
        return line_twoport(line, frequency,
                            reference_impedance=reference_impedance)
    p1, p2 = shorting_points
    if not 0.0 <= p1 <= p2 <= line.length:
        raise RFError(
            f"shorting points ({p1}, {p2}) must satisfy "
            f"0 <= p1 <= p2 <= {line.length}"
        )
    if contact_resistance <= 0.0:
        raise RFError(
            f"contact resistance must be positive, got {contact_resistance}"
        )
    gamma = line.propagation_constant(frequency)
    z0 = line.characteristic_impedance
    shunt = abcd_shunt(np.full(frequency.shape, contact_resistance,
                               dtype=complex))
    blocks = [abcd_line(z0, gamma, p1), shunt]
    if p2 > p1:
        blocks.extend([abcd_line(z0, gamma, p2 - p1), shunt])
    blocks.append(abcd_line(z0, gamma, line.length - p2))
    return TwoPort(frequency, abcd_to_s(cascade(*blocks), reference_impedance),
                   reference_impedance)


def ideal_splitter_reflection(branch_a: np.ndarray,
                              branch_b: np.ndarray) -> np.ndarray:
    """Reflection at the common port of an ideal 3 dB splitter.

    Each branch contributes through two 1/sqrt(2) passes, so the common
    port sees the average of the branch reflections.  This is how the
    tag merges its two switch branches onto the single antenna (paper
    section 3.2).
    """
    branch_a = np.asarray(branch_a, dtype=complex)
    branch_b = np.asarray(branch_b, dtype=complex)
    return 0.5 * (branch_a + branch_b)
