"""SMA connector parasitics.

The paper's prototype interfaces the air microstrip to SMA connectors
(Appendix: the ground trace is widened precisely to solder their legs).
A real connector transition adds a small series inductance and shunt
capacitance that degrade the measured S11 from the ideal line's -35 dB
to the -10..-20 dB the paper's Fig. 10 shows.  Modelling it closes that
gap and lets the design benches sweep connector quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rf.twoport import TwoPort, abcd_series, abcd_shunt, abcd_to_s, cascade


@dataclass(frozen=True)
class SMAConnector:
    """Lumped model of one coax-to-microstrip transition.

    Attributes:
        name: Part identifier.
        series_inductance: Transition inductance [H].
        shunt_capacitance: Pad/fringing capacitance [F].
    """

    name: str = "sma-edge-launch"
    series_inductance: float = 0.6e-9
    shunt_capacitance: float = 0.18e-12

    def __post_init__(self) -> None:
        if self.series_inductance < 0.0 or self.shunt_capacitance < 0.0:
            raise ConfigurationError(
                "connector parasitics must be non-negative"
            )

    def abcd(self, frequency: np.ndarray) -> np.ndarray:
        """ABCD matrices of the transition over a frequency grid.

        L-C half-section: the series inductance faces the coax side,
        the shunt capacitance loads the microstrip pad.
        """
        frequency = np.asarray(frequency, dtype=float)
        omega = 2.0 * np.pi * frequency
        series = abcd_series(1j * omega * self.series_inductance)
        if self.shunt_capacitance == 0.0:
            return series
        shunt = abcd_shunt(1.0 / (1j * omega * self.shunt_capacitance))
        return cascade(series, shunt)

    def twoport(self, frequency: np.ndarray,
                reference_impedance: float = 50.0) -> TwoPort:
        """S-parameter block of the transition."""
        frequency = np.asarray(frequency, dtype=float)
        return TwoPort(frequency,
                       abcd_to_s(self.abcd(frequency), reference_impedance),
                       reference_impedance)


#: A decent edge-launch SMA (paper-prototype class).
SMA_EDGE_LAUNCH = SMAConnector()

#: A sloppier hand-soldered transition, for the design-margin sweep.
SMA_HAND_SOLDERED = SMAConnector(
    name="sma-hand-soldered",
    series_inductance=1.2e-9,
    shunt_capacitance=0.35e-12,
)


def connectorized(network: TwoPort, connector: SMAConnector) -> TwoPort:
    """Wrap a two-port with a connector transition on each port."""
    transition = connector.twoport(network.frequency,
                                   network.reference_impedance)
    return transition.cascade_with(network).cascade_with(
        transition.flipped())
